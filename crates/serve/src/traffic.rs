//! Traffic-fed training data: the accumulator behind the batcher.
//!
//! Every served request already pays for feature extraction (PCA projection
//! followed by L2 normalisation); the [`TrafficAccumulator`] captures those
//! **post-PCA feature vectors** — with the label the pipeline assigned — so
//! a model can later retrain its clusters and ansatz parameters from the
//! traffic it actually served, without a second extraction pass and without
//! retaining raw samples.
//!
//! Memory is bounded: each model buffers at most
//! [`TrafficConfig::buffer_samples`] vectors in RAM; when the budget fills,
//! the buffer is spilled to an `ENQB` shard file
//! ([`enq_data::BinaryDatasetWriter`]) and the shard ring is truncated to
//! [`TrafficConfig::max_shards`] (oldest shards dropped first). Shards are
//! reference-counted: a [`TrafficCorpus`] snapshot keeps its shard files
//! alive for the duration of a rebuild even if the accumulator clears or
//! rotates them concurrently, and a shard's file is deleted from disk when
//! the last reference drops.
//!
//! Recording is **best-effort by design**: a full disk or a dimension
//! mismatch increments a counter and drops the sample — the serving path
//! never fails a request because its training side-channel hiccuped.

use crate::cache::quantize_features;
use crate::error::ServeError;
use enq_data::{
    BinaryDatasetWriter, BinarySource, ChainedSource, DataError, SampleChunk, SampleSource,
    ShardedSource,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Shape of the per-model traffic capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Master switch. Disabled (the default), [`TrafficAccumulator::record`]
    /// is a no-op and the serving path pays nothing.
    pub enabled: bool,
    /// Feature vectors buffered in RAM per model before a spill. This is
    /// the whole resident cost of traffic capture: `buffer_samples ×
    /// feature_dim × 8` bytes per model.
    pub buffer_samples: usize,
    /// Maximum spilled shards retained per model; beyond it the **oldest**
    /// shard is dropped (its file is deleted once no corpus references it),
    /// so disk usage is bounded by `max_shards × buffer_samples` records.
    pub max_shards: usize,
    /// Directory for shard files; `None` uses [`std::env::temp_dir`].
    pub spill_dir: Option<PathBuf>,
    /// Size of the per-model **audit ring**: the most recent feature
    /// vectors kept resident (independently of buffer spills) so a
    /// spot-audit can score live traffic against the model without
    /// touching disk (see [`TrafficAccumulator::recent_features`]). `0`
    /// disables the ring. The ring recycles its slots in place, so the
    /// steady-state cost is a bounded `audit_window × feature_dim × 8`
    /// bytes per model and no per-record allocation.
    pub audit_window: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            buffer_samples: 4096,
            max_shards: 64,
            spill_dir: None,
            audit_window: 256,
        }
    }
}

impl TrafficConfig {
    /// An enabled configuration with the default budgets.
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }
}

/// Monotonic counters of one model's traffic capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficStats {
    /// Feature vectors accepted (buffered or spilled).
    pub recorded: u64,
    /// Vectors currently buffered in RAM (not yet spilled).
    pub buffered: u64,
    /// Shards currently on disk.
    pub shards: u64,
    /// Vectors currently represented by on-disk shards.
    pub spilled: u64,
    /// Vectors lost to ring rotation (oldest-shard eviction).
    pub rotated_out: u64,
    /// Vectors dropped because recording failed (I/O error, dimension
    /// mismatch).
    pub dropped: u64,
    /// Spill attempts that failed (each one also dropped its buffered
    /// vectors, counted in `dropped`).
    pub spill_failures: u64,
    /// Shard-ring compactions performed ([`TrafficAccumulator::compact`]).
    pub compactions: u64,
    /// Feature vectors currently resident in the audit ring.
    pub audit_samples: u64,
}

/// One spilled shard file; deleted from disk when the last reference drops.
#[derive(Debug)]
pub struct TrafficShard {
    path: PathBuf,
    samples: u64,
}

impl TrafficShard {
    /// Path of the `ENQB` shard file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records in the shard.
    pub fn len(&self) -> u64 {
        self.samples
    }

    /// Whether the shard holds no records (never true for a spilled shard).
    pub fn is_empty(&self) -> bool {
        self.samples == 0
    }
}

impl Drop for TrafficShard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Per-model capture state.
#[derive(Debug, Default)]
struct ModelTraffic {
    /// Feature dimension, fixed by the first recorded vector.
    dim: usize,
    buffer: Vec<(Vec<f64>, usize)>,
    shards: Vec<Arc<TrafficShard>>,
    /// Ring of the most recent feature vectors (plus served labels), capped
    /// at [`TrafficConfig::audit_window`]; slots are overwritten in place
    /// so a full ring never allocates per record.
    recent: Vec<(Vec<f64>, usize)>,
    /// Next write position in `recent` once the ring is full.
    recent_pos: usize,
    recorded: u64,
    spill_errors: u64,
    rotated_out: u64,
    dropped: u64,
    compactions: u64,
}

/// The per-model traffic capture behind the batcher (module docs have the
/// full design).
///
/// # Examples
///
/// ```
/// use enq_serve::{TrafficAccumulator, TrafficConfig};
///
/// let traffic = TrafficAccumulator::new(TrafficConfig {
///     enabled: true,
///     buffer_samples: 2,
///     ..Default::default()
/// });
/// traffic.record("mnist", &[0.6, 0.8], 1);
/// traffic.record("mnist", &[0.8, 0.6], 0);   // budget hit: spills a shard
/// traffic.record("mnist", &[1.0, 0.0], 1);
/// let stats = traffic.stats("mnist");
/// assert_eq!(stats.recorded, 3);
/// assert_eq!(stats.shards, 1);
/// assert_eq!(stats.buffered, 1);
/// ```
#[derive(Debug)]
pub struct TrafficAccumulator {
    config: TrafficConfig,
    /// The outer mutex only guards the id → state map (held for a lookup /
    /// insert, never across I/O); each model's state has its own lock, so a
    /// shard spill — synchronous disk I/O by design, to keep shard order
    /// chronological — stalls only recorders of that model.
    models: Mutex<HashMap<String, Arc<Mutex<ModelTraffic>>>>,
    shard_counter: AtomicU64,
}

impl TrafficAccumulator {
    /// Creates an accumulator (disabled configs cost one branch per record).
    pub fn new(config: TrafficConfig) -> Self {
        Self {
            config,
            models: Mutex::new(HashMap::new()),
            shard_counter: AtomicU64::new(0),
        }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.config.enabled
    }

    /// The configuration.
    pub fn config(&self) -> &TrafficConfig {
        &self.config
    }

    /// Clones out `model_id`'s state handle, creating it when `insert` is
    /// set. The outer map lock is released before the caller touches the
    /// per-model lock.
    fn model_state(&self, model_id: &str, insert: bool) -> Option<Arc<Mutex<ModelTraffic>>> {
        let mut models = self.models.lock().expect("traffic accumulator poisoned");
        if insert {
            Some(Arc::clone(models.entry(model_id.to_string()).or_default()))
        } else {
            models.get(model_id).cloned()
        }
    }

    fn fresh_shard_path(&self, model_id: &str) -> PathBuf {
        let mut dir = self
            .config
            .spill_dir
            .clone()
            .unwrap_or_else(std::env::temp_dir);
        // Model ids are arbitrary strings; keep only path-safe characters in
        // the file name and rely on the counter for uniqueness.
        let safe: String = model_id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .take(32)
            .collect();
        dir.push(format!(
            "enq_traffic_{}_{safe}_{}.enqb",
            std::process::id(),
            self.shard_counter.fetch_add(1, Ordering::Relaxed),
        ));
        dir
    }

    /// Spills `state.buffer` to a fresh shard, rotating the ring. On spill
    /// failure the buffer is dropped (counted) so RAM stays bounded.
    fn spill_locked(&self, model_id: &str, state: &mut ModelTraffic) {
        if state.buffer.is_empty() {
            return;
        }
        let path = self.fresh_shard_path(model_id);
        let outcome = (|| -> Result<u64, DataError> {
            let mut writer = BinaryDatasetWriter::create(&path, state.dim, true)?;
            for (features, label) in &state.buffer {
                writer.append(features, *label)?;
            }
            writer.finish()
        })();
        match outcome {
            Ok(samples) => {
                state.shards.push(Arc::new(TrafficShard { path, samples }));
                while state.shards.len() > self.config.max_shards.max(1) {
                    let oldest = state.shards.remove(0);
                    state.rotated_out += oldest.len();
                }
            }
            Err(_) => {
                let _ = std::fs::remove_file(&path);
                state.spill_errors += 1;
                state.dropped += state.buffer.len() as u64;
            }
        }
        state.buffer.clear();
    }

    /// Records one served feature vector with the label the pipeline
    /// assigned. Best-effort: failures drop the sample and count it, never
    /// propagate.
    pub fn record(&self, model_id: &str, features: &[f64], label: usize) {
        if !self.config.enabled || features.is_empty() {
            return;
        }
        let state = self
            .model_state(model_id, true)
            .expect("insert-mode lookup always yields a state");
        let mut state = state.lock().expect("traffic model poisoned");
        if state.dim == 0 {
            state.dim = features.len();
        }
        if features.len() != state.dim {
            state.dropped += 1;
            return;
        }
        state.buffer.push((features.to_vec(), label));
        state.recorded += 1;
        let window = self.config.audit_window;
        if window > 0 {
            if state.recent.len() < window {
                state.recent.push((features.to_vec(), label));
            } else {
                let pos = state.recent_pos;
                let slot = &mut state.recent[pos];
                slot.0.clear();
                slot.0.extend_from_slice(features);
                slot.1 = label;
                state.recent_pos = (pos + 1) % window;
            }
        }
        if state.buffer.len() >= self.config.buffer_samples.max(1) {
            self.spill_locked(model_id, &mut state);
        }
    }

    /// Spills any buffered vectors of `model_id` to a shard immediately
    /// (normally done lazily by [`TrafficAccumulator::corpus`]).
    pub fn flush(&self, model_id: &str) {
        if let Some(state) = self.model_state(model_id, false) {
            let mut state = state.lock().expect("traffic model poisoned");
            self.spill_locked(model_id, &mut state);
        }
    }

    /// Clones out up to `max` of the most recent feature vectors recorded
    /// for `model_id` (with their served labels), newest-last is **not**
    /// guaranteed — the ring is returned in slot order, which is fine for
    /// the statistical spot-audit it feeds. Empty for unknown ids or a
    /// disabled ring ([`TrafficConfig::audit_window`] of 0).
    pub fn recent_features(&self, model_id: &str, max: usize) -> Vec<(Vec<f64>, usize)> {
        self.model_state(model_id, false)
            .map_or_else(Vec::new, |state| {
                let state = state.lock().expect("traffic model poisoned");
                state.recent.iter().take(max).cloned().collect()
            })
    }

    /// Compacts `model_id`'s shard ring: every on-disk shard is streamed —
    /// chronologically, via [`ChainedSource`] — into **one** fresh shard
    /// file ([`enq_data::compact_to_shard`]), which replaces the ring. The
    /// buffer is flushed first so the compacted shard holds everything
    /// recorded so far. Old shard files are deleted once the last corpus
    /// referencing them drops; corpora snapshotted before the compaction
    /// keep replaying their own shards unchanged.
    ///
    /// A long-lived accumulator calls this periodically (the autopilot
    /// does) so replay cost and file-handle count stay proportional to the
    /// retained window, not to how long the model has been serving. Like a
    /// spill, the I/O runs under the per-model lock: recorders of this one
    /// model stall for the duration, other models are unaffected.
    ///
    /// Returns the number of shards merged (0 or 1 means there was nothing
    /// to compact and the ring is unchanged).
    ///
    /// # Errors
    ///
    /// [`ServeError::NoTraffic`] for unknown ids; [`ServeError::Traffic`]
    /// when a shard cannot be read or the compacted shard cannot be
    /// written (the ring is left unchanged — compaction failure never
    /// loses data).
    pub fn compact(&self, model_id: &str) -> Result<usize, ServeError> {
        let state = self
            .model_state(model_id, false)
            .ok_or_else(|| ServeError::NoTraffic(model_id.to_string()))?;
        let mut state = state.lock().expect("traffic model poisoned");
        self.spill_locked(model_id, &mut state);
        let merged = state.shards.len();
        if merged <= 1 {
            return Ok(merged);
        }
        let sources: Vec<Box<dyn SampleSource>> = state
            .shards
            .iter()
            .map(|s| {
                Ok(
                    Box::new(BinarySource::open(s.path()).map_err(ServeError::Traffic)?)
                        as Box<dyn SampleSource>,
                )
            })
            .collect::<Result<_, ServeError>>()?;
        let mut chained = ChainedSource::new(sources).map_err(ServeError::Traffic)?;
        let path = self.fresh_shard_path(model_id);
        let samples =
            enq_data::compact_to_shard(&mut chained, &path, true).map_err(ServeError::Traffic)?;
        state.shards = vec![Arc::new(TrafficShard { path, samples })];
        state.compactions += 1;
        Ok(merged)
    }

    /// Snapshots `model_id`'s accumulated traffic as a replayable
    /// [`TrafficCorpus`]: the buffer is flushed to a final shard and the
    /// shard list is cloned (reference-counted — the corpus keeps its files
    /// alive even if the accumulator rotates or clears them afterwards).
    /// The accumulator is **not** cleared: the same corpus can be rebuilt
    /// from again, and recording continues during a rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::NoTraffic`] when nothing has been recorded for
    /// `model_id`.
    pub fn corpus(&self, model_id: &str) -> Result<TrafficCorpus, ServeError> {
        let state = self
            .model_state(model_id, false)
            .ok_or_else(|| ServeError::NoTraffic(model_id.to_string()))?;
        let mut state = state.lock().expect("traffic model poisoned");
        self.spill_locked(model_id, &mut state);
        if state.shards.is_empty() {
            return Err(ServeError::NoTraffic(model_id.to_string()));
        }
        Ok(TrafficCorpus {
            shards: state.shards.clone(),
            dim: state.dim,
        })
    }

    /// Drops `model_id`'s buffer and shard ring (files are deleted once no
    /// corpus references them). Returns how many recorded vectors were
    /// discarded.
    pub fn clear(&self, model_id: &str) -> u64 {
        let removed = self
            .models
            .lock()
            .expect("traffic accumulator poisoned")
            .remove(model_id);
        removed.map_or(0, |state| {
            let state = state.lock().expect("traffic model poisoned");
            state.buffer.len() as u64 + state.shards.iter().map(|s| s.len()).sum::<u64>()
        })
    }

    /// Counter snapshot for one model (zeros for an unknown id).
    pub fn stats(&self, model_id: &str) -> TrafficStats {
        self.model_state(model_id, false)
            .map_or_else(TrafficStats::default, |state| {
                let s = state.lock().expect("traffic model poisoned");
                TrafficStats {
                    recorded: s.recorded,
                    buffered: s.buffer.len() as u64,
                    shards: s.shards.len() as u64,
                    spilled: s.shards.iter().map(|sh| sh.len()).sum(),
                    rotated_out: s.rotated_out,
                    dropped: s.dropped,
                    spill_failures: s.spill_errors,
                    compactions: s.compactions,
                    audit_samples: s.recent.len() as u64,
                }
            })
    }

    /// Ids with recorded traffic, sorted.
    pub fn model_ids(&self) -> Vec<String> {
        let models = self.models.lock().expect("traffic accumulator poisoned");
        let mut ids: Vec<String> = models.keys().cloned().collect();
        ids.sort_unstable();
        ids
    }
}

/// A replayable snapshot of one model's traffic shards.
///
/// The corpus holds reference-counted shard files: they stay on disk for as
/// long as any corpus (or the accumulator's ring) references them, so a
/// background rebuild can stream them while fresh traffic keeps spilling.
#[derive(Debug, Clone)]
pub struct TrafficCorpus {
    shards: Vec<Arc<TrafficShard>>,
    dim: usize,
}

impl TrafficCorpus {
    /// Total records across all shards.
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether the corpus holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Feature dimension of every record.
    pub fn feature_dim(&self) -> usize {
        self.dim
    }

    /// Shard file paths, oldest first (observability and tests).
    pub fn shard_paths(&self) -> Vec<PathBuf> {
        self.shards.iter().map(|s| s.path.clone()).collect()
    }

    fn open_shards(&self) -> Result<Vec<Box<dyn SampleSource>>, ServeError> {
        self.shards
            .iter()
            .map(|s| {
                Ok(
                    Box::new(BinarySource::open(&s.path).map_err(ServeError::Traffic)?)
                        as Box<dyn SampleSource>,
                )
            })
            .collect()
    }

    /// Opens the shards as one **chronological** source (oldest shard
    /// first, chunks straddling shard boundaries). The returned source owns
    /// references to the shard files, so they outlive ring rotation for the
    /// duration of the rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Traffic`] when a shard file cannot be opened.
    pub fn chronological_source(&self) -> Result<TrafficSource, ServeError> {
        Ok(TrafficSource {
            inner: Box::new(ChainedSource::new(self.open_shards()?).map_err(ServeError::Traffic)?),
            _shards: self.shards.clone(),
        })
    }

    /// Opens the shards weighted per `weighting`:
    ///
    /// - [`CorpusWeighting::Popularity`] replays the corpus as recorded
    ///   (the chronological source) — hot feature cells appear as often as
    ///   traffic hit them, so the refreshed clusters chase the popular
    ///   regions.
    /// - [`CorpusWeighting::Coverage`] deduplicates per quantized feature
    ///   cell: at most `per_cell_cap` records of any one cell survive, so
    ///   a refresh sees the *breadth* of the traffic distribution instead
    ///   of being dominated by a few hot cells.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Traffic`] when a shard file cannot be opened.
    pub fn weighted_source(
        &self,
        weighting: &CorpusWeighting,
    ) -> Result<TrafficSource, ServeError> {
        match *weighting {
            CorpusWeighting::Popularity => self.chronological_source(),
            CorpusWeighting::Coverage {
                per_cell_cap,
                quantum,
            } => {
                let chained =
                    Box::new(ChainedSource::new(self.open_shards()?).map_err(ServeError::Traffic)?);
                Ok(TrafficSource {
                    inner: Box::new(CellCappedSource {
                        inner: chained,
                        quantum,
                        cap: per_cell_cap.max(1),
                        seen: HashMap::new(),
                        scratch: SampleChunk::new(),
                    }),
                    _shards: self.shards.clone(),
                })
            }
        }
    }

    /// Opens the shards as one **interleaved** source: `block`-record runs
    /// round-robin across shards ([`enq_data::ShardedSource`]), so a
    /// multi-pass fit sees every epoch of traffic mixed instead of oldest
    /// traffic first.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Traffic`] for unopenable shards or a zero
    /// `block`.
    pub fn interleaved_source(&self, block: usize) -> Result<TrafficSource, ServeError> {
        Ok(TrafficSource {
            inner: Box::new(
                ShardedSource::new(self.open_shards()?, block).map_err(ServeError::Traffic)?,
            ),
            _shards: self.shards.clone(),
        })
    }
}

/// An owned [`SampleSource`] over a [`TrafficCorpus`]'s shard files. Keeps
/// the shard files alive (reference-counted) while a rebuild streams them.
pub struct TrafficSource {
    inner: Box<dyn SampleSource>,
    _shards: Vec<Arc<TrafficShard>>,
}

impl std::fmt::Debug for TrafficSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficSource")
            .field("shards", &self._shards.len())
            .field("feature_dim", &self.inner.feature_dim())
            .finish_non_exhaustive()
    }
}

impl SampleSource for TrafficSource {
    fn feature_dim(&self) -> usize {
        self.inner.feature_dim()
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }

    fn reset(&mut self) -> Result<(), DataError> {
        self.inner.reset()
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        self.inner.next_chunk(max_samples, chunk)
    }
}

/// How a refresh corpus weights the recorded traffic (see
/// [`TrafficCorpus::weighted_source`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum CorpusWeighting {
    /// Replay traffic as recorded: popular feature cells dominate the
    /// refresh in proportion to how often they were served.
    #[default]
    Popularity,
    /// Deduplicate per quantized feature cell: at most `per_cell_cap`
    /// records of any one cell reach the fit, so rare regions of the
    /// traffic distribution keep their vote.
    Coverage {
        /// Records of one quantized cell that survive (clamped to ≥ 1).
        per_cell_cap: usize,
        /// Cell width passed to [`crate::cache::quantize_features`]; `0.0`
        /// dedups exact bit patterns only.
        quantum: f64,
    },
}

/// Streaming per-cell cap over an inner source: records whose quantized
/// feature cell has already yielded `cap` records are skipped. `reset`
/// clears the seen-cell table, so every pass of a multi-pass fit sees the
/// identical capped stream.
struct CellCappedSource {
    inner: Box<dyn SampleSource>,
    quantum: f64,
    cap: usize,
    seen: HashMap<Vec<i64>, usize>,
    scratch: SampleChunk,
}

impl SampleSource for CellCappedSource {
    fn feature_dim(&self) -> usize {
        self.inner.feature_dim()
    }

    fn len_hint(&self) -> Option<usize> {
        // The cap filters an unknown number of records; claiming the inner
        // hint would over-promise.
        None
    }

    fn reset(&mut self) -> Result<(), DataError> {
        self.seen.clear();
        self.inner.reset()
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        chunk.clear();
        while chunk.len() < max_samples {
            // Pull at most the remaining space: surviving records can then
            // always be appended without spilling past `max_samples`.
            let need = max_samples - chunk.len();
            if self.inner.next_chunk(need, &mut self.scratch)? == 0 {
                break;
            }
            for (sample, &label) in self.scratch.samples().iter().zip(self.scratch.labels()) {
                let cell = quantize_features(sample, self.quantum);
                let count = self.seen.entry(cell).or_insert(0);
                if *count < self.cap {
                    *count += 1;
                    chunk.push(sample.clone(), label);
                }
            }
        }
        Ok(chunk.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_data::materialize;

    fn tiny_traffic(buffer: usize, max_shards: usize) -> TrafficAccumulator {
        TrafficAccumulator::new(TrafficConfig {
            enabled: true,
            buffer_samples: buffer,
            max_shards,
            spill_dir: None,
            audit_window: 4,
        })
    }

    fn vector(i: usize) -> Vec<f64> {
        vec![i as f64, (i * i) as f64 * 0.25, -(i as f64)]
    }

    #[test]
    fn disabled_accumulator_records_nothing() {
        let traffic = TrafficAccumulator::new(TrafficConfig::default());
        assert!(!traffic.is_enabled());
        traffic.record("m", &[1.0, 2.0], 0);
        assert_eq!(traffic.stats("m"), TrafficStats::default());
        assert!(traffic.model_ids().is_empty());
        assert!(matches!(traffic.corpus("m"), Err(ServeError::NoTraffic(_))));
    }

    #[test]
    fn spills_at_budget_and_replays_in_order() {
        let traffic = tiny_traffic(4, 64);
        for i in 0..10 {
            traffic.record("m", &vector(i), i % 2);
        }
        let stats = traffic.stats("m");
        assert_eq!(stats.recorded, 10);
        assert_eq!(stats.shards, 2, "two full spills of 4");
        assert_eq!(stats.spilled, 8);
        assert_eq!(stats.buffered, 2);

        let corpus = traffic.corpus("m").unwrap();
        assert_eq!(corpus.len(), 10, "corpus flushes the tail");
        assert_eq!(corpus.num_shards(), 3);
        assert_eq!(corpus.feature_dim(), 3);
        let mut source = corpus.chronological_source().unwrap();
        assert_eq!(source.len_hint(), Some(10));
        let replay = materialize(&mut source, "replay").unwrap();
        for (i, (sample, &label)) in replay.samples().iter().zip(replay.labels()).enumerate() {
            assert_eq!(sample, &vector(i), "chronological order is arrival order");
            assert_eq!(label, i % 2);
        }
        // The same corpus replays identically a second time.
        let again = {
            let mut source = corpus.chronological_source().unwrap();
            materialize(&mut source, "again").unwrap()
        };
        assert_eq!(again.samples(), replay.samples());
    }

    #[test]
    fn corpus_outlives_clear_and_files_go_with_the_last_reference() {
        let traffic = tiny_traffic(2, 64);
        for i in 0..6 {
            traffic.record("m", &vector(i), 0);
        }
        let corpus = traffic.corpus("m").unwrap();
        let paths = corpus.shard_paths();
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.exists()));
        assert_eq!(traffic.clear("m"), 6);
        // The corpus still holds the files.
        assert!(paths.iter().all(|p| p.exists()));
        let mut source = corpus.chronological_source().unwrap();
        assert_eq!(materialize(&mut source, "r").unwrap().len(), 6);
        drop(source);
        drop(corpus);
        assert!(
            paths.iter().all(|p| !p.exists()),
            "last reference removes the shard files"
        );
    }

    #[test]
    fn ring_rotation_bounds_disk_and_counts_evictions() {
        let traffic = tiny_traffic(2, 2);
        for i in 0..10 {
            traffic.record("m", &vector(i), 0);
        }
        let stats = traffic.stats("m");
        assert_eq!(stats.shards, 2, "ring capped at max_shards");
        assert_eq!(stats.spilled, 4);
        assert_eq!(stats.rotated_out, 6, "three evicted shards of 2");
        // The corpus sees only the surviving window, oldest first.
        let corpus = traffic.corpus("m").unwrap();
        let mut source = corpus.chronological_source().unwrap();
        let replay = materialize(&mut source, "window").unwrap();
        assert_eq!(replay.samples()[0], vector(6));
        assert_eq!(replay.len(), 4);
    }

    #[test]
    fn interleaved_source_mixes_shards_deterministically() {
        let traffic = tiny_traffic(3, 64);
        for i in 0..9 {
            traffic.record("m", &vector(i), 0);
        }
        let corpus = traffic.corpus("m").unwrap();
        assert_eq!(corpus.num_shards(), 3);
        let mut source = corpus.interleaved_source(1).unwrap();
        let replay = materialize(&mut source, "mixed").unwrap();
        // Round-robin single records across the three 3-record shards.
        let expected: Vec<Vec<f64>> = [0, 3, 6, 1, 4, 7, 2, 5, 8]
            .iter()
            .map(|&i| vector(i))
            .collect();
        assert_eq!(replay.samples(), &expected[..]);
        assert!(matches!(
            corpus.interleaved_source(0),
            Err(ServeError::Traffic(_))
        ));
    }

    #[test]
    fn dimension_mismatches_are_dropped_not_fatal() {
        let traffic = tiny_traffic(8, 64);
        traffic.record("m", &[1.0, 2.0], 0);
        traffic.record("m", &[1.0, 2.0, 3.0], 0); // wrong dim: dropped
        traffic.record("m", &[], 0); // empty: ignored entirely
        let stats = traffic.stats("m");
        assert_eq!(stats.recorded, 1);
        assert_eq!(stats.dropped, 1);
        // Models are isolated: a second id records independently.
        traffic.record("other", &[1.0], 1);
        assert_eq!(traffic.stats("other").recorded, 1);
        assert_eq!(traffic.model_ids(), vec!["m", "other"]);
    }

    #[test]
    fn audit_ring_keeps_the_most_recent_window() {
        let traffic = tiny_traffic(2, 64); // audit_window: 4
        for i in 0..10 {
            traffic.record("m", &vector(i), i);
        }
        let stats = traffic.stats("m");
        assert_eq!(stats.audit_samples, 4);
        let recent = traffic.recent_features("m", 16);
        assert_eq!(recent.len(), 4);
        // The ring holds exactly the last 4 records (slot order, not
        // arrival order).
        let mut labels: Vec<usize> = recent.iter().map(|(_, l)| *l).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec![6, 7, 8, 9]);
        for (features, label) in &recent {
            assert_eq!(features, &vector(*label));
        }
        assert_eq!(traffic.recent_features("m", 2).len(), 2);
        assert!(traffic.recent_features("unknown", 8).is_empty());
    }

    #[test]
    fn compaction_merges_the_ring_and_preserves_replay() {
        let traffic = tiny_traffic(2, 64);
        for i in 0..7 {
            traffic.record("m", &vector(i), i % 2);
        }
        let before = traffic.corpus("m").unwrap();
        assert_eq!(before.num_shards(), 4, "3 spills + the flushed tail");
        let old_paths = before.shard_paths();

        let merged = traffic.compact("m").unwrap();
        assert_eq!(merged, 4);
        let stats = traffic.stats("m");
        assert_eq!(stats.shards, 1, "ring replaced by one shard");
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.spilled, 7, "no records lost");

        // The compacted corpus replays identically to the pre-compaction
        // snapshot, chronologically.
        let after = traffic.corpus("m").unwrap();
        let replay = |corpus: &TrafficCorpus| {
            let mut source = corpus.chronological_source().unwrap();
            materialize(&mut source, "r").unwrap()
        };
        let (old, new) = (replay(&before), replay(&after));
        assert_eq!(old.samples(), new.samples());
        assert_eq!(old.labels(), new.labels());
        // Pre-compaction snapshots keep their own files alive; once both
        // are gone the old shards disappear.
        drop(before);
        assert!(old_paths.iter().all(|p| !p.exists()));

        // Compacting a single-shard ring is a no-op.
        assert_eq!(traffic.compact("m").unwrap(), 1);
        assert_eq!(traffic.stats("m").compactions, 1);
        assert!(matches!(
            traffic.compact("unknown"),
            Err(ServeError::NoTraffic(_))
        ));
    }

    #[test]
    fn coverage_weighting_caps_records_per_cell() {
        let traffic = tiny_traffic(3, 64);
        // 12 records: the same cell 9 times, two rarer cells.
        for _ in 0..9 {
            traffic.record("m", &[1.0, 0.0, 0.0], 0);
        }
        traffic.record("m", &[0.0, 1.0, 0.0], 1);
        traffic.record("m", &[0.0, 1.0, 0.0], 1);
        traffic.record("m", &[0.0, 0.0, 1.0], 2);
        let corpus = traffic.corpus("m").unwrap();

        // Popularity: the full replay.
        let mut source = corpus
            .weighted_source(&CorpusWeighting::Popularity)
            .unwrap();
        assert_eq!(materialize(&mut source, "pop").unwrap().len(), 12);

        // Coverage with a cap of 2: the hot cell is capped, rare cells
        // keep everything.
        let weighting = CorpusWeighting::Coverage {
            per_cell_cap: 2,
            quantum: 1e-6,
        };
        let mut source = corpus.weighted_source(&weighting).unwrap();
        let capped = materialize(&mut source, "cov").unwrap();
        assert_eq!(capped.len(), 5, "2 + 2 + 1 survive");
        let ones = capped.labels().iter().filter(|&&l| l == 0).count();
        assert_eq!(ones, 2, "hot cell capped at 2");
        // A second pass over the same source is identical (reset clears
        // the seen-cell table).
        let mut source = corpus.weighted_source(&weighting).unwrap();
        let again = materialize(&mut source, "cov2").unwrap();
        assert_eq!(again.samples(), capped.samples());
    }
}

//! Self-driving model lifecycle: the ops autopilot.
//!
//! Everything needed to refresh a drifting model already exists in this
//! crate — traffic capture ([`TrafficAccumulator`]), background rebuild
//! with atomic swap ([`crate::RebuildController`]), the one-call
//! [`EmbedService::refresh_from_traffic`] — but something has to *pull the
//! trigger*. This module is that something: a scheduler thread that watches
//! the per-model signals the stack already exposes and fires a refresh
//! when they say the model no longer matches its traffic.
//!
//! ## Signals
//!
//! 1. **Served-request volume** — [`TrafficStats::recorded`]
//!    (`crate::TrafficStats`). Used as a *gate*: a refresh only makes sense
//!    once enough new traffic has accumulated since the last one to retrain
//!    from ([`RefreshPolicy::min_requests`]).
//! 2. **Cache-hit-rate drop** — windowed from [`crate::CacheStats`]. A
//!    shrinking hit rate means traffic stopped revisiting the feature
//!    cells the cache has answers for: the distribution is moving.
//! 3. **Audit-fidelity decay** — a closed-form spot-audit
//!    ([`EmbedService::spot_audit`]) of the most recent traffic window
//!    against the live centroids: the squared overlap `⟨x̂, ĉ⟩²` is an
//!    upper bound on the fidelity the ansatz can fine-tune to, and it
//!    falls exactly when traffic drifts away from every fitted cluster.
//!
//! ## No flapping, by construction
//!
//! The decision core ([`TriggerState`]) is a deterministic state machine
//! over abstract poll ticks — no wall clock, no randomness — so its
//! anti-flap guarantees are testable as hard properties:
//!
//! * **hysteresis** — a signal must breach for
//!   [`RefreshPolicy::hysteresis_polls`] *consecutive* polls; a one-poll
//!   blip never fires;
//! * **cooldown + deterministic jitter** — after a refresh finishes, no
//!   refire for `cooldown_polls + jitter(model_id, seed)` polls. The
//!   jitter is a pure hash of the model id and policy seed, so a fleet of
//!   models refreshing off the same drop is de-synchronised without any
//!   nondeterminism;
//! * **one in flight** — a model with an active refresh never fires again
//!   until that refresh reaches a terminal state.
//!
//! ## Staying out of serving's way
//!
//! Firing is not free: a refresh streams shards and runs the staged fit.
//! Two mechanisms keep the serve path first-class. **Rebuild admission
//! control**: when the serve queue is non-empty at fire time, the fit's
//! worker budget is shrunk to [`RefreshPolicy::contention_fit_threads`]
//! (one by default) so a refresh competes with live traffic for at most
//! one core. **Corpus shaping**: [`RefreshPolicy::weighting`] replays the
//! corpus as recorded or dedups it per quantized feature cell
//! ([`crate::CorpusWeighting`]). The scheduler also compacts long-lived
//! shard rings ([`TrafficAccumulator::compact`]) once they exceed
//! [`RefreshPolicy::compact_above_shards`], bounding replay cost for
//! models that serve for days.

use crate::error::ServeError;
use crate::rebuild::{RebuildStatus, RebuildTicket};
use crate::service::{EmbedService, RefreshOptions};
use crate::traffic::{CorpusWeighting, TrafficAccumulator, TrafficStats};
use enq_parallel::{spawn_worker, CancelToken, WorkerHandle};
use enqode::StreamingFitConfig;
use std::collections::{HashMap, VecDeque};
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Trigger and scheduling knobs of the autopilot (module docs explain the
/// mechanism each knob tunes).
#[derive(Debug, Clone, PartialEq)]
pub struct RefreshPolicy {
    /// New recorded samples required since the last refresh before any
    /// trigger may fire — the volume gate.
    pub min_requests: u64,
    /// Audit-fidelity floor: a spot-audit mean below this breaches.
    pub min_fidelity: f64,
    /// Hit-rate drop (absolute, vs the best windowed rate observed since
    /// the last refresh) that breaches. `<= 0` disables the hit-rate
    /// trigger.
    pub hit_rate_drop: f64,
    /// Cache lookups a poll window must contain before its hit rate is
    /// considered meaningful.
    pub min_window_lookups: u64,
    /// Recent feature vectors spot-audited per poll.
    pub audit_samples: usize,
    /// Consecutive breaching polls required before firing.
    pub hysteresis_polls: u32,
    /// Polls after a refresh finishes during which no refire may happen.
    pub cooldown_polls: u64,
    /// Upper bound of the deterministic per-model jitter added to the
    /// cooldown (`hash(model_id, seed) % (jitter_polls + 1)` extra polls).
    pub jitter_polls: u64,
    /// Seed of the jitter hash — the only randomness-like input, and it is
    /// explicit so reruns are reproducible.
    pub seed: u64,
    /// Wall-clock interval between polls.
    pub poll_interval: Duration,
    /// How the refresh corpus weights recorded traffic.
    pub weighting: CorpusWeighting,
    /// Compact a model's shard ring once it exceeds this many shards.
    pub compact_above_shards: u64,
    /// Streaming-fit shape used by fired refreshes (the `EnqodeConfig`
    /// itself is taken from the live model, so a refresh trains the same
    /// ansatz the model already serves).
    pub stream: StreamingFitConfig,
    /// Fit worker-thread budget when the serve queue is non-empty at fire
    /// time (rebuild admission control).
    pub contention_fit_threads: NonZeroUsize,
}

impl Default for RefreshPolicy {
    fn default() -> Self {
        Self {
            min_requests: 512,
            min_fidelity: 0.9,
            hit_rate_drop: 0.25,
            min_window_lookups: 64,
            audit_samples: 256,
            hysteresis_polls: 2,
            cooldown_polls: 8,
            jitter_polls: 2,
            seed: 0xA070_1207,
            poll_interval: Duration::from_millis(500),
            weighting: CorpusWeighting::Popularity,
            compact_above_shards: 16,
            stream: StreamingFitConfig::default(),
            contention_fit_threads: NonZeroUsize::MIN,
        }
    }
}

/// One poll's worth of per-model signals, fed to [`TriggerState::observe`].
/// Plain data so trigger behaviour is testable without a service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignalSnapshot {
    /// Cumulative recorded samples ([`TrafficStats::recorded`]).
    pub recorded: u64,
    /// Hit rate of this poll window, when the window held enough lookups.
    pub window_hit_rate: Option<f64>,
    /// Mean closed-form audit fidelity of the recent-traffic window.
    pub audit_fidelity: Option<f64>,
}

/// Why a refresh fired.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FireReason {
    /// The spot-audit mean fell below [`RefreshPolicy::min_fidelity`].
    FidelityDecay {
        /// The breaching audit mean.
        observed: f64,
        /// The configured floor.
        floor: f64,
    },
    /// The windowed hit rate fell [`RefreshPolicy::hit_rate_drop`] below
    /// the best rate seen since the last refresh.
    HitRateDrop {
        /// The breaching windowed rate.
        observed: f64,
        /// The best windowed rate since the last refresh.
        baseline: f64,
    },
}

impl std::fmt::Display for FireReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::FidelityDecay { observed, floor } => {
                write!(f, "fidelity-decay observed={observed:.4} floor={floor:.4}")
            }
            Self::HitRateDrop { observed, baseline } => {
                write!(
                    f,
                    "hit-rate-drop observed={observed:.4} baseline={baseline:.4}"
                )
            }
        }
    }
}

/// Deterministic per-model jitter: a pure hash of the model id and policy
/// seed folded into `0..=max` extra cooldown polls.
fn deterministic_jitter(model_id: &str, seed: u64, max: u64) -> u64 {
    if max == 0 {
        return 0;
    }
    // FNV-style byte fold, then a splitmix64 finalizer to spread the seed
    // and short ids over the whole range.
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for b in model_id.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01B3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    h % (max + 1)
}

/// The deterministic per-model trigger state machine. Drives on abstract
/// poll ticks: given the same [`RefreshPolicy`], the same signal trace, and
/// the same tick sequence, it makes bit-identical fire decisions — no clock
/// reads, no entropy.
#[derive(Debug, Clone, PartialEq)]
pub struct TriggerState {
    /// Extra cooldown polls, fixed at construction from (id, seed).
    jitter: u64,
    /// Consecutive breaching polls so far.
    breach_streak: u32,
    /// Best windowed hit rate observed since the last refresh.
    best_hit_rate: Option<f64>,
    /// `recorded` counter value when the last refresh finished.
    recorded_at_fire: u64,
    /// First poll tick at which a fire is allowed again.
    next_allowed_poll: u64,
    /// A refresh fired and has not been reported finished.
    in_flight: bool,
}

impl TriggerState {
    /// Creates the state for one model, deriving its deterministic jitter.
    pub fn new(model_id: &str, policy: &RefreshPolicy) -> Self {
        Self {
            jitter: deterministic_jitter(model_id, policy.seed, policy.jitter_polls),
            breach_streak: 0,
            best_hit_rate: None,
            recorded_at_fire: 0,
            next_allowed_poll: 0,
            in_flight: false,
        }
    }

    /// Whether a fired refresh is still outstanding.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// The model's deterministic jitter in polls.
    pub fn jitter(&self) -> u64 {
        self.jitter
    }

    /// Feeds one poll's signals at tick `poll`. Returns the reason exactly
    /// when a refresh should fire now; the caller must eventually report
    /// the refresh outcome via [`TriggerState::refresh_finished`] (also on
    /// a failed start — that is what arms the cooldown).
    pub fn observe(
        &mut self,
        policy: &RefreshPolicy,
        signal: &SignalSnapshot,
        poll: u64,
    ) -> Option<FireReason> {
        if self.in_flight {
            return None;
        }
        // The hit-rate baseline tracks through cooldowns too: a drop is
        // always measured against the best window since the last refresh.
        let mut reason: Option<FireReason> = None;
        if let Some(rate) = signal.window_hit_rate {
            if let Some(best) = self.best_hit_rate {
                if policy.hit_rate_drop > 0.0 && best - rate >= policy.hit_rate_drop {
                    reason = Some(FireReason::HitRateDrop {
                        observed: rate,
                        baseline: best,
                    });
                }
            }
            let best = self.best_hit_rate.get_or_insert(rate);
            if rate > *best {
                *best = rate;
            }
        }
        // Fidelity decay outranks the hit-rate heuristic when both breach.
        if let Some(fidelity) = signal.audit_fidelity {
            if fidelity < policy.min_fidelity {
                reason = Some(FireReason::FidelityDecay {
                    observed: fidelity,
                    floor: policy.min_fidelity,
                });
            }
        }
        let cooled = poll >= self.next_allowed_poll;
        let enough_traffic =
            signal.recorded.saturating_sub(self.recorded_at_fire) >= policy.min_requests;
        if reason.is_none() || !cooled || !enough_traffic {
            // Gated or healthy polls break the streak: hysteresis demands
            // *consecutive, actionable* breaches.
            self.breach_streak = 0;
            return None;
        }
        self.breach_streak += 1;
        if self.breach_streak < policy.hysteresis_polls.max(1) {
            return None;
        }
        self.breach_streak = 0;
        self.in_flight = true;
        reason
    }

    /// Reports that the fired refresh reached a terminal state (success,
    /// failure, cancellation, or a start that was rejected) at tick `poll`
    /// with the model's `recorded` counter at `recorded`. Arms the
    /// cooldown-plus-jitter window and resets the hit-rate baseline (a
    /// swap sweeps the caches, so the old baseline is meaningless).
    pub fn refresh_finished(&mut self, policy: &RefreshPolicy, poll: u64, recorded: u64) {
        self.in_flight = false;
        self.breach_streak = 0;
        self.best_hit_rate = None;
        self.recorded_at_fire = recorded;
        self.next_allowed_poll = poll
            .saturating_add(policy.cooldown_polls.max(1))
            .saturating_add(self.jitter);
    }
}

/// Monotonic autopilot counters (see [`Autopilot::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AutopilotStats {
    /// Poll loops completed.
    pub polls: u64,
    /// Refreshes fired (started successfully).
    pub fires: u64,
    /// Fired refreshes that swapped a new model in.
    pub refresh_successes: u64,
    /// Fired refreshes that failed, were cancelled, or could not start.
    pub refresh_failures: u64,
    /// Shard-ring compactions performed.
    pub compactions: u64,
}

/// One observable autopilot action, drained via [`Autopilot::drain_events`]
/// (the `enqd` daemon turns these into `ENQD AUTOPILOT` status lines).
#[derive(Debug, Clone, PartialEq)]
pub enum AutopilotEvent {
    /// A refresh fired for `model_id`.
    Fired {
        /// The model being refreshed.
        model_id: String,
        /// The breaching signal.
        reason: FireReason,
        /// Fit worker threads granted (admission control may have shrunk
        /// the budget). `0` means the service default.
        fit_threads: usize,
    },
    /// A fired refresh reached a terminal state.
    RefreshFinished {
        /// The refreshed model.
        model_id: String,
        /// Terminal status of the rebuild.
        status: RebuildStatus,
    },
    /// A fire could not start a refresh (for example the corpus vanished).
    RefreshRejected {
        /// The model whose refresh was rejected.
        model_id: String,
        /// The start error, stringified.
        error: String,
    },
    /// A shard ring was compacted.
    Compacted {
        /// The model whose ring was compacted.
        model_id: String,
        /// Shards merged into one.
        merged: usize,
    },
}

/// Upper bound on buffered, undelivered events; beyond it the oldest event
/// is dropped (the counters in [`AutopilotStats`] never lose information).
const EVENT_BUFFER: usize = 256;

#[derive(Debug, Default)]
struct SharedState {
    polls: AtomicU64,
    fires: AtomicU64,
    refresh_successes: AtomicU64,
    refresh_failures: AtomicU64,
    compactions: AtomicU64,
    events: Mutex<VecDeque<AutopilotEvent>>,
}

impl SharedState {
    fn push_event(&self, event: AutopilotEvent) {
        let mut events = self.events.lock().expect("autopilot events poisoned");
        if events.len() >= EVENT_BUFFER {
            events.pop_front();
        }
        events.push_back(event);
    }
}

/// Per-model scheduler bookkeeping.
struct ModelState {
    trigger: TriggerState,
    ticket: Option<RebuildTicket>,
}

/// The running autopilot: a scheduler thread polling one [`EmbedService`].
/// Dropping it cancels the scheduler and joins the thread; in-flight
/// refreshes it started keep running to completion under the service's
/// [`crate::RebuildController`].
#[derive(Debug)]
pub struct Autopilot {
    shared: Arc<SharedState>,
    policy: RefreshPolicy,
    worker: Option<WorkerHandle<()>>,
}

impl Autopilot {
    /// Spawns the scheduler over `service` with `policy`. The service's
    /// traffic capture should be enabled — without recorded traffic the
    /// autopilot has neither signals nor a corpus and will simply idle.
    pub fn spawn(service: Arc<EmbedService>, policy: RefreshPolicy) -> Self {
        let shared = Arc::new(SharedState::default());
        let worker = {
            let shared = Arc::clone(&shared);
            let policy = policy.clone();
            spawn_worker("enq-autopilot", move |token| {
                run_scheduler(&service, &policy, &shared, &token);
            })
        };
        Self {
            shared,
            policy,
            worker: Some(worker),
        }
    }

    /// The policy the scheduler runs.
    pub fn policy(&self) -> &RefreshPolicy {
        &self.policy
    }

    /// Counter snapshot.
    pub fn stats(&self) -> AutopilotStats {
        AutopilotStats {
            polls: self.shared.polls.load(Ordering::Relaxed),
            fires: self.shared.fires.load(Ordering::Relaxed),
            refresh_successes: self.shared.refresh_successes.load(Ordering::Relaxed),
            refresh_failures: self.shared.refresh_failures.load(Ordering::Relaxed),
            compactions: self.shared.compactions.load(Ordering::Relaxed),
        }
    }

    /// Drains every buffered event, oldest first.
    pub fn drain_events(&self) -> Vec<AutopilotEvent> {
        self.shared
            .events
            .lock()
            .expect("autopilot events poisoned")
            .drain(..)
            .collect()
    }

    /// Whether the scheduler thread is still running.
    pub fn is_running(&self) -> bool {
        self.worker.as_ref().is_some_and(|w| !w.is_finished())
    }

    /// Stops the scheduler and joins its thread. Idempotent; also done on
    /// drop.
    pub fn shutdown(&mut self) {
        if let Some(worker) = self.worker.take() {
            worker.cancel();
            let _ = worker.join();
        }
    }
}

impl Drop for Autopilot {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sleeps `interval` in short slices so cancellation is noticed promptly.
fn interruptible_sleep(interval: Duration, token: &CancelToken) {
    let slice = Duration::from_millis(10).min(interval.max(Duration::from_millis(1)));
    let mut remaining = interval;
    while remaining > Duration::ZERO && !token.is_cancelled() {
        let step = slice.min(remaining);
        std::thread::sleep(step);
        remaining = remaining.saturating_sub(step);
    }
}

fn run_scheduler(
    service: &Arc<EmbedService>,
    policy: &RefreshPolicy,
    shared: &SharedState,
    token: &CancelToken,
) {
    let mut states: HashMap<String, ModelState> = HashMap::new();
    let mut poll: u64 = 0;
    let mut last_cache = service.cache_stats();
    while !token.is_cancelled() {
        interruptible_sleep(policy.poll_interval, token);
        if token.is_cancelled() {
            break;
        }
        poll += 1;
        shared.polls.fetch_add(1, Ordering::Relaxed);
        // The cache counters are service-global; the windowed rate is
        // computed once per poll and shared by every model's trigger (the
        // common deployment serves one model per daemon).
        let cache = service.cache_stats();
        let window_hits = cache.hits.saturating_sub(last_cache.hits);
        let window_lookups = window_hits + cache.misses.saturating_sub(last_cache.misses);
        last_cache = cache;
        let window_hit_rate = (window_lookups >= policy.min_window_lookups.max(1))
            .then(|| window_hits as f64 / window_lookups as f64);

        for model_id in service.traffic().model_ids() {
            if token.is_cancelled() {
                return;
            }
            if !service.registry().contains(&model_id) {
                continue;
            }
            let state = states
                .entry(model_id.clone())
                .or_insert_with(|| ModelState {
                    trigger: TriggerState::new(&model_id, policy),
                    ticket: None,
                });
            let stats = service.traffic().stats(&model_id);
            reap_finished_refresh(policy, shared, state, &model_id, poll, &stats);
            compact_if_due(policy, shared, service.traffic(), &model_id, &stats);
            let snapshot = SignalSnapshot {
                recorded: stats.recorded,
                window_hit_rate,
                audit_fidelity: service
                    .spot_audit(&model_id, policy.audit_samples)
                    .map(|a| a.mean_fidelity),
            };
            if let Some(reason) = state.trigger.observe(policy, &snapshot, poll) {
                fire_refresh(
                    policy, shared, service, state, &model_id, poll, &stats, reason,
                );
            }
        }
    }
}

/// Folds a finished refresh ticket back into the trigger state (arming the
/// cooldown) and publishes its outcome.
fn reap_finished_refresh(
    policy: &RefreshPolicy,
    shared: &SharedState,
    state: &mut ModelState,
    model_id: &str,
    poll: u64,
    stats: &TrafficStats,
) {
    let Some(ticket) = &state.ticket else { return };
    if !ticket.is_finished() {
        return;
    }
    let status = ticket.status();
    match status {
        RebuildStatus::Succeeded => {
            shared.refresh_successes.fetch_add(1, Ordering::Relaxed);
        }
        _ => {
            shared.refresh_failures.fetch_add(1, Ordering::Relaxed);
        }
    }
    shared.push_event(AutopilotEvent::RefreshFinished {
        model_id: model_id.to_string(),
        status,
    });
    state.ticket = None;
    state.trigger.refresh_finished(policy, poll, stats.recorded);
}

/// Compacts the model's shard ring when it has outgrown the policy bound.
fn compact_if_due(
    policy: &RefreshPolicy,
    shared: &SharedState,
    traffic: &TrafficAccumulator,
    model_id: &str,
    stats: &TrafficStats,
) {
    if stats.shards <= policy.compact_above_shards.max(1) {
        return;
    }
    // Best-effort like every traffic-side operation: a failed compaction
    // leaves the ring unchanged and the next poll retries.
    if let Ok(merged) = traffic.compact(model_id) {
        if merged > 1 {
            shared.compactions.fetch_add(1, Ordering::Relaxed);
            shared.push_event(AutopilotEvent::Compacted {
                model_id: model_id.to_string(),
                merged,
            });
        }
    }
}

/// Starts the fired refresh with admission control applied, recording the
/// outcome either way.
#[allow(clippy::too_many_arguments)]
fn fire_refresh(
    policy: &RefreshPolicy,
    shared: &SharedState,
    service: &Arc<EmbedService>,
    state: &mut ModelState,
    model_id: &str,
    poll: u64,
    stats: &TrafficStats,
    reason: FireReason,
) {
    let outcome = start_refresh(policy, service, model_id);
    match outcome {
        Ok((ticket, fit_threads)) => {
            shared.fires.fetch_add(1, Ordering::Relaxed);
            shared.push_event(AutopilotEvent::Fired {
                model_id: model_id.to_string(),
                reason,
                fit_threads,
            });
            state.ticket = Some(ticket);
        }
        Err(e) => {
            // A fire that could not start still pays the cooldown so a
            // persistent error (say, traffic cleared under us) cannot spin
            // the scheduler.
            shared.refresh_failures.fetch_add(1, Ordering::Relaxed);
            shared.push_event(AutopilotEvent::RefreshRejected {
                model_id: model_id.to_string(),
                error: e.to_string(),
            });
            state.trigger.refresh_finished(policy, poll, stats.recorded);
        }
    }
}

/// Builds the refresh call: the `EnqodeConfig` comes from the live model
/// (the refresh trains the ansatz the model already serves), the fit
/// thread budget shrinks while the serve queue is non-empty.
fn start_refresh(
    policy: &RefreshPolicy,
    service: &Arc<EmbedService>,
    model_id: &str,
) -> Result<(RebuildTicket, usize), ServeError> {
    let pipeline = service
        .registry()
        .get(model_id)
        .ok_or_else(|| ServeError::ModelNotFound(model_id.to_string()))?;
    let config = pipeline
        .class_models()
        .first()
        .ok_or_else(|| ServeError::Rebuild("model has no trained classes".to_string()))?
        .model
        .config()
        .clone();
    let contended = service.queue_depth() > 0;
    let fit_threads = contended.then_some(policy.contention_fit_threads);
    let options = RefreshOptions {
        weighting: policy.weighting,
        fit_threads,
    };
    let ticket =
        service.refresh_from_traffic_with(model_id, config, policy.stream.clone(), &options)?;
    Ok((ticket, fit_threads.map_or(0, NonZeroUsize::get)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick_policy() -> RefreshPolicy {
        RefreshPolicy {
            min_requests: 10,
            min_fidelity: 0.9,
            hit_rate_drop: 0.2,
            hysteresis_polls: 2,
            cooldown_polls: 4,
            jitter_polls: 3,
            seed: 7,
            ..RefreshPolicy::default()
        }
    }

    fn healthy(recorded: u64) -> SignalSnapshot {
        SignalSnapshot {
            recorded,
            window_hit_rate: Some(0.9),
            audit_fidelity: Some(0.99),
        }
    }

    fn decayed(recorded: u64) -> SignalSnapshot {
        SignalSnapshot {
            recorded,
            window_hit_rate: Some(0.9),
            audit_fidelity: Some(0.5),
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for max in [0u64, 1, 7, 100] {
            for id in ["m", "mnist", "a-very-long-model-identifier"] {
                let a = deterministic_jitter(id, 42, max);
                let b = deterministic_jitter(id, 42, max);
                assert_eq!(a, b, "same inputs, same jitter");
                assert!(a <= max);
            }
        }
        // Different ids de-synchronise (holds for this seed/range choice).
        assert_ne!(
            deterministic_jitter("model-a", 42, 1000),
            deterministic_jitter("model-b", 42, 1000),
        );
    }

    #[test]
    fn hysteresis_blocks_single_poll_blips() {
        let policy = tick_policy();
        let mut state = TriggerState::new("m", &policy);
        assert_eq!(state.observe(&policy, &decayed(100), 1), None, "streak 1");
        assert_eq!(state.observe(&policy, &healthy(110), 2), None, "blip reset");
        assert_eq!(
            state.observe(&policy, &decayed(120), 3),
            None,
            "streak 1 again"
        );
        assert!(
            state.observe(&policy, &decayed(130), 4).is_some(),
            "streak 2 fires"
        );
    }

    #[test]
    fn volume_gate_blocks_quiet_models() {
        let policy = tick_policy();
        let mut state = TriggerState::new("m", &policy);
        for poll in 1..10 {
            assert_eq!(state.observe(&policy, &decayed(5), poll), None);
        }
        assert!(!state.in_flight());
    }

    #[test]
    fn cooldown_and_in_flight_serialise_fires() {
        let policy = tick_policy();
        let mut state = TriggerState::new("m", &policy);
        let mut poll = 0;
        let fire_at = |state: &mut TriggerState, poll: &mut u64| loop {
            *poll += 1;
            if state
                .observe(&policy, &decayed(*poll * 50), *poll)
                .is_some()
            {
                return *poll;
            }
            assert!(*poll < 1000, "never fired");
        };
        let first = fire_at(&mut state, &mut poll);
        // In flight: continuous decay cannot re-fire.
        for _ in 0..20 {
            poll += 1;
            assert_eq!(state.observe(&policy, &decayed(poll * 50), poll), None);
        }
        state.refresh_finished(&policy, poll, poll * 50);
        let finished_at = poll;
        let second = fire_at(&mut state, &mut poll);
        assert!(second > first);
        assert!(
            second >= finished_at + policy.cooldown_polls + state.jitter(),
            "cooldown+jitter respected: {second} vs {finished_at}"
        );
    }

    #[test]
    fn hit_rate_drop_fires_against_best_baseline() {
        let policy = tick_policy();
        let mut state = TriggerState::new("m", &policy);
        let rate = |r: f64, recorded: u64| SignalSnapshot {
            recorded,
            window_hit_rate: Some(r),
            audit_fidelity: Some(0.99),
        };
        assert_eq!(state.observe(&policy, &rate(0.6, 100), 1), None);
        assert_eq!(
            state.observe(&policy, &rate(0.8, 200), 2),
            None,
            "baseline rises"
        );
        // 0.65 is only 0.15 below the 0.8 baseline: no breach.
        assert_eq!(state.observe(&policy, &rate(0.65, 300), 3), None);
        assert_eq!(state.observe(&policy, &rate(0.5, 400), 4), None, "streak 1");
        match state.observe(&policy, &rate(0.5, 500), 5) {
            Some(FireReason::HitRateDrop { observed, baseline }) => {
                assert!((observed - 0.5).abs() < 1e-12);
                assert!((baseline - 0.8).abs() < 1e-12);
            }
            other => panic!("expected hit-rate fire, got {other:?}"),
        }
    }

    #[test]
    fn event_buffer_is_bounded() {
        let shared = SharedState::default();
        for i in 0..(EVENT_BUFFER + 10) {
            shared.push_event(AutopilotEvent::Compacted {
                model_id: format!("m{i}"),
                merged: 2,
            });
        }
        let events = shared.events.lock().unwrap();
        assert_eq!(events.len(), EVENT_BUFFER);
        // Oldest dropped first.
        assert!(matches!(
            events.front(),
            Some(AutopilotEvent::Compacted { model_id, .. }) if model_id == "m10"
        ));
    }
}

//! The sharded model registry.
//!
//! A serving process owns many trained [`EnqodePipeline`]s — one per
//! dataset/model id — and every request resolves its id to a pipeline before
//! any embedding work happens. The access pattern is read-mostly (lookups per
//! request, writes only on deploy/retire), so the registry shards its map and
//! guards each shard with an [`RwLock`]: concurrent lookups never contend
//! with each other, and a deploy only blocks the one shard its id hashes to.
//!
//! Pipelines are stored behind [`Arc`], so a lookup is a pointer clone — no
//! model weights, cluster tables, or symbolic state are ever copied on the
//! request path (the pipeline itself shares one symbolic table across its
//! class models, see [`EnqodePipeline::shared_symbolic`]).

use enq_data::SampleSource;
use enqode::{EnqodeConfig, EnqodeError, EnqodePipeline, StreamDriver, StreamingFitConfig};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Default number of registry shards.
pub const DEFAULT_REGISTRY_SHARDS: usize = 16;

// Keys are interned `Arc<str>`: [`ModelRegistry::resolve`] hands the key's
// pointer clone to the request path, so per-request id handling (queue
// entries, cache keys, responses) never copies the id string. `Arc<str>:
// Borrow<str>` keeps `&str` lookups allocation-free.
type Shard = RwLock<HashMap<Arc<str>, (Arc<EnqodePipeline>, u64)>>;

/// A sharded, read-mostly map from model id to trained pipeline.
///
/// # Examples
///
/// ```
/// use enq_serve::ModelRegistry;
///
/// let registry = ModelRegistry::new();
/// assert!(registry.get("mnist").is_none());
/// assert_eq!(registry.len(), 0);
/// ```
#[derive(Debug)]
pub struct ModelRegistry {
    shards: Vec<Shard>,
    /// Monotonic registration counter: every insert gets a fresh
    /// **generation**, and cache keys embed it — after a model id is
    /// replaced, lookups use the new generation and can never hit solutions
    /// computed by (or inserted late from) the previous registration.
    generations: AtomicU64,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// Creates an empty registry with [`DEFAULT_REGISTRY_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_REGISTRY_SHARDS)
    }

    /// Creates an empty registry with an explicit shard count (minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1)).map(|_| Shard::default()).collect(),
            generations: AtomicU64::new(0),
        }
    }

    fn shard_for(&self, model_id: &str) -> &Shard {
        let mut hasher = DefaultHasher::new();
        model_id.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Registers (or replaces) a pipeline under `model_id`, returning the
    /// previously registered pipeline if one existed.
    pub fn insert(
        &self,
        model_id: impl Into<String>,
        pipeline: Arc<EnqodePipeline>,
    ) -> Option<Arc<EnqodePipeline>> {
        self.insert_tracked(model_id, pipeline).0
    }

    /// Like [`ModelRegistry::insert`], but also returns the **generation**
    /// assigned to the new registration — callers that persist the model
    /// (see `enq_store`) record this so a later restore can resume at the
    /// same generation.
    pub fn insert_tracked(
        &self,
        model_id: impl Into<String>,
        pipeline: Arc<EnqodePipeline>,
    ) -> (Option<Arc<EnqodePipeline>>, u64) {
        let model_id: Arc<str> = Arc::from(model_id.into());
        let generation = self.generations.fetch_add(1, Ordering::Relaxed) + 1;
        let old = self
            .shard_for(&model_id)
            .write()
            .expect("registry shard poisoned")
            .insert(model_id, (pipeline, generation))
            .map(|(old, _)| old);
        (old, generation)
    }

    /// Registers `pipeline` under `model_id` at an **explicit** generation —
    /// the warm-boot path. The registry's generation counter is raised (via
    /// `fetch_max`) so it never falls below any restored generation: the next
    /// [`ModelRegistry::insert`] is guaranteed a strictly larger generation
    /// than everything restored, preserving the cache-invalidation invariant
    /// across process restarts.
    ///
    /// Returns the previously registered pipeline if one existed.
    pub fn restore(
        &self,
        model_id: impl Into<String>,
        pipeline: Arc<EnqodePipeline>,
        generation: u64,
    ) -> Option<Arc<EnqodePipeline>> {
        let model_id: Arc<str> = Arc::from(model_id.into());
        self.generations.fetch_max(generation, Ordering::Relaxed);
        self.shard_for(&model_id)
            .write()
            .expect("registry shard poisoned")
            .insert(model_id, (pipeline, generation))
            .map(|(old, _)| old)
    }

    /// Returns every registration as `(id, pipeline, generation)`, sorted by
    /// id — the input to a registry-wide persistence pass. Pipelines are
    /// `Arc` clones; nothing is copied. The snapshot is per-shard consistent
    /// (each shard read under its lock), not a global atomic view — the
    /// usual read-mostly tradeoff.
    pub fn snapshot(&self) -> Vec<(String, Arc<EnqodePipeline>, u64)> {
        let mut entries: Vec<(String, Arc<EnqodePipeline>, u64)> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("registry shard poisoned")
                    .iter()
                    .map(|(id, (pipeline, generation))| {
                        (id.to_string(), Arc::clone(pipeline), *generation)
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        entries
    }

    /// Returns a cheap shared handle to the pipeline registered under
    /// `model_id`.
    pub fn get(&self, model_id: &str) -> Option<Arc<EnqodePipeline>> {
        self.get_with_generation(model_id)
            .map(|(pipeline, _)| pipeline)
    }

    /// Returns the pipeline plus the **generation** of its registration.
    /// Cache keys embed the generation, so solutions computed against one
    /// registration are unreachable after the id is re-registered.
    pub fn get_with_generation(&self, model_id: &str) -> Option<(Arc<EnqodePipeline>, u64)> {
        self.shard_for(model_id)
            .read()
            .expect("registry shard poisoned")
            .get(model_id)
            .cloned()
    }

    /// Like [`ModelRegistry::get_with_generation`], additionally returning
    /// the registry's **interned id** (`Arc<str>`) — a pointer clone of the
    /// map key. The request path threads this handle through queue entries,
    /// cache keys and responses so a served request never copies its id
    /// string; the whole resolve is allocation-free.
    pub fn resolve(&self, model_id: &str) -> Option<(Arc<str>, Arc<EnqodePipeline>, u64)> {
        self.shard_for(model_id)
            .read()
            .expect("registry shard poisoned")
            .get_key_value(model_id)
            .map(|(id, (pipeline, generation))| (Arc::clone(id), Arc::clone(pipeline), *generation))
    }

    /// Returns just the interned id of a registered model (see
    /// [`ModelRegistry::resolve`]); `None` for unregistered ids.
    pub fn resolve_id(&self, model_id: &str) -> Option<Arc<str>> {
        self.shard_for(model_id)
            .read()
            .expect("registry shard poisoned")
            .get_key_value(model_id)
            .map(|(id, _)| Arc::clone(id))
    }

    /// Removes and returns the pipeline registered under `model_id`.
    /// In-flight requests holding the `Arc` keep working; the model is simply
    /// no longer resolvable for new requests.
    pub fn remove(&self, model_id: &str) -> Option<Arc<EnqodePipeline>> {
        self.shard_for(model_id)
            .write()
            .expect("registry shard poisoned")
            .remove(model_id)
            .map(|(old, _)| old)
    }

    /// Returns `true` if `model_id` is registered.
    pub fn contains(&self, model_id: &str) -> bool {
        self.shard_for(model_id)
            .read()
            .expect("registry shard poisoned")
            .contains_key(model_id)
    }

    /// Returns the number of registered models.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("registry shard poisoned").len())
            .sum()
    }

    /// Returns `true` if no models are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Retrains the model registered under `model_id` out-of-core from a
    /// [`SampleSource`] and atomically swaps it in under the **same id** —
    /// the unchanged-API rebuild path: callers keep resolving `model_id`
    /// throughout; in-flight requests finish on the old pipeline (their
    /// `Arc` stays alive), new requests see the new one, and the fresh
    /// registration generation makes solutions cached against the old
    /// pipeline unreachable (see [`ModelRegistry::get_with_generation`]).
    ///
    /// Training runs on the calling thread via the staged
    /// [`StreamDriver`] (prefetched ingestion, feature spill, optional
    /// adaptive cluster search) **before** any registry lock is touched, so
    /// serving never blocks on a rebuild.
    ///
    /// Returns the freshly trained pipeline handle.
    ///
    /// # Errors
    ///
    /// Propagates streaming-fit errors; on error the registry is untouched
    /// (the previous registration, if any, keeps serving).
    pub fn rebuild_streaming(
        &self,
        model_id: impl Into<String>,
        source: &mut dyn SampleSource,
        config: EnqodeConfig,
        stream: &StreamingFitConfig,
    ) -> Result<Arc<EnqodePipeline>, EnqodeError> {
        let pipeline = Arc::new(StreamDriver::new(source, config, stream.clone())?.run()?);
        self.insert(model_id, Arc::clone(&pipeline));
        Ok(pipeline)
    }

    /// Returns all registered model ids (sorted, so the listing is stable
    /// regardless of shard layout).
    pub fn model_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("registry shard poisoned")
                    .keys()
                    .map(|k| k.to_string())
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
    use enqode::{AnsatzConfig, EnqodeConfig, EntanglerKind};

    fn tiny_pipeline(seed: u64) -> Arc<EnqodePipeline> {
        let dataset = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 1,
                samples_per_class: 4,
                seed,
            },
        )
        .unwrap();
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 2,
                num_layers: 2,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.5,
            max_clusters: 2,
            offline_max_iterations: 20,
            offline_restarts: 1,
            online_max_iterations: 10,
            offline_rescue: false,
            seed,
        };
        Arc::new(EnqodePipeline::build(&dataset, config).unwrap())
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let registry = ModelRegistry::with_shards(4);
        let a = tiny_pipeline(1);
        assert!(registry.insert("a", Arc::clone(&a)).is_none());
        assert!(registry.contains("a"));
        assert_eq!(registry.len(), 1);
        let got = registry.get("a").unwrap();
        assert!(Arc::ptr_eq(&a, &got), "lookup must be a pointer clone");
        // Replacing returns the old pipeline.
        let b = tiny_pipeline(2);
        let old = registry.insert("a", Arc::clone(&b)).unwrap();
        assert!(Arc::ptr_eq(&a, &old));
        // Removal keeps in-flight handles alive.
        let removed = registry.remove("a").unwrap();
        assert!(Arc::ptr_eq(&b, &removed));
        assert!(registry.get("a").is_none());
        assert!(registry.is_empty());
    }

    #[test]
    fn ids_span_shards_and_sort_stably() {
        let registry = ModelRegistry::with_shards(3);
        let p = tiny_pipeline(3);
        for id in ["zeta", "alpha", "mid"] {
            registry.insert(id, Arc::clone(&p));
        }
        assert_eq!(registry.model_ids(), vec!["alpha", "mid", "zeta"]);
        assert_eq!(registry.len(), 3);
    }

    #[test]
    fn rebuild_streaming_swaps_under_the_same_id_with_a_fresh_generation() {
        let registry = ModelRegistry::with_shards(2);
        let old = tiny_pipeline(7);
        registry.insert("live", Arc::clone(&old));
        let (_, old_generation) = registry.get_with_generation("live").unwrap();

        let dataset = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 6,
                seed: 8,
            },
        )
        .unwrap();
        let mut source = enq_data::InMemorySource::new(&dataset);
        let config = EnqodeConfig {
            ansatz: enqode::AnsatzConfig {
                num_qubits: 2,
                num_layers: 2,
                entangler: EntanglerKind::Cy,
            },
            offline_max_iterations: 20,
            offline_restarts: 1,
            online_max_iterations: 10,
            seed: 8,
            ..EnqodeConfig::default()
        };
        let stream = StreamingFitConfig {
            chunk_size: 4,
            clusters_per_class: 1,
            passes: 1,
            polish_passes: 1,
            ..StreamingFitConfig::default()
        };
        let rebuilt = registry
            .rebuild_streaming("live", &mut source, config, &stream)
            .unwrap();
        // Same id, new pipeline, bumped generation; the old handle is still
        // usable by in-flight requests.
        let (current, new_generation) = registry.get_with_generation("live").unwrap();
        assert!(Arc::ptr_eq(&rebuilt, &current));
        assert!(!Arc::ptr_eq(&old, &current));
        assert!(new_generation > old_generation);
        assert_eq!(current.class_models().len(), 2);
        let (_, embedding) = current.embed(dataset.sample(0)).unwrap();
        assert!(embedding.ideal_fidelity > 0.0);
        // A failing rebuild leaves the registration untouched.
        let bad = StreamingFitConfig {
            chunk_size: 0,
            ..StreamingFitConfig::default()
        };
        let config2 = EnqodeConfig {
            ansatz: enqode::AnsatzConfig {
                num_qubits: 2,
                num_layers: 2,
                entangler: EntanglerKind::Cy,
            },
            ..EnqodeConfig::default()
        };
        assert!(registry
            .rebuild_streaming("live", &mut source, config2, &bad)
            .is_err());
        let (after_failure, generation_after) = registry.get_with_generation("live").unwrap();
        assert!(Arc::ptr_eq(&after_failure, &rebuilt));
        assert_eq!(generation_after, new_generation);
    }

    #[test]
    fn restore_preserves_generation_and_raises_the_counter() {
        let registry = ModelRegistry::with_shards(4);
        let p = tiny_pipeline(5);
        // Warm boot: restore two models at their persisted generations.
        registry.restore("beta", Arc::clone(&p), 9);
        registry.restore("alpha", Arc::clone(&p), 4);
        assert_eq!(registry.get_with_generation("beta").unwrap().1, 9);
        assert_eq!(registry.get_with_generation("alpha").unwrap().1, 4);
        // The counter resumed past the highest restored generation, so the
        // next insert can never collide with a restored (id, generation).
        let (_, fresh) = registry.insert_tracked("gamma", Arc::clone(&p));
        assert_eq!(fresh, 10);
        // Snapshot is sorted by id and carries generations verbatim.
        let snap = registry.snapshot();
        let summary: Vec<(&str, u64)> = snap
            .iter()
            .map(|(id, _, generation)| (id.as_str(), *generation))
            .collect();
        assert_eq!(summary, vec![("alpha", 4), ("beta", 9), ("gamma", 10)]);
    }

    #[test]
    fn resolve_returns_the_interned_id() {
        let registry = ModelRegistry::with_shards(4);
        let p = tiny_pipeline(6);
        registry.insert("live", Arc::clone(&p));
        let (id_a, got, generation) = registry.resolve("live").unwrap();
        assert!(Arc::ptr_eq(&got, &p));
        assert_eq!(generation, 1);
        // Every resolve of the same registration hands out the same
        // interned allocation — the request path never copies the id.
        let id_b = registry.resolve_id("live").unwrap();
        assert!(Arc::ptr_eq(&id_a, &id_b));
        assert_eq!(&*id_a, "live");
        assert!(registry.resolve("nope").is_none());
        assert!(registry.resolve_id("nope").is_none());
    }

    #[test]
    fn single_shard_registry_works() {
        let registry = ModelRegistry::with_shards(0); // clamped to 1
        registry.insert("only", tiny_pipeline(4));
        assert!(registry.contains("only"));
    }
}

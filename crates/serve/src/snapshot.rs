//! Registry-wide persistence: snapshot every live registration to `ENQM`
//! artifacts and restore a directory of artifacts on warm boot.
//!
//! Restore is **two-phase**: every artifact in the directory is read and
//! fully decoded *before* the first registration touches the registry. A
//! directory containing one corrupt, truncated, or wrong-version file
//! therefore fails closed — the registry is left exactly as it was, with no
//! partial adoption — mirroring the fail-closed decoding contract of the
//! wire protocol and of `enq_store` itself.

use crate::registry::ModelRegistry;
use enq_store::{artifact_file_name, read_model_file, write_model_file, StoreError};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// One model registered (or about to be registered) from an artifact.
#[derive(Debug, Clone)]
pub struct RestoredModel {
    /// The registry id, read from the artifact payload (the file name is
    /// advisory only).
    pub model_id: String,
    /// The registration generation recorded at persist time; the registry
    /// resumes at least past the maximum of these.
    pub generation: u64,
    /// The artifact file the model came from.
    pub path: PathBuf,
}

/// Persists every registration in `registry` to `<dir>/<sanitised id>.enqm`
/// (creating `dir` if needed), each via temp-file + atomic rename.
///
/// Returns the persisted manifest, sorted by model id.
///
/// # Errors
///
/// [`StoreError::Io`] on filesystem failures, and
/// [`StoreError::InvalidValue`] if two distinct model ids sanitise to the
/// same file name — persisting both would silently drop one, so the whole
/// snapshot is refused instead.
pub fn snapshot_registry(
    registry: &ModelRegistry,
    dir: &Path,
) -> Result<Vec<RestoredModel>, StoreError> {
    std::fs::create_dir_all(dir)
        .map_err(|e| StoreError::Io(format!("creating {}: {e}", dir.display())))?;
    let entries = registry.snapshot();
    // Detect sanitisation collisions before writing anything.
    let mut by_file: HashMap<String, &str> = HashMap::with_capacity(entries.len());
    for (id, _, _) in &entries {
        let file = artifact_file_name(id);
        if let Some(other) = by_file.insert(file.clone(), id) {
            return Err(StoreError::InvalidValue {
                field: "model_id",
                found: format!("ids {other:?} and {id:?} both persist as {file:?}; rename one"),
            });
        }
    }
    let mut manifest = Vec::with_capacity(entries.len());
    for (id, pipeline, generation) in entries {
        let path = dir.join(artifact_file_name(&id));
        write_model_file(&path, &id, generation, &pipeline)?;
        manifest.push(RestoredModel {
            model_id: id,
            generation,
            path,
        });
    }
    Ok(manifest)
}

/// Loads every `*.enqm` artifact in `dir` and registers each pipeline at
/// its recorded generation ([`ModelRegistry::restore`]). An empty or
/// missing directory restores nothing and is not an error — that is simply
/// a cold start.
///
/// Returns the restored manifest, sorted by model id.
///
/// # Errors
///
/// Any [`StoreError`] from reading or decoding **any** artifact, plus
/// [`StoreError::InvalidValue`] when two artifacts claim the same model id.
/// On error the registry is untouched: all artifacts are decoded before the
/// first one is registered (two-phase), so a single corrupt file can never
/// leave a half-restored registry.
pub fn restore_registry(
    registry: &ModelRegistry,
    dir: &Path,
) -> Result<Vec<RestoredModel>, StoreError> {
    let mut paths: Vec<PathBuf> = match std::fs::read_dir(dir) {
        Ok(iter) => iter
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p.extension()
                    .is_some_and(|ext| ext == enq_store::ARTIFACT_EXTENSION)
            })
            .collect(),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(StoreError::Io(format!("reading {}: {e}", dir.display()))),
    };
    paths.sort_unstable();

    // Phase 1: decode everything. Nothing touches the registry yet.
    let mut decoded = Vec::with_capacity(paths.len());
    let mut seen: HashMap<String, PathBuf> = HashMap::with_capacity(paths.len());
    for path in paths {
        let artifact = read_model_file(&path)?;
        if let Some(first) = seen.insert(artifact.model_id.clone(), path.clone()) {
            return Err(StoreError::InvalidValue {
                field: "model_id",
                found: format!(
                    "{} and {} both declare model id {:?}",
                    first.display(),
                    path.display(),
                    artifact.model_id
                ),
            });
        }
        decoded.push((artifact, path));
    }

    // Phase 2: adopt. All-or-nothing by construction — no fallible step
    // remains.
    let mut manifest = Vec::with_capacity(decoded.len());
    for (artifact, path) in decoded {
        registry.restore(
            artifact.model_id.clone(),
            Arc::new(artifact.pipeline),
            artifact.generation,
        );
        manifest.push(RestoredModel {
            model_id: artifact.model_id,
            generation: artifact.generation,
            path,
        });
    }
    manifest.sort_unstable_by(|a, b| a.model_id.cmp(&b.model_id));
    Ok(manifest)
}

//! The unit of work the service computes, caches, and returns.

use enqode::Embedding;

/// A finished embedding solution: the class label the pipeline chose and the
/// full [`Embedding`] (fine-tuned parameters, bound circuit, fidelity,
/// timings).
///
/// Solutions are shared behind [`std::sync::Arc`] between the cache and every
/// response that references them, so a cache hit or an intra-batch duplicate
/// costs a pointer clone, never a circuit copy.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The class label of the winning class model.
    pub label: usize,
    /// The embedding produced by [`enqode::EnqodePipeline::embed_features`].
    pub embedding: Embedding,
}

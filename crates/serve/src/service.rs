//! The high-throughput online embedding service.
//!
//! [`EmbedService`] owns the three serving-layer pieces and wires them into
//! one request path:
//!
//! 1. **registry** — the request's model id resolves to an
//!    `Arc<EnqodePipeline>` (pointer clone, no model copy);
//! 2. **cache** — the request's feature vector is quantized and looked up;
//!    a hit returns the cached solution without touching the optimiser (a
//!    literal repeat is answered by the exact-match memo tier on the caller
//!    thread, before the request even enters the queue);
//! 3. **batcher** — misses ride a micro-batch that fans out through
//!    `enq_parallel`, so throughput scales with cores while the flush
//!    deadline bounds how long a lone request can wait.
//!
//! Requests inside one micro-batch that quantize to the same cache key are
//! **deduplicated**: one leader fine-tunes, the rest share its solution
//! (reported as [`SolutionSource::BatchDedup`]). With the cache disabled
//! every request computes independently, and the batched results are
//! bit-identical to calling [`EnqodePipeline::embed`] one request at a time.

use crate::batcher::{BatchQueue, PendingRequest, SlotPool};
use crate::cache::{CacheConfig, CacheKey, CacheStats, SolutionCache};
use crate::error::ServeError;
use crate::pool::{BufferPool, PoolStats};
use crate::rebuild::{RebuildController, RebuildSpec, RebuildTicket};
use crate::registry::{ModelRegistry, DEFAULT_REGISTRY_SHARDS};
use crate::solution::Solution;
use crate::traffic::{CorpusWeighting, TrafficAccumulator, TrafficConfig};
use enqode::{Embedding, EnqodeConfig, EnqodeError, EnqodePipeline, StreamingFitConfig};
use std::cell::RefCell;
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How a response's solution was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolutionSource {
    /// Freshly fine-tuned for this request.
    Computed,
    /// Served from the LRU solution cache.
    CacheHit,
    /// Shared with an identical (same quantized key) request in the same
    /// micro-batch; only the batch leader fine-tuned.
    BatchDedup,
}

/// The service's answer to one embed request.
#[derive(Debug, Clone)]
pub struct EmbedResponse {
    /// The model that served the request.
    pub model_id: Arc<str>,
    /// The shared solution (label + embedding).
    pub solution: Arc<Solution>,
    /// Where the solution came from.
    pub source: SolutionSource,
    /// Size of the micro-batch this request was grouped into (1 for the
    /// direct path).
    pub batch_size: usize,
    /// End-to-end latency: enqueue to reply, including queueing and the
    /// flush wait.
    pub latency: Duration,
}

impl EmbedResponse {
    /// The class label the pipeline chose.
    pub fn label(&self) -> usize {
        self.solution.label
    }

    /// The embedding backing this response.
    pub fn embedding(&self) -> &enqode::Embedding {
        &self.solution.embedding
    }
}

/// Tuning knobs of the service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Upper bound on requests per micro-batch.
    pub max_batch_size: usize,
    /// How long an open batch waits for stragglers before it is flushed.
    /// Bounds the queueing latency a lone request pays under light traffic.
    pub flush_deadline: Duration,
    /// Solution cache shape (capacity 0 disables caching and intra-batch
    /// dedup).
    pub cache: CacheConfig,
    /// Shard count of the model registry (only used when the service builds
    /// its own registry).
    pub registry_shards: usize,
    /// Worker threads for the per-batch fan-out; `None` uses
    /// [`enq_parallel::default_threads`].
    pub threads: Option<NonZeroUsize>,
    /// Traffic capture for model refresh: every request that pays for
    /// feature extraction records its post-PCA feature vector (and served
    /// label) into the per-model [`TrafficAccumulator`]. Disabled by
    /// default.
    pub traffic: TrafficConfig,
    /// Upper bound on *parked* buffers in each of the request-side pools
    /// (sample buffers and reply slots). Steady-state requests recycle
    /// buffers through these pools instead of allocating; returns beyond
    /// the cap are dropped, so idle pool memory stays bounded after a
    /// burst. Size it at or above the expected number of concurrently
    /// in-flight requests (the network tier's `max_pending` is the natural
    /// reference point).
    pub pool_capacity: usize,
    /// Probe the exact-match memo tier on the **calling thread** before
    /// enqueueing ([`EmbedService::embed`]): a literal repeat of a served
    /// sample returns in place — an `Arc` bump, zero allocations — without
    /// paying the batcher round-trip, which on a loaded single core (two
    /// condvar hops and the context switches behind them) costs an order of
    /// magnitude more than the lookup itself. Misses, unknown models, and
    /// requests whose deadline already expired take the queued path
    /// unchanged, so batching, dedup, and error accounting are unaffected.
    /// Disable to force every request through the queue — the allocation
    /// harness does, to pin the pooled queue path's own zero-allocation
    /// contract.
    pub probe_caller_cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch_size: 32,
            flush_deadline: Duration::from_micros(500),
            cache: CacheConfig::default(),
            registry_shards: DEFAULT_REGISTRY_SHARDS,
            threads: None,
            traffic: TrafficConfig::default(),
            pool_capacity: 256,
            probe_caller_cache: true,
        }
    }
}

/// Monotonic service counters (see [`EmbedService::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Requests accepted (batched and direct).
    pub requests: u64,
    /// Micro-batches processed.
    pub batches: u64,
    /// Requests answered by running the fine-tuning optimiser.
    pub computed: u64,
    /// Requests answered from the solution cache.
    pub cache_hits: u64,
    /// Requests answered by intra-batch deduplication.
    pub batch_dedup_hits: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Requests whose deadline expired while queued: completed with
    /// [`ServeError::DeadlineExceeded`] before compute (also counted in
    /// `errors`).
    pub deadline_expired: u64,
    /// Largest micro-batch observed.
    pub largest_batch: u64,
}

/// Accounting for the service's request-side pools (see
/// [`EmbedService::pool_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServicePoolStats {
    /// The raw-sample buffer pool backing [`EmbedService::embed`]'s owned
    /// copy of the caller's sample.
    pub samples: PoolStats,
    /// The reply-slot pool backing the request/reply handshake with the
    /// batcher.
    pub slots: PoolStats,
}

#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    computed: AtomicU64,
    cache_hits: AtomicU64,
    batch_dedup_hits: AtomicU64,
    errors: AtomicU64,
    deadline_expired: AtomicU64,
    largest_batch: AtomicU64,
}

/// The online embedding service.
///
/// # Examples
///
/// ```no_run
/// use enq_serve::{EmbedService, ServeConfig};
/// use enqode::{EnqodeConfig, EnqodePipeline};
/// # fn dataset() -> enq_data::Dataset { unimplemented!() }
///
/// let pipeline = EnqodePipeline::build(&dataset(), EnqodeConfig::default())?;
/// let service = EmbedService::new(ServeConfig::default());
/// service.register_model("mnist", pipeline);
///
/// // Any number of threads may call `embed` concurrently; requests are
/// // micro-batched behind the scenes.
/// let response = service.embed("mnist", &vec![0.5; 784])?;
/// println!("label {} fidelity {}", response.label(), response.embedding().ideal_fidelity);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct EmbedService {
    registry: Arc<ModelRegistry>,
    /// Feature-keyed LRU: near-duplicate samples (same quantized feature
    /// cell) share a solution.
    cache: Arc<SolutionCache>,
    /// Exact-match memo in front of `cache`, keyed by the raw sample's bit
    /// pattern: an exact repeat skips feature extraction entirely — the
    /// dominant classical cost of a hit. Same capacity as `cache`.
    memo: Arc<SolutionCache>,
    queue: Arc<BatchQueue>,
    counters: Arc<Counters>,
    /// Per-model capture of served feature vectors — the training side of
    /// the model lifecycle (see [`EmbedService::refresh_from_traffic`]).
    traffic: Arc<TrafficAccumulator>,
    /// Background-rebuild coordinator over the shared registry, wired to
    /// sweep this service's cache tiers after every swap.
    rebuilds: RebuildController,
    /// Pooled raw-sample buffers: `embed` checks one out instead of
    /// `to_vec`-ing the caller's sample; the request returns it on drop.
    sample_pool: Arc<BufferPool>,
    /// Pooled reply slots for the request/reply handshake with the batcher.
    slot_pool: Arc<SlotPool>,
    worker: Option<JoinHandle<()>>,
    config: ServeConfig,
}

impl EmbedService {
    /// Creates a service with its own empty [`ModelRegistry`].
    pub fn new(config: ServeConfig) -> Self {
        let registry = Arc::new(ModelRegistry::with_shards(config.registry_shards));
        Self::with_registry(registry, config)
    }

    /// Creates a service over an existing (possibly shared) registry.
    pub fn with_registry(registry: Arc<ModelRegistry>, config: ServeConfig) -> Self {
        let cache = Arc::new(SolutionCache::new(config.cache.clone()));
        let memo = Arc::new(SolutionCache::new(CacheConfig {
            // Exact bit-pattern keys: the memo only answers literal repeats.
            quantum: 0.0,
            ..config.cache.clone()
        }));
        let queue = Arc::new(BatchQueue::new());
        let counters = Arc::new(Counters::default());
        let traffic = Arc::new(TrafficAccumulator::new(config.traffic.clone()));
        let rebuilds = {
            let cache = Arc::clone(&cache);
            let memo = Arc::clone(&memo);
            let traffic = Arc::clone(&traffic);
            RebuildController::with_swap_hook(
                Arc::clone(&registry),
                move |model_id, kept_feature_basis| {
                    // Generation-scoped keys already make old entries
                    // unreachable; the sweep reclaims their memory promptly.
                    cache.invalidate_model(model_id);
                    memo.invalidate_model(model_id);
                    // A rebuild that fitted a fresh PCA basis invalidates the
                    // recorded traffic too: those feature vectors live in the
                    // *old* basis and would poison the next refresh.
                    if !kept_feature_basis {
                        traffic.clear(model_id);
                    }
                },
            )
        };
        let worker = {
            let registry = Arc::clone(&registry);
            let cache = Arc::clone(&cache);
            let memo = Arc::clone(&memo);
            let queue = Arc::clone(&queue);
            let counters = Arc::clone(&counters);
            let traffic = Arc::clone(&traffic);
            let max_batch = config.max_batch_size.max(1);
            let flush = config.flush_deadline;
            let threads = config.threads.unwrap_or_else(enq_parallel::default_threads);
            std::thread::Builder::new()
                .name("enq-serve-batcher".into())
                .spawn(move || {
                    // The batch vector and the workspace live for the whole
                    // worker: batch collection and per-batch bookkeeping
                    // reuse their capacity instead of allocating per batch.
                    let mut batch: Vec<PendingRequest> = Vec::new();
                    let mut workspace = BatchWorkspace::new();
                    while queue.next_batch_into(&mut batch, max_batch, flush) {
                        // A panic inside one batch (a bug in an embedding
                        // path, a poisoned lock) must not strand every
                        // current and future request: catch it, fail the
                        // service closed, and drain the queue — dropping a
                        // pending request answers its waiter with
                        // `ShuttingDown`.
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                process_batch(
                                    &batch,
                                    &mut workspace,
                                    &registry,
                                    &cache,
                                    &memo,
                                    &traffic,
                                    &counters,
                                    threads,
                                )
                            }));
                        // Dropping the requests recycles their buffers; on
                        // the panic path the `Drop` backstop also fails any
                        // unanswered waiters.
                        batch.clear();
                        if outcome.is_err() {
                            queue.shutdown();
                            while let Some(rest) = queue.next_batch(usize::MAX, Duration::ZERO) {
                                drop(rest);
                            }
                            break;
                        }
                    }
                })
                .expect("spawning the batcher thread")
        };
        Self {
            registry,
            cache,
            memo,
            queue,
            counters,
            traffic,
            rebuilds,
            sample_pool: BufferPool::new(config.pool_capacity),
            slot_pool: SlotPool::new(config.pool_capacity),
            worker: Some(worker),
            config,
        }
    }

    /// Registers (or replaces) a trained pipeline under `model_id`.
    ///
    /// Redeploys are race-free by construction: cache keys embed the
    /// **registration generation**, so solutions computed against the
    /// previous registration — even ones inserted by requests still in
    /// flight during the swap — are unreachable from the moment the new
    /// registration lands. The old entries are additionally swept from both
    /// cache tiers here to reclaim their memory promptly (LRU eviction
    /// would reclaim them eventually regardless). A **replace** also clears
    /// the model's recorded traffic: an operator-deployed pipeline carries
    /// its own PCA basis, and feature vectors recorded under the previous
    /// basis would poison a later [`EmbedService::refresh_from_traffic`]
    /// (basis-preserving background refreshes keep the traffic — see
    /// [`RebuildController::with_swap_hook`]).
    pub fn register_model(
        &self,
        model_id: impl Into<String>,
        pipeline: impl Into<Arc<EnqodePipeline>>,
    ) -> Option<Arc<EnqodePipeline>> {
        let model_id = model_id.into();
        let previous = self.registry.insert(model_id.clone(), pipeline.into());
        if previous.is_some() {
            self.invalidate_model(&model_id);
            self.traffic.clear(&model_id);
        }
        previous
    }

    /// Removes a model from the registry and sweeps its cached solutions
    /// and recorded traffic. In-flight requests holding the pipeline finish
    /// normally.
    pub fn unregister_model(&self, model_id: &str) -> Option<Arc<EnqodePipeline>> {
        let previous = self.registry.remove(model_id);
        self.invalidate_model(model_id);
        self.traffic.clear(model_id);
        previous
    }

    /// Sweeps every cached solution of `model_id` (all generations) from
    /// both cache tiers, reclaiming their memory. Correctness never depends
    /// on this — generation-scoped keys already make stale entries
    /// unreachable — so this is purely a memory-reclamation hook (useful
    /// after mutating a shared registry directly). Returns the number of
    /// entries removed.
    pub fn invalidate_model(&self, model_id: &str) -> usize {
        self.cache.invalidate_model(model_id) + self.memo.invalidate_model(model_id)
    }

    /// Registers (or replaces) a model like
    /// [`EmbedService::register_model`], additionally returning the
    /// **generation** assigned to the registration — what a caller records
    /// when persisting the model as an `ENQM` artifact.
    pub fn register_model_tracked(
        &self,
        model_id: impl Into<String>,
        pipeline: impl Into<Arc<EnqodePipeline>>,
    ) -> (Option<Arc<EnqodePipeline>>, u64) {
        let model_id = model_id.into();
        let (previous, generation) = self
            .registry
            .insert_tracked(model_id.clone(), pipeline.into());
        if previous.is_some() {
            self.invalidate_model(&model_id);
            self.traffic.clear(&model_id);
        }
        (previous, generation)
    }

    /// Enables artifact persistence for background rebuilds: after every
    /// successful swap, the rebuilt pipeline is written to
    /// `<dir>/<sanitised id>.enqm` at its new generation (best-effort; see
    /// [`RebuildController::set_store_dir`]). The directory is created
    /// eagerly so a misconfigured path fails here, at enable time, rather
    /// than silently after the first rebuild.
    ///
    /// # Errors
    ///
    /// [`ServeError::Rebuild`] when the directory cannot be created.
    pub fn enable_persistence(&self, dir: impl Into<PathBuf>) -> Result<(), ServeError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| {
            ServeError::Rebuild(format!(
                "could not create the model store directory {}: {e}",
                dir.display()
            ))
        })?;
        self.rebuilds.set_store_dir(Some(dir));
        Ok(())
    }

    /// Returns the shared model registry.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Returns the service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Embeds one sample through the micro-batched path. Blocks the calling
    /// thread until the result is ready; call from many threads concurrently
    /// to let the batcher group requests. A literal repeat of a served
    /// sample is answered on the calling thread without entering the queue
    /// (see [`ServeConfig::probe_caller_cache`]); everything else rides a
    /// micro-batch.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for unknown ids, [`ServeError::Embed`]
    /// for embedding failures, [`ServeError::NonFiniteFeature`] for NaN or
    /// infinite feature values (rejected before any cache tier is touched),
    /// [`ServeError::ShuttingDown`] once the service is being dropped.
    pub fn embed(&self, model_id: &str, raw_sample: &[f64]) -> Result<EmbedResponse, ServeError> {
        self.embed_with_deadline(model_id, raw_sample, None)
    }

    /// [`EmbedService::embed`] with an absolute expiry: if `deadline` passes
    /// while the request is still queued, the batcher completes it with
    /// [`ServeError::DeadlineExceeded`] **before** spending optimiser time
    /// on it. A request whose compute already started when the deadline
    /// passes finishes normally (the work is paid for either way). `None`
    /// never expires.
    ///
    /// # Errors
    ///
    /// Same as [`EmbedService::embed`], plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn embed_with_deadline(
        &self,
        model_id: &str,
        raw_sample: &[f64],
        deadline: Option<Instant>,
    ) -> Result<EmbedResponse, ServeError> {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        // Caller-thread probe of the exact-match memo tier: the steady-state
        // repeat is answered here — an `Arc` bump, no allocation, no batcher
        // round-trip. Requests whose deadline already expired skip the probe
        // so they keep completing with the batcher's typed `DeadlineExceeded`
        // (the documented contract), and unknown models fall through so the
        // `ModelNotFound` reply stays in one place.
        let mut resolved: Option<Arc<str>> = None;
        if self.config.probe_caller_cache
            && self.memo.is_enabled()
            && deadline.is_none_or(|d| start < d)
        {
            if let Some((model_id, _, generation)) = self.registry.resolve(model_id) {
                // The finiteness reject must stay ahead of every cache tier
                // (a NaN key would alias a legitimate cell); failing fast
                // here is observably identical to the batcher's reject.
                if let Err(e) = check_finite(raw_sample) {
                    self.counters.errors.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
                let hit = KEY_SCRATCH.with(|scratch| {
                    let scratch = &mut scratch.borrow_mut();
                    self.memo
                        .fill_key(&mut scratch.memo, &model_id, generation, raw_sample);
                    self.memo.lookup_key(&scratch.memo)
                });
                if let Some(solution) = hit {
                    self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(EmbedResponse {
                        model_id,
                        solution,
                        source: SolutionSource::CacheHit,
                        batch_size: 1,
                        latency: start.elapsed(),
                    });
                }
                resolved = Some(model_id);
            }
        }
        // Resolve to the registry's interned id so queuing bumps an `Arc`
        // instead of copying the string. Unknown ids still travel to the
        // batcher (allocating a one-off id on this error-only path) so the
        // `ModelNotFound` reply and its error accounting stay in one place.
        let model_id = resolved.unwrap_or_else(|| {
            self.registry
                .resolve_id(model_id)
                .unwrap_or_else(|| Arc::from(model_id))
        });
        let mut raw = self.sample_pool.checkout();
        raw.extend_from_slice(raw_sample);
        let reply = self.slot_pool.checkout();
        self.queue.push(PendingRequest {
            model_id,
            raw_sample: raw,
            enqueued_at: start,
            deadline,
            reply: reply.clone(),
        })?;
        reply.wait()
    }

    /// Number of requests queued behind the batcher right now (excludes the
    /// batch currently being processed). The network front door reads this
    /// to decide when to shed load instead of letting the queue grow without
    /// bound.
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Embeds one sample on the calling thread, bypassing the batcher but
    /// still using the registry and the solution cache. Useful for
    /// latency-critical single requests and as the unbatched baseline in
    /// benchmarks.
    ///
    /// # Errors
    ///
    /// Same as [`EmbedService::embed`] (minus `ShuttingDown`).
    pub fn embed_direct(
        &self,
        model_id: &str,
        raw_sample: &[f64],
    ) -> Result<EmbedResponse, ServeError> {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let Some((model_id, pipeline, generation)) = self.registry.resolve(model_id) else {
            self.counters.errors.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::ModelNotFound(model_id.to_string()));
        };
        // Cache keys are built in a per-thread scratch key (`embed_direct`
        // may run on any number of caller threads) so a steady-state hit
        // never allocates.
        let outcome = KEY_SCRATCH.with(|scratch| {
            serve_one(
                &model_id,
                generation,
                &pipeline,
                raw_sample,
                &self.cache,
                &self.memo,
                &self.traffic,
                &mut scratch.borrow_mut(),
            )
        });
        match outcome {
            Ok((solution, source)) => {
                match source {
                    SolutionSource::Computed => &self.counters.computed,
                    _ => &self.counters.cache_hits,
                }
                .fetch_add(1, Ordering::Relaxed);
                Ok(EmbedResponse {
                    model_id,
                    solution,
                    source,
                    batch_size: 1,
                    latency: start.elapsed(),
                })
            }
            Err(e) => {
                self.counters.errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Returns a snapshot of the service counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            computed: self.counters.computed.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            batch_dedup_hits: self.counters.batch_dedup_hits.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            deadline_expired: self.counters.deadline_expired.load(Ordering::Relaxed),
            largest_batch: self.counters.largest_batch.load(Ordering::Relaxed),
        }
    }

    /// Returns the accounting of the request-side buffer pools.
    ///
    /// `outstanding` drains to zero when no request is in flight (buffers
    /// ride inside the request and return on drop, whatever path drops it);
    /// `created` going flat under steady traffic is the observable signature
    /// of the zero-allocation hot path.
    pub fn pool_stats(&self) -> ServicePoolStats {
        ServicePoolStats {
            samples: self.sample_pool.stats(),
            slots: self.slot_pool.stats(),
        }
    }

    /// Returns a snapshot of the feature-keyed solution-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Returns a snapshot of the exact-match memo tier's counters (the
    /// raw-sample-keyed cache in front of the feature-keyed one).
    pub fn memo_stats(&self) -> CacheStats {
        self.memo.stats()
    }

    /// Returns the traffic accumulator: every request that paid for feature
    /// extraction (computed solutions and feature-cache hits; literal
    /// repeats answered by the memo tier skip extraction and are not
    /// re-recorded) has its post-PCA feature vector and served label
    /// captured here, ready to retrain from.
    pub fn traffic(&self) -> &Arc<TrafficAccumulator> {
        &self.traffic
    }

    /// Returns the background-rebuild coordinator bound to this service's
    /// registry. Successful swaps sweep this service's cache tiers; the
    /// generation bump makes stale entries unreachable regardless.
    pub fn rebuild_controller(&self) -> &RebuildController {
        &self.rebuilds
    }

    /// Starts a **background** retrain of `model_id` from the traffic it
    /// served — the full lifecycle loop: the accumulated feature shards are
    /// snapshotted ([`TrafficAccumulator::corpus`]), streamed through the
    /// staged driver on a worker thread with the model's **existing PCA
    /// basis adopted** (only centroids and ansatz parameters refresh), and
    /// the result is atomically swapped in under the same id with a fresh
    /// generation. Serving never blocks; the returned ticket reports
    /// progress and accepts cancellation.
    ///
    /// The spec's `spill_features` knob is ignored (forced off): the corpus
    /// already *is* an mmap-backed feature stream, so spilling would only
    /// duplicate it.
    ///
    /// # Errors
    ///
    /// [`ServeError::ModelNotFound`] for unknown ids,
    /// [`ServeError::NoTraffic`] when nothing was recorded,
    /// [`ServeError::RebuildInProgress`] when a rebuild of this id is
    /// already in flight, and [`ServeError::Traffic`] for unreadable shard
    /// files.
    pub fn refresh_from_traffic(
        &self,
        model_id: &str,
        config: EnqodeConfig,
        stream: StreamingFitConfig,
    ) -> Result<RebuildTicket, ServeError> {
        self.refresh_from_traffic_with(model_id, config, stream, &RefreshOptions::default())
    }

    /// [`EmbedService::refresh_from_traffic`] with refresh shaping: how the
    /// corpus is weighted ([`CorpusWeighting`]) and how many fit-worker
    /// threads the background rebuild may use. The autopilot uses the
    /// thread budget as rebuild **admission control** — it shrinks the fit
    /// fan-out to one thread while the serve queue is non-empty, so a
    /// refresh competes with live traffic for at most one core.
    ///
    /// # Errors
    ///
    /// Same as [`EmbedService::refresh_from_traffic`].
    pub fn refresh_from_traffic_with(
        &self,
        model_id: &str,
        config: EnqodeConfig,
        stream: StreamingFitConfig,
        options: &RefreshOptions,
    ) -> Result<RebuildTicket, ServeError> {
        let Some(pipeline) = self.registry.get(model_id) else {
            return Err(ServeError::ModelNotFound(model_id.to_string()));
        };
        let corpus = self.traffic.corpus(model_id)?;
        let source = corpus.weighted_source(&options.weighting)?;
        let spec = RebuildSpec {
            config,
            stream: StreamingFitConfig {
                spill_features: false,
                ..stream
            },
            features: Some(pipeline.features().clone()),
            threads: options.fit_threads.or(self.config.threads),
        };
        self.rebuilds.start(model_id, source, spec)
    }

    /// Spot-audits `model_id` against its recent traffic: every feature
    /// vector in the audit ring (see [`TrafficConfig::audit_window`]) is
    /// scored with the **closed-form fidelity bound**
    /// ([`EnqodePipeline::closed_form_fidelity`]) — no optimiser, no disk.
    /// A falling mean says live traffic has drifted away from the fitted
    /// centroids; this is the decay signal the autopilot watches.
    ///
    /// Returns `None` for unknown models or when no auditable traffic has
    /// been recorded (vectors that fail to score — wrong dimension after a
    /// swap, zero vectors — are skipped and counted).
    pub fn spot_audit(&self, model_id: &str, max_samples: usize) -> Option<AuditReport> {
        let pipeline = self.registry.get(model_id)?;
        let recent = self.traffic.recent_features(model_id, max_samples);
        let mut scored = 0usize;
        let mut skipped = 0usize;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        for (features, _) in &recent {
            match pipeline.closed_form_fidelity(features) {
                Ok(f) => {
                    scored += 1;
                    sum += f;
                    min = min.min(f);
                }
                Err(_) => skipped += 1,
            }
        }
        if scored == 0 {
            return None;
        }
        Some(AuditReport {
            samples: scored,
            skipped,
            mean_fidelity: sum / scored as f64,
            min_fidelity: min,
        })
    }
}

/// Shaping knobs for [`EmbedService::refresh_from_traffic_with`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RefreshOptions {
    /// How the refresh corpus weights recorded traffic.
    pub weighting: CorpusWeighting,
    /// Worker-thread budget for the background fit; `None` uses the
    /// service's configured thread count.
    pub fit_threads: Option<NonZeroUsize>,
}

/// Result of one [`EmbedService::spot_audit`] pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditReport {
    /// Audit-ring vectors that scored.
    pub samples: usize,
    /// Vectors that could not be scored (stale dimension after a
    /// basis-changing swap, zero vectors).
    pub skipped: usize,
    /// Mean closed-form fidelity bound over the scored vectors.
    pub mean_fidelity: f64,
    /// Worst scored vector.
    pub min_fidelity: f64,
}

impl Drop for EmbedService {
    fn drop(&mut self) {
        // Stop accepting, drain what was accepted, then join the batcher.
        self.queue.shutdown();
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }
}

/// Rejects the first non-finite value in `values` with a typed error.
///
/// This must run **before** any cache tier is consulted or filled: the
/// quantized key maps NaN onto cell `0` and `±∞` onto saturated cells, so a
/// non-finite vector would alias a legitimate key — a poisoned request could
/// hit (or insert under) a real request's cache line.
fn check_finite(values: &[f64]) -> Result<(), ServeError> {
    match values.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(ServeError::NonFiniteFeature {
            index,
            value: values[index],
        }),
        None => Ok(()),
    }
}

/// Reusable scratch keys for the two cache tiers: probes fill these in place
/// (reusing their cell buffers) and only clone an owned key on the miss path,
/// so a cache hit never touches the allocator.
#[derive(Debug)]
struct KeyScratch {
    /// Raw-sample-keyed probe key for the exact-match memo tier.
    memo: CacheKey,
    /// Quantized-feature probe key for the LRU tier.
    feat: CacheKey,
}

impl KeyScratch {
    fn new() -> Self {
        Self {
            memo: CacheKey::scratch(),
            feat: CacheKey::scratch(),
        }
    }
}

thread_local! {
    /// Per-thread scratch for the caller-thread paths —
    /// [`EmbedService::embed_direct`] and the memo probe at the top of
    /// [`EmbedService::embed_with_deadline`] — which may run on any number
    /// of caller threads concurrently. The batcher thread owns its scratch
    /// directly inside its [`BatchWorkspace`].
    static KEY_SCRATCH: RefCell<KeyScratch> = RefCell::new(KeyScratch::new());
}

/// Serves one request synchronously: exact-match memo, then feature
/// extraction + feature-keyed cache lookup, then fine-tune on miss, filling
/// both tiers. Non-finite inputs are rejected before either tier is touched.
///
/// A memo hit (the steady-state repeat) performs **zero heap allocations**:
/// the probe key is built in `scratch` and the hit is an `Arc` bump. This is
/// pinned by the `alloc_hot_path` harness.
#[allow(clippy::too_many_arguments)]
fn serve_one(
    model_id: &Arc<str>,
    generation: u64,
    pipeline: &EnqodePipeline,
    raw_sample: &[f64],
    cache: &SolutionCache,
    memo: &SolutionCache,
    traffic: &TrafficAccumulator,
    scratch: &mut KeyScratch,
) -> Result<(Arc<Solution>, SolutionSource), ServeError> {
    check_finite(raw_sample)?;
    // Tier 1: a literal repeat of a served sample skips feature extraction
    // (the dominant classical cost of a hit) entirely.
    let have_memo_key = if memo.is_enabled() {
        memo.fill_key(&mut scratch.memo, model_id, generation, raw_sample);
        if let Some(hit) = memo.lookup_key(&scratch.memo) {
            return Ok((hit, SolutionSource::CacheHit));
        }
        true
    } else {
        false
    };
    // Tier 2: quantized feature key — near-duplicates share a solution.
    let features = pipeline.extract_features(raw_sample)?;
    check_finite(&features)?;
    let mut have_missed_key = false;
    if cache.is_enabled() {
        cache.fill_key(&mut scratch.feat, model_id, generation, &features);
        if let Some(hit) = cache.lookup_key(&scratch.feat) {
            if have_memo_key {
                memo.insert_key(scratch.memo.clone(), Arc::clone(&hit));
            }
            traffic.record(model_id, &features, hit.label);
            return Ok((hit, SolutionSource::CacheHit));
        }
        have_missed_key = true;
    }
    let (label, embedding) = pipeline.embed_features(&features)?;
    traffic.record(model_id, &features, label);
    let solution = Arc::new(Solution { label, embedding });
    if have_missed_key {
        cache.insert_key(scratch.feat.clone(), Arc::clone(&solution));
    }
    if have_memo_key {
        memo.insert_key(scratch.memo.clone(), Arc::clone(&solution));
    }
    Ok((solution, SolutionSource::Computed))
}

/// A deduplicated batch mate: request index, its raw-keyed memo slot, and
/// the feature vector it extracted (recorded into the traffic accumulator
/// once the leader's solution lands).
type Follower = (usize, Option<CacheKey>, Vec<f64>);

/// One batch entry that missed the cache and needs the optimiser.
struct ColdJob {
    request_index: usize,
    pipeline: Arc<EnqodePipeline>,
    features: Vec<f64>,
    key: Option<CacheKey>,
    memo_key: Option<CacheKey>,
}

/// Persistent scratch space owned by the batcher thread, reused across
/// batches so per-batch bookkeeping retains its capacity instead of
/// re-allocating (the same precedent as the optimiser's
/// `SymbolicWorkspace`). An all-hit batch — the steady-state shape once the
/// cache is warm — runs entirely inside this workspace and the scratch keys:
/// zero heap allocations per request, pinned by the `alloc_hot_path`
/// harness.
struct BatchWorkspace {
    /// Scratch probe keys for the two cache tiers.
    keys: KeyScratch,
    /// Cache-missing leaders that need the optimiser.
    cold: Vec<ColdJob>,
    /// Per-leader dedup mates (same quantized key in the same batch).
    followers: Vec<Vec<Follower>>,
    /// Quantized key → index into `cold` for intra-batch dedup.
    leader_of: HashMap<CacheKey, usize>,
    /// Cold jobs grouped by pipeline identity (phase 2 staging).
    groups: Vec<(Arc<EnqodePipeline>, Vec<usize>)>,
    /// Per-thread chunks of `groups` handed to the parallel fan-out.
    work: Vec<(Arc<EnqodePipeline>, Vec<usize>)>,
}

impl BatchWorkspace {
    fn new() -> Self {
        Self {
            keys: KeyScratch::new(),
            cold: Vec::new(),
            followers: Vec::new(),
            leader_of: HashMap::new(),
            groups: Vec::new(),
            work: Vec::new(),
        }
    }

    /// Clears every collection while retaining its capacity.
    fn reset(&mut self) {
        self.cold.clear();
        self.followers.clear();
        self.leader_of.clear();
        self.groups.clear();
        self.work.clear();
    }
}

/// Processes one micro-batch: resolve + memo-check + feature-extract +
/// cache-check every request, deduplicate identical keys, fan the cold
/// leaders out in parallel, then reply to everyone. The caller owns (and
/// reuses) both the batch vector and the workspace; requests are answered
/// in place and recycled when the caller clears the batch.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    batch: &[PendingRequest],
    ws: &mut BatchWorkspace,
    registry: &ModelRegistry,
    cache: &SolutionCache,
    memo: &SolutionCache,
    traffic: &TrafficAccumulator,
    counters: &Counters,
    threads: NonZeroUsize,
) {
    if batch.is_empty() {
        return;
    }
    ws.reset();
    let batch_size = batch.len();
    counters.batches.fetch_add(1, Ordering::Relaxed);
    counters
        .largest_batch
        .fetch_max(batch_size as u64, Ordering::Relaxed);

    let reply_to =
        |request: &PendingRequest, result: Result<(Arc<Solution>, SolutionSource), ServeError>| {
            let response = result.map(|(solution, source)| {
                match source {
                    SolutionSource::Computed => &counters.computed,
                    SolutionSource::CacheHit => &counters.cache_hits,
                    SolutionSource::BatchDedup => &counters.batch_dedup_hits,
                }
                .fetch_add(1, Ordering::Relaxed);
                EmbedResponse {
                    model_id: Arc::clone(&request.model_id),
                    solution,
                    source,
                    batch_size,
                    latency: request.enqueued_at.elapsed(),
                }
            });
            if response.is_err() {
                counters.errors.fetch_add(1, Ordering::Relaxed);
            }
            request.reply.send(response);
        };

    // Phase 1 (sequential, cheap): resolve models, extract features, check
    // the cache, and group duplicates behind one leader per quantized key.
    // Followers keep their own feature vector so every request that paid
    // for extraction is recorded into the traffic accumulator. Cache probes
    // go through the workspace's scratch keys; an owned key is only cloned
    // out on the miss path.
    let dequeued_at = Instant::now();
    for (i, request) in batch.iter().enumerate() {
        // Expired work is dropped *before* compute: a request whose deadline
        // passed while it sat in the queue (a flush window, a long batch
        // ahead of it) completes its waiter with a typed error — never
        // silently, and never after burning optimiser time it can't use.
        if request.is_expired(dequeued_at) {
            counters.deadline_expired.fetch_add(1, Ordering::Relaxed);
            reply_to(
                request,
                Err(ServeError::DeadlineExceeded {
                    waited: dequeued_at.saturating_duration_since(request.enqueued_at),
                }),
            );
            continue;
        }
        let Some((pipeline, generation)) = registry.get_with_generation(&request.model_id) else {
            reply_to(
                request,
                Err(ServeError::ModelNotFound(request.model_id.to_string())),
            );
            continue;
        };
        // Non-finite samples are rejected before either cache tier: their
        // quantized keys alias legitimate cells (NaN → cell 0, ±∞ →
        // saturated), so they must never hit or insert.
        if let Err(e) = check_finite(&request.raw_sample) {
            reply_to(request, Err(e));
            continue;
        }
        // Tier 1: exact-match memo — a literal repeat skips feature
        // extraction entirely, and its probe never allocates.
        let memo_key = if memo.is_enabled() {
            memo.fill_key(
                &mut ws.keys.memo,
                &request.model_id,
                generation,
                &request.raw_sample,
            );
            if let Some(hit) = memo.lookup_key(&ws.keys.memo) {
                reply_to(request, Ok((hit, SolutionSource::CacheHit)));
                continue;
            }
            Some(ws.keys.memo.clone())
        } else {
            None
        };
        let features = match pipeline.extract_features(&request.raw_sample) {
            Ok(features) => features,
            Err(e) => {
                reply_to(request, Err(ServeError::Embed(e)));
                continue;
            }
        };
        if let Err(e) = check_finite(&features) {
            reply_to(request, Err(e));
            continue;
        }
        // Tier 2: quantized feature cell.
        let key = if cache.is_enabled() {
            cache.fill_key(&mut ws.keys.feat, &request.model_id, generation, &features);
            if let Some(hit) = cache.lookup_key(&ws.keys.feat) {
                if let Some(memo_key) = memo_key {
                    memo.insert_key(memo_key, Arc::clone(&hit));
                }
                traffic.record(&request.model_id, &features, hit.label);
                reply_to(request, Ok((hit, SolutionSource::CacheHit)));
                continue;
            }
            if let Some(&leader) = ws.leader_of.get(&ws.keys.feat) {
                ws.followers[leader].push((i, memo_key, features));
                continue;
            }
            let key = ws.keys.feat.clone();
            ws.leader_of.insert(key.clone(), ws.cold.len());
            Some(key)
        } else {
            None
        };
        ws.cold.push(ColdJob {
            request_index: i,
            pipeline,
            features,
            key,
            memo_key,
        });
        ws.followers.push(Vec::new());
    }

    // Steady-state fast path: a fully warm batch (every request answered
    // from a cache tier or failed per-request) has nothing to fan out —
    // skip the grouping and parallel phases entirely.
    if ws.cold.is_empty() {
        return;
    }

    // Phase 2 (parallel): fine-tune every cold leader. Jobs that share a
    // pipeline ride one multi-lane batched transform
    // ([`EnqodePipeline::embed_features_batch`]) so the Walsh-table sweeps
    // are amortised across the micro-batch; each pipeline's jobs are split
    // into per-thread chunks so the fan-out still uses every core. The
    // batched lanes are bit-identical to per-request calls, and errors stay
    // per-request — one bad sample never cancels its batch mates.
    for (idx, job) in ws.cold.iter().enumerate() {
        match ws
            .groups
            .iter_mut()
            .find(|(p, _)| Arc::ptr_eq(p, &job.pipeline))
        {
            Some((_, indices)) => indices.push(idx),
            None => ws.groups.push((Arc::clone(&job.pipeline), vec![idx])),
        }
    }
    for (pipeline, indices) in ws.groups.drain(..) {
        let chunk = indices.len().div_ceil(threads.get()).max(1);
        for c in indices.chunks(chunk) {
            ws.work.push((Arc::clone(&pipeline), c.to_vec()));
        }
    }
    let cold = &ws.cold;
    let chunk_outcomes =
        enq_parallel::par_map_with_threads(threads, &ws.work, |_, (pipeline, indices)| {
            // Borrowed feature views: the batched transform reads them in
            // place instead of deep-copying every sample into the job list.
            let features: Vec<&[f64]> = indices
                .iter()
                .map(|&i| cold[i].features.as_slice())
                .collect();
            pipeline.embed_features_batch(&features)
        });
    let mut outcomes: Vec<Option<Result<(usize, Embedding), EnqodeError>>> =
        (0..ws.cold.len()).map(|_| None).collect();
    for ((_, indices), results) in ws.work.iter().zip(chunk_outcomes) {
        for (&i, result) in indices.iter().zip(results) {
            outcomes[i] = Some(result);
        }
    }
    let outcomes: Vec<Result<(usize, Embedding), EnqodeError>> = outcomes
        .into_iter()
        .map(|o| o.expect("every cold job receives exactly one outcome"))
        .collect();

    // Phase 3: fill both cache tiers and reply to leaders and their
    // followers (every batch mate's raw key memoises the shared solution).
    for ((job, mates), outcome) in ws.cold.iter().zip(ws.followers.drain(..)).zip(outcomes) {
        match outcome {
            Ok((label, embedding)) => {
                let solution = Arc::new(Solution { label, embedding });
                if let Some(key) = &job.key {
                    cache.insert_key(key.clone(), Arc::clone(&solution));
                }
                if let Some(key) = &job.memo_key {
                    memo.insert_key(key.clone(), Arc::clone(&solution));
                }
                traffic.record(&batch[job.request_index].model_id, &job.features, label);
                reply_to(
                    &batch[job.request_index],
                    Ok((Arc::clone(&solution), SolutionSource::Computed)),
                );
                for (mate, mate_memo_key, mate_features) in mates {
                    if let Some(key) = mate_memo_key {
                        memo.insert_key(key, Arc::clone(&solution));
                    }
                    traffic.record(&batch[mate].model_id, &mate_features, label);
                    reply_to(
                        &batch[mate],
                        Ok((Arc::clone(&solution), SolutionSource::BatchDedup)),
                    );
                }
            }
            Err(e) => {
                for (index, ..) in
                    std::iter::once((job.request_index, None, Vec::new())).chain(mates)
                {
                    reply_to(&batch[index], Err(ServeError::Embed(e.clone())));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_data::{generate_synthetic, Dataset, DatasetKind, SyntheticConfig};
    use enqode::{AnsatzConfig, EnqodeConfig, EntanglerKind};

    fn tiny_dataset(seed: u64) -> Dataset {
        generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 6,
                seed,
            },
        )
        .unwrap()
    }

    fn tiny_pipeline(seed: u64) -> (Arc<EnqodePipeline>, Dataset) {
        let dataset = tiny_dataset(seed);
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 3,
                num_layers: 4,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.8,
            max_clusters: 2,
            offline_max_iterations: 60,
            offline_restarts: 1,
            online_max_iterations: 25,
            offline_rescue: false,
            seed,
        };
        (
            Arc::new(EnqodePipeline::build(&dataset, config).unwrap()),
            dataset,
        )
    }

    fn service_with_model(config: ServeConfig) -> (EmbedService, Dataset) {
        let (pipeline, dataset) = tiny_pipeline(5);
        let service = EmbedService::new(config);
        service.register_model("tiny", pipeline);
        (service, dataset)
    }

    #[test]
    fn batched_and_direct_paths_agree_with_the_pipeline() {
        let (service, dataset) = service_with_model(ServeConfig {
            cache: CacheConfig {
                capacity: 0,
                ..Default::default()
            },
            flush_deadline: Duration::ZERO,
            ..Default::default()
        });
        let pipeline = service.registry().get("tiny").unwrap();
        let sample = dataset.sample(0);
        let batched = service.embed("tiny", sample).unwrap();
        let direct = service.embed_direct("tiny", sample).unwrap();
        let (label, reference) = pipeline.embed(sample).unwrap();
        assert_eq!(batched.label(), label);
        assert_eq!(direct.label(), label);
        assert_eq!(batched.embedding().parameters, reference.parameters);
        assert_eq!(direct.embedding().parameters, reference.parameters);
        assert_eq!(batched.source, SolutionSource::Computed);
        assert!(batched.batch_size >= 1);
        assert!(batched.latency > Duration::ZERO);
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.computed, 2);
        assert_eq!(stats.errors, 0);
    }

    #[test]
    fn cache_hits_share_the_exact_solution() {
        let (service, dataset) = service_with_model(ServeConfig {
            flush_deadline: Duration::ZERO,
            ..Default::default()
        });
        let sample = dataset.sample(1);
        let first = service.embed("tiny", sample).unwrap();
        let second = service.embed("tiny", sample).unwrap();
        assert_eq!(first.source, SolutionSource::Computed);
        assert_eq!(second.source, SolutionSource::CacheHit);
        assert!(
            Arc::ptr_eq(&first.solution, &second.solution),
            "a hit returns the cached solution object itself"
        );
        // An exact repeat is answered by the raw-keyed memo tier, before
        // feature extraction even runs.
        assert_eq!(service.memo_stats().hits, 1);
        let direct = service.embed_direct("tiny", sample).unwrap();
        assert_eq!(direct.source, SolutionSource::CacheHit);
        assert_eq!(service.stats().cache_hits, 2);
        assert_eq!(service.memo_stats().hits, 2);
    }

    #[test]
    fn unknown_model_and_bad_sample_are_per_request_errors() {
        let (service, dataset) = service_with_model(ServeConfig {
            flush_deadline: Duration::ZERO,
            ..Default::default()
        });
        assert!(matches!(
            service.embed("nope", dataset.sample(0)),
            Err(ServeError::ModelNotFound(id)) if id == "nope"
        ));
        assert!(matches!(
            service.embed_direct("nope", dataset.sample(0)),
            Err(ServeError::ModelNotFound(_))
        ));
        // A malformed sample fails alone; the service keeps serving.
        assert!(matches!(
            service.embed("tiny", &[1.0, 2.0]),
            Err(ServeError::Embed(_))
        ));
        assert!(service.embed("tiny", dataset.sample(2)).is_ok());
        assert_eq!(service.stats().errors, 3);
    }

    #[test]
    fn non_finite_samples_are_rejected_before_any_cache_tier() {
        for quantum in [1e-6, 0.0] {
            let (service, dataset) = service_with_model(ServeConfig {
                flush_deadline: Duration::ZERO,
                cache: CacheConfig {
                    quantum,
                    ..Default::default()
                },
                ..Default::default()
            });
            let good = dataset.sample(0).to_vec();
            for bad_value in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let mut bad = good.clone();
                bad[3] = bad_value;
                for result in [
                    service.embed("tiny", &bad),
                    service.embed_direct("tiny", &bad),
                ] {
                    match result {
                        Err(ServeError::NonFiniteFeature { index, value }) => {
                            assert_eq!(index, 3);
                            assert_eq!(value.to_bits(), bad_value.to_bits());
                        }
                        other => panic!("expected NonFiniteFeature, got {other:?}"),
                    }
                }
            }
            // Poisoned requests never touched either tier: no hit, no
            // insert, in quantized or exact mode.
            assert_eq!(service.memo_stats().insertions, 0);
            assert_eq!(service.cache_stats().insertions, 0);
            assert_eq!(service.memo_stats().hits, 0);
            assert_eq!(service.cache_stats().hits, 0);
            assert_eq!(service.stats().errors, 6);

            // A NaN-bearing repeat of a *cached* sample must still be
            // rejected — under the old quantized keys it could alias a
            // legitimate cell and return someone else's solution.
            service.embed("tiny", &good).unwrap();
            let mut poisoned = good.clone();
            poisoned[0] = f64::NAN;
            assert!(matches!(
                service.embed("tiny", &poisoned),
                Err(ServeError::NonFiniteFeature { index: 0, .. })
            ));
            assert_eq!(service.cache_stats().hits, 0, "poison never hits");
        }
    }

    #[test]
    fn replacing_a_model_invalidates_its_cached_solutions() {
        let (service, dataset) = service_with_model(ServeConfig {
            flush_deadline: Duration::ZERO,
            ..Default::default()
        });
        let sample = dataset.sample(0);
        let v1 = service.embed("tiny", sample).unwrap();
        assert_eq!(
            service.embed("tiny", sample).unwrap().source,
            SolutionSource::CacheHit
        );

        // Redeploy under the same id: the cache must not keep serving the
        // old pipeline's solutions.
        let (v2_pipeline, _) = tiny_pipeline(77);
        assert!(service.register_model("tiny", v2_pipeline).is_some());
        let v2 = service.embed("tiny", sample).unwrap();
        assert_eq!(v2.source, SolutionSource::Computed);
        assert!(!Arc::ptr_eq(&v1.solution, &v2.solution));

        // Unregistering drops both registry entry and cached solutions.
        service.unregister_model("tiny");
        assert!(matches!(
            service.embed("tiny", sample),
            Err(ServeError::ModelNotFound(_))
        ));
        assert_eq!(service.invalidate_model("tiny"), 0, "already invalidated");
    }

    #[test]
    fn traffic_refresh_retrains_and_swaps_in_the_background() {
        let (pipeline, dataset) = tiny_pipeline(5);
        let service = EmbedService::new(ServeConfig {
            flush_deadline: Duration::ZERO,
            traffic: crate::traffic::TrafficConfig {
                enabled: true,
                buffer_samples: 4,
                ..Default::default()
            },
            ..Default::default()
        });
        service.register_model("tiny", pipeline);
        // Serve a deterministic stream: every request pays for feature
        // extraction once and is recorded (repeats hit the memo tier and
        // are not re-recorded).
        for i in 0..dataset.len() {
            service.embed("tiny", dataset.sample(i)).unwrap();
        }
        let stats = service.traffic().stats("tiny");
        assert_eq!(stats.recorded, dataset.len() as u64);
        assert!(stats.shards >= 1, "budget of 4 forces spills");

        let (_, old_generation) = service.registry().get_with_generation("tiny").unwrap();
        let config = EnqodeConfig {
            ansatz: enqode::AnsatzConfig {
                num_qubits: 3,
                num_layers: 4,
                entangler: EntanglerKind::Cy,
            },
            offline_max_iterations: 30,
            offline_restarts: 1,
            online_max_iterations: 10,
            offline_rescue: false,
            seed: 55,
            ..EnqodeConfig::default()
        };
        let stream = enqode::StreamingFitConfig {
            chunk_size: 4,
            clusters_per_class: 1,
            passes: 1,
            polish_passes: 1,
            ..Default::default()
        };
        let ticket = service
            .refresh_from_traffic("tiny", config, stream)
            .unwrap();
        assert_eq!(ticket.wait(), crate::rebuild::RebuildStatus::Succeeded);
        let (refreshed, new_generation) = service.registry().get_with_generation("tiny").unwrap();
        assert!(new_generation > old_generation, "swap bumps the generation");
        // The refreshed model adopted the serving pipeline's PCA basis and
        // serves every embed path.
        assert_eq!(refreshed.feature_dimension(), 8);
        let response = service.embed("tiny", dataset.sample(0)).unwrap();
        assert_eq!(response.source, SolutionSource::Computed, "caches swept");
        // Refresh knows about ids and traffic it does not have.
        assert!(matches!(
            service.refresh_from_traffic(
                "nope",
                EnqodeConfig::default(),
                enqode::StreamingFitConfig::default()
            ),
            Err(ServeError::ModelNotFound(_))
        ));
    }

    #[test]
    fn expired_deadlines_complete_with_a_typed_error_before_compute() {
        let (service, dataset) = service_with_model(ServeConfig {
            flush_deadline: Duration::ZERO,
            ..Default::default()
        });
        let sample = dataset.sample(0);
        // A deadline already in the past when the batcher dequeues the
        // request: the waiter must complete with DeadlineExceeded — not hang,
        // not be silently dropped, and not burn optimiser time (computed
        // counter stays untouched).
        let expired = Instant::now() - Duration::from_millis(1);
        let err = service
            .embed_with_deadline("tiny", sample, Some(expired))
            .unwrap_err();
        assert!(
            matches!(err, ServeError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
        let stats = service.stats();
        assert_eq!(stats.deadline_expired, 1);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.computed, 0, "expired work must not reach compute");

        // Queue several expired requests behind one live one from concurrent
        // threads: every expired waiter gets the typed error, the live one
        // is served, and the service keeps serving afterwards.
        let service = Arc::new(service);
        let outcomes: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let service = Arc::clone(&service);
                    let sample = sample.to_vec();
                    scope.spawn(move || {
                        let deadline = (i != 0).then(|| Instant::now() - Duration::from_millis(1));
                        service.embed_with_deadline("tiny", &sample, deadline)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expired_count = outcomes
            .iter()
            .filter(|o| matches!(o, Err(ServeError::DeadlineExceeded { waited }) if *waited < Duration::from_secs(60)))
            .count();
        let served = outcomes.iter().filter(|o| o.is_ok()).count();
        assert_eq!(expired_count, 3);
        assert_eq!(served, 1);
        // A generous unexpired deadline serves normally.
        let far = Instant::now() + Duration::from_secs(60);
        assert!(service
            .embed_with_deadline("tiny", sample, Some(far))
            .is_ok());
    }

    #[test]
    fn request_pools_recycle_across_requests() {
        let (service, dataset) = service_with_model(ServeConfig {
            flush_deadline: Duration::ZERO,
            ..Default::default()
        });
        let sample = dataset.sample(0);
        for _ in 0..8 {
            service.embed("tiny", sample).unwrap();
        }
        // Quiesce: buffers ride inside the request and return when the
        // batcher clears its batch, which can trail the reply slightly.
        let quiesce = |service: &EmbedService| {
            let deadline = Instant::now() + Duration::from_secs(10);
            loop {
                let pools = service.pool_stats();
                if pools.samples.outstanding == 0 && pools.slots.outstanding == 0 {
                    return pools;
                }
                assert!(Instant::now() < deadline, "pools must drain: {pools:?}");
                std::thread::sleep(Duration::from_millis(1));
            }
        };
        let drained = quiesce(&service);
        assert!(drained.samples.available >= 1, "{drained:?}");
        assert!(drained.slots.available >= 1, "{drained:?}");
        // With a parked buffer available, the next request deterministically
        // reuses it instead of creating a fresh one.
        service.embed("tiny", sample).unwrap();
        let after = quiesce(&service);
        assert_eq!(after.samples.created, drained.samples.created);
        assert_eq!(after.slots.created, drained.slots.created);
        assert_eq!(after.samples.capacity, 256, "default pool capacity");
    }

    #[test]
    fn queue_depth_reports_backlog() {
        let (service, _) = service_with_model(ServeConfig::default());
        assert_eq!(service.queue_depth(), 0);
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let (service, dataset) = service_with_model(ServeConfig::default());
        service.queue.shutdown();
        assert!(matches!(
            service.embed("tiny", dataset.sample(0)),
            Err(ServeError::ShuttingDown)
        ));
        // Dropping joins the batcher without hanging.
        drop(service);
    }
}

//! The serving-layer error type.

use enqode::EnqodeError;
use std::error::Error;
use std::fmt;
use std::time::Duration;

/// Errors returned by [`crate::EmbedService`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request named a model id with no registered pipeline.
    ModelNotFound(String),
    /// The underlying embedding failed (dimension mismatch, zero vector,
    /// untrained pipeline, …).
    Embed(EnqodeError),
    /// The request carried a non-finite (NaN or infinite) feature value.
    ///
    /// Non-finite values are rejected *before* any cache tier is consulted:
    /// quantization maps them onto legitimate grid cells (NaN rounds to
    /// cell `0`, `±∞` saturate to `i64::MIN`/`MAX`), so letting them
    /// through would alias poisoned requests with real near-zero or extreme
    /// feature vectors — a cached wrong answer, not just a failed request.
    NonFiniteFeature {
        /// Index of the first offending value in the rejected vector (the
        /// raw sample, or the post-PCA feature vector when extraction
        /// produced the non-finite value).
        index: usize,
        /// The offending value (NaN, `+∞`, or `-∞`).
        value: f64,
    },
    /// The service is shutting down and no longer accepts requests, or shut
    /// down while this request was queued.
    ShuttingDown,
    /// The request's deadline expired while it was queued; the batcher
    /// completed the waiter with this error **before** spending compute on
    /// it (expired work is dropped pre-optimiser, never silently).
    DeadlineExceeded {
        /// How long the request had been queued when the expiry was
        /// observed.
        waited: Duration,
    },
    /// A background rebuild is already running for this model id; one
    /// in-flight rebuild per id keeps generation swaps linearisable.
    /// `retry_after` estimates when the in-flight rebuild will finish,
    /// derived from its [`crate::StageProgress`] history (completed-stage
    /// mean × stages remaining; see
    /// [`crate::RebuildTicket::estimated_remaining`]).
    RebuildInProgress {
        /// The model id whose rebuild is in flight.
        model_id: String,
        /// Estimated time until the in-flight rebuild reaches a terminal
        /// state — a retry hint, not a guarantee.
        retry_after: Duration,
    },
    /// No recorded traffic is available to refresh this model from.
    NoTraffic(String),
    /// Reading or writing traffic shards failed.
    Traffic(enq_data::DataError),
    /// A background rebuild could not be started (e.g. the worker thread
    /// failed to spawn under resource exhaustion). The ticket, if any, is
    /// finished as failed and the id is free to retry.
    Rebuild(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ModelNotFound(id) => write!(f, "no model registered under id {id:?}"),
            ServeError::Embed(e) => write!(f, "embedding failed: {e}"),
            ServeError::NonFiniteFeature { index, value } => {
                write!(
                    f,
                    "non-finite feature value {value} at index {index}: \
                     NaN/infinite features cannot be quantized into a cache key"
                )
            }
            ServeError::ShuttingDown => write!(f, "the embedding service is shutting down"),
            ServeError::DeadlineExceeded { waited } => {
                write!(
                    f,
                    "request deadline expired after {:.3} ms in the queue",
                    waited.as_secs_f64() * 1e3
                )
            }
            ServeError::RebuildInProgress {
                model_id,
                retry_after,
            } => {
                write!(
                    f,
                    "a background rebuild is already running for model {model_id:?} \
                     (estimated {:.0} ms remaining)",
                    retry_after.as_secs_f64() * 1e3
                )
            }
            ServeError::NoTraffic(id) => {
                write!(f, "no recorded traffic to refresh model {id:?} from")
            }
            ServeError::Traffic(e) => write!(f, "traffic shard error: {e}"),
            ServeError::Rebuild(msg) => write!(f, "background rebuild error: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Embed(e) => Some(e),
            ServeError::Traffic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnqodeError> for ServeError {
    fn from(e: EnqodeError) -> Self {
        ServeError::Embed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::ModelNotFound("mnist".into());
        assert!(e.to_string().contains("mnist"));
        assert!(e.source().is_none());
        let e: ServeError = EnqodeError::NotTrained.into();
        assert!(e.to_string().contains("no trained"));
        assert!(e.source().is_some());
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
    }
}

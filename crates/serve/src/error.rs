//! The serving-layer error type.

use enqode::EnqodeError;
use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::EmbedService`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request named a model id with no registered pipeline.
    ModelNotFound(String),
    /// The underlying embedding failed (dimension mismatch, zero vector,
    /// untrained pipeline, …).
    Embed(EnqodeError),
    /// The service is shutting down and no longer accepts requests, or shut
    /// down while this request was queued.
    ShuttingDown,
    /// A background rebuild is already running for this model id; one
    /// in-flight rebuild per id keeps generation swaps linearisable.
    RebuildInProgress(String),
    /// No recorded traffic is available to refresh this model from.
    NoTraffic(String),
    /// Reading or writing traffic shards failed.
    Traffic(enq_data::DataError),
    /// A background rebuild could not be started (e.g. the worker thread
    /// failed to spawn under resource exhaustion). The ticket, if any, is
    /// finished as failed and the id is free to retry.
    Rebuild(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ModelNotFound(id) => write!(f, "no model registered under id {id:?}"),
            ServeError::Embed(e) => write!(f, "embedding failed: {e}"),
            ServeError::ShuttingDown => write!(f, "the embedding service is shutting down"),
            ServeError::RebuildInProgress(id) => {
                write!(
                    f,
                    "a background rebuild is already running for model {id:?}"
                )
            }
            ServeError::NoTraffic(id) => {
                write!(f, "no recorded traffic to refresh model {id:?} from")
            }
            ServeError::Traffic(e) => write!(f, "traffic shard error: {e}"),
            ServeError::Rebuild(msg) => write!(f, "background rebuild error: {msg}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Embed(e) => Some(e),
            ServeError::Traffic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnqodeError> for ServeError {
    fn from(e: EnqodeError) -> Self {
        ServeError::Embed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::ModelNotFound("mnist".into());
        assert!(e.to_string().contains("mnist"));
        assert!(e.source().is_none());
        let e: ServeError = EnqodeError::NotTrained.into();
        assert!(e.to_string().contains("no trained"));
        assert!(e.source().is_some());
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
    }
}

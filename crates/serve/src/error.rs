//! The serving-layer error type.

use enqode::EnqodeError;
use std::error::Error;
use std::fmt;

/// Errors returned by [`crate::EmbedService`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request named a model id with no registered pipeline.
    ModelNotFound(String),
    /// The underlying embedding failed (dimension mismatch, zero vector,
    /// untrained pipeline, …).
    Embed(EnqodeError),
    /// The service is shutting down and no longer accepts requests, or shut
    /// down while this request was queued.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ModelNotFound(id) => write!(f, "no model registered under id {id:?}"),
            ServeError::Embed(e) => write!(f, "embedding failed: {e}"),
            ServeError::ShuttingDown => write!(f, "the embedding service is shutting down"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Embed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EnqodeError> for ServeError {
    fn from(e: EnqodeError) -> Self {
        ServeError::Embed(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::ModelNotFound("mnist".into());
        assert!(e.to_string().contains("mnist"));
        assert!(e.source().is_none());
        let e: ServeError = EnqodeError::NotTrained.into();
        assert!(e.to_string().contains("no trained"));
        assert!(e.source().is_some());
        assert!(ServeError::ShuttingDown.to_string().contains("shutting"));
    }
}

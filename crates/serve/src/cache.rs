//! The quantized LRU solution cache.
//!
//! Production embedding traffic is heavily repetitive: the same frames,
//! tiles, or user feature vectors recur, and nearby samples fine-tune to the
//! same solution anyway (the whole premise of EnQode's cluster transfer
//! learning). The cache exploits that by keying finished solutions on a
//! **quantized feature vector**: each feature is snapped to a grid of step
//! [`CacheConfig::quantum`], so two requests whose features agree to within
//! the grid resolution share one cache line and the second skips fine-tuning
//! entirely.
//!
//! Quantization semantics: the key of a request with features `f` is
//! `round(f[i] / quantum)` per component (plus the model id). `quantum <= 0`
//! disables snapping — keys are the exact f64 bit patterns, so only
//! bit-identical feature vectors hit. The returned solution is the *exact*
//! solution of whichever request of the bucket was computed first; callers
//! pick `quantum` at or below the noise floor of their feature source so that
//! bucket mates are interchangeable for downstream fidelity.
//!
//! Internally the cache is sharded (hash of key → shard), each shard a
//! mutex-guarded LRU list, and solutions are returned behind [`Arc`] so a hit
//! copies nothing.

use crate::solution::Solution;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Cache tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in solutions across all shards. `0` disables the cache
    /// (every lookup misses, inserts are dropped).
    pub capacity: usize,
    /// Feature quantization step. Two feature vectors hash to the same key
    /// iff every component rounds to the same multiple of `quantum`.
    /// `<= 0.0` means exact bit-pattern matching only.
    pub quantum: f64,
    /// Number of shards (minimum 1; rounded down to a divisor-friendly
    /// value is unnecessary — any count works).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 4096,
            quantum: 1e-6,
            shards: 16,
        }
    }
}

/// Quantizes a feature vector into grid cell indices (the cache key body).
///
/// With `quantum <= 0` the exact f64 bit patterns are used, so only
/// bit-identical vectors collide.
///
/// Callers must reject non-finite values first (the service does, with
/// [`crate::ServeError::NonFiniteFeature`]): grid rounding maps NaN onto
/// cell `0` and `±∞` onto `i64::MIN`/`MAX`, aliasing poisoned vectors with
/// legitimate near-zero or extreme ones.
pub fn quantize_features(features: &[f64], quantum: f64) -> Vec<i64> {
    enq_simd::quantize_cells(features, quantum)
}

/// A cache key: model id, registration generation, and quantized feature
/// cells.
///
/// The **generation** (see
/// [`ModelRegistry::get_with_generation`](crate::ModelRegistry::get_with_generation))
/// makes redeploys race-free: a request that resolved the previous
/// registration of an id can only insert under the old generation, which no
/// future lookup uses — stale solutions become unreachable the instant a
/// model is replaced, regardless of in-flight work.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    model_id: Arc<str>,
    generation: u64,
    // `Vec`, not `Box<[i64]>`, so a scratch key can be refilled in place
    // across requests ([`SolutionCache::fill_key`]) without reallocating.
    // `Vec` and boxed-slice hashing/equality agree (both delegate to the
    // slice), so key semantics are unchanged.
    cells: Vec<i64>,
}

impl CacheKey {
    /// Builds a key from a model id, its registration generation, and
    /// quantized cells.
    pub fn new(model_id: Arc<str>, generation: u64, cells: Vec<i64>) -> Self {
        Self {
            model_id,
            generation,
            cells,
        }
    }

    /// A reusable scratch key for [`SolutionCache::fill_key`]: probing with
    /// a scratch key costs zero allocations once its cell buffer has grown
    /// to the feature width (the placeholder id is the `""` literal, which
    /// never collides with a registered model).
    pub fn scratch() -> Self {
        Self {
            model_id: Arc::from(""),
            generation: 0,
            cells: Vec::new(),
        }
    }

    /// The model id this key belongs to.
    pub fn model_id(&self) -> &str {
        &self.model_id
    }
}

/// Cache observability counters (monotonic since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups that returned a cached solution.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Solutions inserted.
    pub insertions: u64,
    /// Solutions evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]` (`0` when no lookups have happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One entry of the intrusive LRU list. The payload is `Option` so freeing
/// a slot (eviction, invalidation) drops the key and value immediately
/// instead of holding them until the slot is reused.
struct LruEntry<K, V> {
    payload: Option<(K, V)>,
    /// Previous (towards most-recently-used) slot index, `usize::MAX` = none.
    prev: usize,
    /// Next (towards least-recently-used) slot index, `usize::MAX` = none.
    next: usize,
}

const NIL: usize = usize::MAX;

/// A classic O(1) LRU map: hash map into a slab of doubly linked entries.
/// Not thread safe on its own — [`SolutionCache`] wraps shards in mutexes.
struct LruMap<K, V> {
    map: HashMap<K, usize>,
    slab: Vec<LruEntry<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    capacity: usize,
}

impl<K: Hash + Eq + Clone, V: Clone> LruMap<K, V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity.min(1024)),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Unlinks `idx` from the recency list (must currently be linked).
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slab[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slab[next].prev = prev;
        }
    }

    /// Links `idx` at the head (most recently used).
    fn link_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most recently used on a hit.
    fn get(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.link_front(idx);
        }
        Some(
            self.slab[idx]
                .payload
                .as_ref()
                .expect("linked slot is filled")
                .1
                .clone(),
        )
    }

    /// Unlinks `idx`, clears its payload (dropping key and value), and
    /// recycles the slot.
    fn free_slot(&mut self, idx: usize) -> (K, V) {
        self.unlink(idx);
        self.free.push(idx);
        self.slab[idx]
            .payload
            .take()
            .expect("linked slot is filled")
    }

    /// Inserts `key → value`, evicting the least recently used entry when at
    /// capacity. Returns `true` if an eviction happened.
    fn insert(&mut self, key: K, value: V) -> bool {
        if self.capacity == 0 {
            return false;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx]
                .payload
                .as_mut()
                .expect("linked slot is filled")
                .1 = value;
            if self.head != idx {
                self.unlink(idx);
                self.link_front(idx);
            }
            return false;
        }
        let mut evicted = false;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "non-empty map has a tail");
            let (old_key, _old_value) = self.free_slot(lru);
            self.map.remove(&old_key);
            evicted = true;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slab[idx] = LruEntry {
                    payload: Some((key.clone(), value)),
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slab.push(LruEntry {
                    payload: Some((key.clone(), value)),
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.link_front(idx);
        evicted
    }

    /// Removes every entry whose key matches `pred`, dropping keys and
    /// values immediately; returns how many were removed. O(len) — intended
    /// for deploy-time invalidation, not the request path.
    fn remove_matching(&mut self, pred: impl Fn(&K) -> bool) -> usize {
        let doomed: Vec<K> = self.map.keys().filter(|k| pred(k)).cloned().collect();
        for key in &doomed {
            if let Some(idx) = self.map.remove(key) {
                drop(self.free_slot(idx));
            }
        }
        doomed.len()
    }
}

/// The sharded, quantized LRU solution cache.
///
/// # Examples
///
/// ```
/// use enq_serve::{CacheConfig, SolutionCache};
///
/// let cache = SolutionCache::new(CacheConfig { capacity: 8, ..Default::default() });
/// // Generation 1 = the first registration of "mnist" in the registry.
/// assert!(cache.lookup("mnist", 1, &[0.5, 0.5]).is_none());
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct SolutionCache {
    shards: Vec<Mutex<LruMap<CacheKey, Arc<Solution>>>>,
    quantum: f64,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    enabled: bool,
}

impl std::fmt::Debug for LruMap<CacheKey, Arc<Solution>> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruMap").field("len", &self.len()).finish()
    }
}

impl SolutionCache {
    /// Creates a cache from its configuration.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        let enabled = config.capacity > 0;
        // Spread capacity across shards, rounding up so the total is never
        // below the requested capacity.
        let per_shard = config.capacity.div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(LruMap::new(per_shard)))
                .collect(),
            quantum: config.quantum,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            enabled,
        }
    }

    /// Returns the configured quantization step.
    pub fn quantum(&self) -> f64 {
        self.quantum
    }

    /// Returns `true` when the cache stores anything at all
    /// (`capacity > 0`).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Builds the cache key for a request against one registration
    /// generation of `model_id`.
    pub fn key_for(&self, model_id: &Arc<str>, generation: u64, features: &[f64]) -> CacheKey {
        CacheKey::new(
            Arc::clone(model_id),
            generation,
            quantize_features(features, self.quantum),
        )
    }

    /// Rebuilds `key` in place for a request — the zero-allocation
    /// counterpart of [`SolutionCache::key_for`]: the model id is a pointer
    /// clone and the quantized cells overwrite the key's existing buffer.
    /// Equal to the [`SolutionCache::key_for`] key bit for bit; clone it to
    /// obtain an owned key for insertion after a miss.
    pub fn fill_key(
        &self,
        key: &mut CacheKey,
        model_id: &Arc<str>,
        generation: u64,
        features: &[f64],
    ) {
        key.model_id = Arc::clone(model_id);
        key.generation = generation;
        enq_simd::quantize_cells_into(features, self.quantum, &mut key.cells);
    }

    fn shard_for(&self, key: &CacheKey) -> &Mutex<LruMap<CacheKey, Arc<Solution>>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks up the solution for `(model_id, generation,
    /// quantize(features))`.
    pub fn lookup(
        &self,
        model_id: &str,
        generation: u64,
        features: &[f64],
    ) -> Option<Arc<Solution>> {
        let key = CacheKey::new(
            Arc::from(model_id),
            generation,
            quantize_features(features, self.quantum),
        );
        self.lookup_key(&key)
    }

    /// Looks up a pre-built key (the service builds keys once per request).
    pub fn lookup_key(&self, key: &CacheKey) -> Option<Arc<Solution>> {
        if !self.enabled {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let found = self
            .shard_for(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key);
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts a finished solution under a pre-built key.
    pub fn insert_key(&self, key: CacheKey, solution: Arc<Solution>) {
        if !self.enabled {
            return;
        }
        let evicted = self
            .shard_for(&key)
            .lock()
            .expect("cache shard poisoned")
            .insert(key, solution);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drops every cached solution belonging to `model_id`. Called when a
    /// model is replaced or retired so a redeployed id can never serve the
    /// previous model's solutions. Returns the number of entries removed.
    pub fn invalidate_model(&self, model_id: &str) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .remove_matching(|key| key.model_id() == model_id)
            })
            .sum()
    }

    /// Returns the number of cached solutions.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// Returns `true` when no solutions are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_solution(label: usize) -> Arc<Solution> {
        Arc::new(Solution {
            label,
            embedding: enqode::Embedding {
                parameters: vec![0.0],
                circuit: enq_circuit::QuantumCircuit::new(1),
                cluster_index: 0,
                ideal_fidelity: 1.0,
                duration: std::time::Duration::ZERO,
                iterations: 0,
            },
        })
    }

    #[test]
    fn quantization_buckets_nearby_vectors() {
        let a = quantize_features(&[0.100_000_1, -0.2], 1e-3);
        let b = quantize_features(&[0.100_000_9, -0.2], 1e-3);
        let c = quantize_features(&[0.102, -0.2], 1e-3);
        assert_eq!(a, b, "within one grid cell");
        assert_ne!(a, c, "two cells apart");
        // quantum <= 0: exact bit-pattern match only.
        let exact_a = quantize_features(&[0.1], 0.0);
        let exact_b = quantize_features(&[0.1 + 1e-16], 0.0);
        assert_ne!(exact_a, exact_b);
    }

    #[test]
    fn non_finite_values_alias_legitimate_cells() {
        // This is the hazard that forces the service to reject non-finite
        // features before touching any cache tier: in quantized mode a NaN
        // rounds onto the same cell as 0.0 and ±∞ saturate onto the same
        // cells as the largest finite values.
        assert_eq!(
            quantize_features(&[f64::NAN], 1e-6),
            quantize_features(&[0.0], 1e-6)
        );
        assert_eq!(
            quantize_features(&[f64::INFINITY], 1e-6),
            quantize_features(&[f64::MAX], 1e-6)
        );
        assert_eq!(
            quantize_features(&[f64::NEG_INFINITY], 1e-6),
            quantize_features(&[f64::MIN], 1e-6)
        );
    }

    #[test]
    fn negative_zero_follows_mode_semantics() {
        // -0.0 is finite and accepted. Quantized mode folds it into the
        // +0.0 cell (they are the same point on the grid); exact mode keys
        // on bit patterns, so the two zeros stay distinct.
        assert_eq!(
            quantize_features(&[-0.0], 1e-6),
            quantize_features(&[0.0], 1e-6)
        );
        assert_ne!(
            quantize_features(&[-0.0], 0.0),
            quantize_features(&[0.0], 0.0)
        );

        let quantized = SolutionCache::new(CacheConfig {
            capacity: 4,
            quantum: 1e-6,
            shards: 1,
        });
        let id: Arc<str> = Arc::from("m");
        quantized.insert_key(quantized.key_for(&id, 1, &[0.0]), dummy_solution(1));
        assert!(
            quantized.lookup("m", 1, &[-0.0]).is_some(),
            "same grid cell"
        );

        let exact = SolutionCache::new(CacheConfig {
            capacity: 4,
            quantum: 0.0,
            shards: 1,
        });
        exact.insert_key(exact.key_for(&id, 1, &[0.0]), dummy_solution(1));
        assert!(
            exact.lookup("m", 1, &[-0.0]).is_none(),
            "distinct bit patterns"
        );
        assert!(exact.lookup("m", 1, &[0.0]).is_some());
    }

    #[test]
    fn fill_key_matches_key_for_and_reuses_its_buffer() {
        let cache = SolutionCache::new(CacheConfig {
            capacity: 8,
            quantum: 1e-3,
            shards: 2,
        });
        let id: Arc<str> = Arc::from("m");
        let mut scratch = CacheKey::scratch();
        for (generation, features) in [(1u64, vec![0.1, -0.2]), (2, vec![0.5; 4]), (3, vec![])] {
            cache.fill_key(&mut scratch, &id, generation, &features);
            assert_eq!(scratch, cache.key_for(&id, generation, &features));
        }
        // A filled scratch key probes and inserts like an owned key.
        cache.fill_key(&mut scratch, &id, 7, &[0.25]);
        assert!(cache.lookup_key(&scratch).is_none());
        cache.insert_key(scratch.clone(), dummy_solution(9));
        assert_eq!(cache.lookup_key(&scratch).unwrap().label, 9);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru: LruMap<u32, u32> = LruMap::new(2);
        assert!(!lru.insert(1, 10));
        assert!(!lru.insert(2, 20));
        assert_eq!(lru.get(&1), Some(10)); // 1 now MRU, 2 is LRU
        assert!(lru.insert(3, 30)); // evicts 2
        assert_eq!(lru.get(&2), None);
        assert_eq!(lru.get(&1), Some(10));
        assert_eq!(lru.get(&3), Some(30));
        assert_eq!(lru.len(), 2);
        // Re-inserting an existing key updates in place without eviction.
        assert!(!lru.insert(3, 31));
        assert_eq!(lru.get(&3), Some(31));
    }

    #[test]
    fn lru_handles_capacity_one_and_slot_reuse() {
        let mut lru: LruMap<u32, u32> = LruMap::new(1);
        for i in 0..10 {
            lru.insert(i, i);
            assert_eq!(lru.get(&i), Some(i));
            assert_eq!(lru.len(), 1);
        }
        // The slab never grows past capacity + pending frees.
        assert!(lru.slab.len() <= 2);
    }

    #[test]
    fn cache_hit_returns_same_arc_and_counts() {
        let cache = SolutionCache::new(CacheConfig {
            capacity: 8,
            quantum: 1e-6,
            shards: 2,
        });
        let id: Arc<str> = Arc::from("m");
        let features = [0.25, 0.75];
        let key = cache.key_for(&id, 1, &features);
        assert!(cache.lookup_key(&key).is_none());
        let sol = dummy_solution(3);
        cache.insert_key(key.clone(), Arc::clone(&sol));
        let hit = cache.lookup("m", 1, &features).unwrap();
        assert!(Arc::ptr_eq(&sol, &hit), "hits return the exact solution");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_models_do_not_collide() {
        let cache = SolutionCache::new(CacheConfig::default());
        let features = [1.0, 2.0];
        cache.insert_key(
            cache.key_for(&Arc::from("a"), 1, &features),
            dummy_solution(0),
        );
        assert!(cache.lookup("b", 1, &features).is_none());
        assert_eq!(cache.lookup("a", 1, &features).unwrap().label, 0);
        // A different generation of the same id never collides: stale
        // solutions from a replaced registration are unreachable.
        assert!(cache.lookup("a", 2, &features).is_none());
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = SolutionCache::new(CacheConfig {
            capacity: 0,
            quantum: 1e-6,
            shards: 4,
        });
        assert!(!cache.is_enabled());
        let key = cache.key_for(&Arc::from("m"), 1, &[0.1]);
        cache.insert_key(key.clone(), dummy_solution(1));
        assert!(cache.lookup_key(&key).is_none());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().insertions, 0);
    }
}

//! Non-blocking background model rebuilds.
//!
//! [`ModelRegistry::rebuild_streaming`] trains on the calling thread — fine
//! for an offline deploy tool, unacceptable inside a serving process whose
//! control plane must keep answering health checks and deploys. The
//! [`RebuildController`] runs the same staged [`StreamDriver`] on a
//! dedicated worker thread instead:
//!
//! * **Progress** — the driver's per-stage `set_progress` hook streams
//!   [`StageProgress`] records into the returned [`RebuildTicket`], so the
//!   control plane can report "features done, clustering 2/4 passes" without
//!   touching the worker.
//! * **Cancellation** — [`RebuildTicket::cancel`] trips a cooperative
//!   [`CancelToken`] polled by the driver between chunks, audit rounds, and
//!   training items; the worker winds down, the registry is untouched, and
//!   the feature-spill temp file is removed with the driver.
//! * **Atomic swap** — only a fully trained pipeline is published, via
//!   [`ModelRegistry::insert`] under the same id: the registration
//!   generation bumps, so in-flight requests finish on the pipeline they
//!   resolved while new requests (and all cache keys) see exactly one
//!   consistent model. On *any* failure — and on a cancellation that lands
//!   after training finished but before the swap — the registry keeps
//!   serving the previous generation.
//!
//! One rebuild may be in flight per model id ([`ServeError::RebuildInProgress`]
//! otherwise); different ids rebuild concurrently.

use crate::error::ServeError;
use crate::registry::ModelRegistry;
use enq_data::{FeaturePipeline, SampleSource};
use enq_parallel::CancelToken;
use enqode::{EnqodeConfig, EnqodeError, EnqodePipeline, StreamDriver, StreamingFitConfig};
use std::collections::HashMap;
use std::num::NonZeroUsize;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything a background rebuild needs besides its sample source.
#[derive(Debug, Clone)]
pub struct RebuildSpec {
    /// Model/ansatz configuration of the retrained pipeline.
    pub config: EnqodeConfig,
    /// Streaming-fit shape (chunk size, passes, audit threshold, …).
    pub stream: StreamingFitConfig,
    /// An already-fitted feature pipeline to adopt: the source is then read
    /// as **feature-space** records (the traffic-refresh path — see
    /// [`StreamDriver::preset_features`]). `None` fits a fresh PCA from the
    /// raw source.
    pub features: Option<FeaturePipeline>,
    /// Worker threads for the fit; `None` uses
    /// [`enq_parallel::default_threads`]. Stage results are bit-identical
    /// for every value.
    pub threads: Option<NonZeroUsize>,
}

impl RebuildSpec {
    /// A spec that fits everything (PCA included) from the raw source.
    pub fn new(config: EnqodeConfig, stream: StreamingFitConfig) -> Self {
        Self {
            config,
            stream,
            features: None,
            threads: None,
        }
    }
}

/// Terminal-or-running state of one background rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildStatus {
    /// The worker is still fitting.
    Running,
    /// The new pipeline was trained and swapped into the registry.
    Succeeded,
    /// The rebuild observed a cancellation and wound down; the registry was
    /// left untouched.
    Cancelled,
    /// The fit failed (message from the underlying error); the registry was
    /// left untouched.
    Failed(String),
}

impl RebuildStatus {
    /// Whether the rebuild has reached a terminal state.
    pub fn is_finished(&self) -> bool {
        !matches!(self, RebuildStatus::Running)
    }
}

/// One completed driver stage, as surfaced through a [`RebuildTicket`].
#[derive(Debug, Clone)]
pub struct StageProgress {
    /// Stable stage name (`features`, `clustering`, `fidelity-audit`,
    /// `training`).
    pub stage: &'static str,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
    /// Human-readable stage summary from the driver.
    pub detail: String,
}

#[derive(Debug)]
struct TicketState {
    status: RebuildStatus,
    stages: Vec<StageProgress>,
}

#[derive(Debug)]
struct TicketShared {
    model_id: String,
    state: Mutex<TicketState>,
    finished: Condvar,
    token: CancelToken,
    /// When the rebuild was started (the ETA estimate anchors here).
    started_at: Instant,
    /// How many driver stages this rebuild will run (3, plus the fidelity
    /// audit when the spec sets a threshold) — the denominator of the ETA
    /// estimate.
    expected_stages: usize,
}

/// A cloneable handle to one background rebuild.
#[derive(Debug, Clone)]
pub struct RebuildTicket {
    shared: Arc<TicketShared>,
}

impl RebuildTicket {
    /// The model id being rebuilt.
    pub fn model_id(&self) -> &str {
        &self.shared.model_id
    }

    /// Requests cooperative cancellation. The worker winds down at its next
    /// poll point; the registry is left untouched even if training already
    /// finished.
    pub fn cancel(&self) {
        self.shared.token.cancel();
    }

    /// Current status snapshot.
    pub fn status(&self) -> RebuildStatus {
        self.shared
            .state
            .lock()
            .expect("rebuild ticket poisoned")
            .status
            .clone()
    }

    /// Whether the rebuild has reached a terminal state.
    pub fn is_finished(&self) -> bool {
        self.status().is_finished()
    }

    /// Stages completed so far, in completion order.
    pub fn progress(&self) -> Vec<StageProgress> {
        self.shared
            .state
            .lock()
            .expect("rebuild ticket poisoned")
            .stages
            .clone()
    }

    /// Estimates how long until this rebuild reaches a terminal state, from
    /// its [`StageProgress`] history: mean completed-stage duration × stages
    /// remaining. Before any stage completes there is no signal, so the
    /// estimate is "at least as long as it has already run" (floored at
    /// 50 ms); once every expected stage has reported, a nominal 1 ms covers
    /// the swap-and-publish tail. A finished rebuild estimates
    /// [`Duration::ZERO`].
    ///
    /// This is the `retry_after` carried by
    /// [`ServeError::RebuildInProgress`] — a scheduling hint for callers
    /// (and the wire protocol's retryable error mapping), never a guarantee.
    pub fn estimated_remaining(&self) -> Duration {
        let state = self.shared.state.lock().expect("rebuild ticket poisoned");
        if state.status.is_finished() {
            return Duration::ZERO;
        }
        let done = state.stages.len();
        if done == 0 {
            return self
                .shared
                .started_at
                .elapsed()
                .max(Duration::from_millis(50));
        }
        let spent: Duration = state.stages.iter().map(|s| s.duration).sum();
        let remaining = self.shared.expected_stages.saturating_sub(done);
        if remaining == 0 {
            return Duration::from_millis(1);
        }
        (spent / done as u32 * remaining as u32).max(Duration::from_millis(1))
    }

    /// Blocks until the rebuild reaches a terminal state and returns it.
    pub fn wait(&self) -> RebuildStatus {
        let mut state = self.shared.state.lock().expect("rebuild ticket poisoned");
        while !state.status.is_finished() {
            state = self
                .shared
                .finished
                .wait(state)
                .expect("rebuild ticket poisoned");
        }
        state.status.clone()
    }

    fn finish(&self, status: RebuildStatus) {
        let mut state = self.shared.state.lock().expect("rebuild ticket poisoned");
        state.status = status;
        self.shared.finished.notify_all();
    }

    fn push_stage(&self, progress: StageProgress) {
        self.shared
            .state
            .lock()
            .expect("rebuild ticket poisoned")
            .stages
            .push(progress);
    }
}

/// Hook run after a successful swap with `(model_id, kept_feature_basis)`.
/// `kept_feature_basis` is `true` when the rebuild adopted an existing
/// feature pipeline ([`RebuildSpec::features`]) — recorded traffic stays
/// valid for the new model — and `false` when a fresh PCA basis was fitted,
/// in which case previously recorded feature vectors live in the *old*
/// basis and must be discarded (the service clears its traffic buffer).
type SwapHook = Arc<dyn Fn(&str, bool) + Send + Sync>;

/// The background-rebuild coordinator of one registry (module docs have the
/// full design).
pub struct RebuildController {
    registry: Arc<ModelRegistry>,
    active: Mutex<HashMap<String, RebuildTicket>>,
    swap_hook: Option<SwapHook>,
    /// When set, every successful swap also persists the new pipeline as an
    /// `ENQM` artifact in this directory (shared with workers via `Arc` so
    /// enabling persistence affects rebuilds already in flight).
    store_dir: Arc<Mutex<Option<PathBuf>>>,
}

impl std::fmt::Debug for RebuildController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let active = self.active.lock().expect("rebuild controller poisoned");
        f.debug_struct("RebuildController")
            .field("active", &active.len())
            .field("has_swap_hook", &self.swap_hook.is_some())
            .finish_non_exhaustive()
    }
}

impl RebuildController {
    /// Creates a controller swapping rebuilt models into `registry`.
    pub fn new(registry: Arc<ModelRegistry>) -> Self {
        Self {
            registry,
            active: Mutex::new(HashMap::new()),
            swap_hook: None,
            store_dir: Arc::new(Mutex::new(None)),
        }
    }

    /// [`RebuildController::new`] plus a hook invoked after every successful
    /// swap with `(model_id, kept_feature_basis)`: the flag is `true` when
    /// the rebuild adopted an existing feature pipeline
    /// ([`RebuildSpec::features`]) and `false` when a fresh PCA basis was
    /// fitted — in which case feature vectors recorded under the old basis
    /// are no longer valid training data. [`crate::EmbedService`] wires its
    /// cache sweep (and, on a basis change, its traffic-buffer
    /// invalidation) through this.
    pub fn with_swap_hook(
        registry: Arc<ModelRegistry>,
        hook: impl Fn(&str, bool) + Send + Sync + 'static,
    ) -> Self {
        Self {
            registry,
            active: Mutex::new(HashMap::new()),
            swap_hook: Some(Arc::new(hook)),
            store_dir: Arc::new(Mutex::new(None)),
        }
    }

    /// The registry rebuilt models are swapped into.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Enables artifact persistence: after every successful swap, the new
    /// pipeline is written to `<dir>/<sanitised id>.enqm` at its assigned
    /// generation (temp file + atomic rename, see
    /// [`enq_store::write_model_file`]). Persistence is **best-effort**: the
    /// swap already published the model, so a write failure never demotes a
    /// [`RebuildStatus::Succeeded`] — it is surfaced as the detail of the
    /// rebuild's `persist` [`StageProgress`] entry instead.
    ///
    /// Takes effect for rebuilds already in flight. Pass-through from
    /// [`crate::EmbedService::enable_persistence`].
    pub fn set_store_dir(&self, dir: Option<PathBuf>) {
        *self.store_dir.lock().expect("rebuild controller poisoned") = dir;
    }

    /// The artifact directory persisted into on swap success, if enabled.
    pub fn store_dir(&self) -> Option<PathBuf> {
        self.store_dir
            .lock()
            .expect("rebuild controller poisoned")
            .clone()
    }

    /// The ticket of `model_id`'s in-flight rebuild, if one is running.
    pub fn active_rebuild(&self, model_id: &str) -> Option<RebuildTicket> {
        self.active
            .lock()
            .expect("rebuild controller poisoned")
            .get(model_id)
            .filter(|t| !t.is_finished())
            .cloned()
    }

    /// Starts a background rebuild of `model_id` from `source` and returns
    /// its ticket immediately. The worker trains via the staged
    /// [`StreamDriver`] and, on success, swaps the pipeline into the
    /// registry under the same id with a fresh generation. On failure or
    /// cancellation the registry is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::RebuildInProgress`] when `model_id` already has
    /// an unfinished rebuild, and configuration errors
    /// ([`ServeError::Embed`]) detected before the worker spawns.
    pub fn start<S>(
        &self,
        model_id: impl Into<String>,
        source: S,
        spec: RebuildSpec,
    ) -> Result<RebuildTicket, ServeError>
    where
        S: SampleSource + 'static,
    {
        let model_id = model_id.into();
        // Validate eagerly so obviously broken specs fail at the call site
        // instead of asynchronously on the ticket.
        spec.config.ansatz.validate().map_err(ServeError::Embed)?;
        spec.stream.validate().map_err(ServeError::Embed)?;

        let mut active = self.active.lock().expect("rebuild controller poisoned");
        if let Some(ticket) = active.get(&model_id).filter(|t| !t.is_finished()) {
            // Refusal carries a schedule, not just a fact: estimate when the
            // in-flight rebuild will finish from its stage history so the
            // caller (and the wire protocol) can surface a typed retry-after.
            let retry_after = ticket.estimated_remaining();
            return Err(ServeError::RebuildInProgress {
                model_id,
                retry_after,
            });
        }

        let shared = Arc::new(TicketShared {
            model_id: model_id.clone(),
            state: Mutex::new(TicketState {
                status: RebuildStatus::Running,
                stages: Vec::new(),
            }),
            finished: Condvar::new(),
            token: CancelToken::new(),
            started_at: Instant::now(),
            expected_stages: 3 + usize::from(spec.stream.fidelity_threshold.is_some()),
        });
        let ticket = RebuildTicket { shared };
        active.insert(model_id.clone(), ticket.clone());
        drop(active);

        let registry = Arc::clone(&self.registry);
        let swap_hook = self.swap_hook.clone();
        let store_dir = Arc::clone(&self.store_dir);
        let worker_ticket = ticket.clone();
        let token = ticket.shared.token.clone();
        let threads = spec.threads.unwrap_or_else(enq_parallel::default_threads);
        let spawned = std::thread::Builder::new()
            .name(format!("enq-rebuild-{model_id}"))
            .spawn(move || {
                let mut source = source;
                let kept_feature_basis = spec.features.is_some();
                let outcome = run_rebuild(&mut source, &spec, threads, &token, &worker_ticket);
                // Release the source before publishing the terminal status:
                // a ticket observed finished guarantees the rebuild no
                // longer holds source resources (open shard files, traffic
                // corpus references), so callers can clear/compact them.
                drop(source);
                let status = match outcome {
                    // A cancellation that lands after training finished but
                    // before the swap still leaves the registry untouched —
                    // the caller asked for no new model to be published.
                    Ok(_) if token.is_cancelled() => RebuildStatus::Cancelled,
                    Ok(pipeline) => {
                        let model_id = &*worker_ticket.shared.model_id;
                        let pipeline = Arc::new(pipeline);
                        let (_, generation) =
                            registry.insert_tracked(model_id, Arc::clone(&pipeline));
                        if let Some(hook) = &swap_hook {
                            hook(model_id, kept_feature_basis);
                        }
                        // Persistence rides behind the swap: the model is
                        // already serving, so a write failure is reported
                        // (as the `persist` stage detail), never fatal.
                        let dir = store_dir
                            .lock()
                            .expect("rebuild controller poisoned")
                            .clone();
                        if let Some(dir) = dir {
                            let started = Instant::now();
                            let path = dir.join(enq_store::artifact_file_name(model_id));
                            let detail = match enq_store::write_model_file(
                                &path, model_id, generation, &pipeline,
                            ) {
                                Ok(()) => {
                                    format!("wrote {} at generation {generation}", path.display())
                                }
                                Err(e) => format!("persist failed (model still live): {e}"),
                            };
                            worker_ticket.push_stage(StageProgress {
                                stage: "persist",
                                duration: started.elapsed(),
                                detail,
                            });
                        }
                        RebuildStatus::Succeeded
                    }
                    Err(EnqodeError::Cancelled) => RebuildStatus::Cancelled,
                    Err(e) => RebuildStatus::Failed(e.to_string()),
                };
                worker_ticket.finish(status);
            });
        if let Err(e) = spawned {
            // Thread exhaustion — the exact degraded condition rebuilds run
            // in. Fail the ticket (so clones are never stuck Running) and
            // free the id for a retry instead of panicking with the map
            // entry locked at Running forever.
            ticket.finish(RebuildStatus::Failed(format!(
                "spawning the rebuild worker failed: {e}"
            )));
            self.active
                .lock()
                .expect("rebuild controller poisoned")
                .remove(&model_id);
            return Err(ServeError::Rebuild(format!(
                "could not spawn the rebuild worker for {model_id:?}: {e}"
            )));
        }
        Ok(ticket)
    }
}

/// The worker body: drive all stages with progress + cancellation wired.
fn run_rebuild(
    source: &mut dyn SampleSource,
    spec: &RebuildSpec,
    threads: NonZeroUsize,
    token: &CancelToken,
    ticket: &RebuildTicket,
) -> Result<EnqodePipeline, EnqodeError> {
    let mut driver =
        StreamDriver::with_threads(source, spec.config.clone(), spec.stream.clone(), threads)?;
    if let Some(features) = &spec.features {
        driver.preset_features(features.clone())?;
    }
    driver.set_cancel(token.clone());
    let progress_ticket = ticket.clone();
    driver.set_progress(move |report| {
        progress_ticket.push_stage(StageProgress {
            stage: report.stage.name(),
            duration: report.duration,
            detail: report.detail.clone(),
        });
    });
    driver.run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_data::{DataError, SampleChunk, SyntheticConfig, SyntheticSource};
    use enqode::{AnsatzConfig, EntanglerKind};

    fn tiny_config(seed: u64) -> EnqodeConfig {
        EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits: 2,
                num_layers: 2,
                entangler: EntanglerKind::Cy,
            },
            fidelity_threshold: 0.5,
            max_clusters: 2,
            offline_max_iterations: 15,
            offline_restarts: 1,
            online_max_iterations: 5,
            offline_rescue: false,
            seed,
        }
    }

    fn tiny_stream() -> StreamingFitConfig {
        StreamingFitConfig {
            chunk_size: 4,
            clusters_per_class: 1,
            passes: 1,
            polish_passes: 1,
            ..Default::default()
        }
    }

    fn synthetic(seed: u64, per_class: usize) -> SyntheticSource {
        SyntheticSource::new(
            enq_data::DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: per_class,
                seed,
            },
        )
        .unwrap()
    }

    #[test]
    fn rebuild_succeeds_swaps_and_reports_progress() {
        let registry = Arc::new(ModelRegistry::with_shards(2));
        let swept = Arc::new(Mutex::new(Vec::<String>::new()));
        let swept_ref = Arc::clone(&swept);
        let controller =
            RebuildController::with_swap_hook(Arc::clone(&registry), move |id, kept| {
                assert!(!kept, "this rebuild fits a fresh basis");
                swept_ref.lock().unwrap().push(id.to_string());
            });
        let ticket = controller
            .start(
                "fresh",
                synthetic(5, 6),
                RebuildSpec::new(tiny_config(5), tiny_stream()),
            )
            .unwrap();
        assert_eq!(ticket.model_id(), "fresh");
        assert_eq!(ticket.wait(), RebuildStatus::Succeeded);
        assert!(ticket.is_finished());
        let pipeline = registry.get("fresh").expect("swapped in");
        assert_eq!(pipeline.class_models().len(), 2);
        let stages: Vec<&str> = ticket.progress().iter().map(|s| s.stage).collect();
        assert_eq!(stages, vec!["features", "clustering", "training"]);
        assert_eq!(ticket.estimated_remaining(), Duration::ZERO);
        assert_eq!(*swept.lock().unwrap(), vec!["fresh".to_string()]);
        assert!(controller.active_rebuild("fresh").is_none());
    }

    #[test]
    fn only_one_rebuild_per_id_and_ids_are_independent() {
        /// A source that parks until told to proceed, keeping the rebuild
        /// in-flight deterministically.
        struct GatedSource {
            inner: SyntheticSource,
            gate: Arc<std::sync::atomic::AtomicBool>,
        }
        impl SampleSource for GatedSource {
            fn feature_dim(&self) -> usize {
                self.inner.feature_dim()
            }
            fn reset(&mut self) -> Result<(), DataError> {
                self.inner.reset()
            }
            fn next_chunk(
                &mut self,
                max_samples: usize,
                chunk: &mut SampleChunk,
            ) -> Result<usize, DataError> {
                while !self.gate.load(std::sync::atomic::Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                self.inner.next_chunk(max_samples, chunk)
            }
        }

        let registry = Arc::new(ModelRegistry::with_shards(2));
        let controller = RebuildController::new(Arc::clone(&registry));
        let gate = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let slow = GatedSource {
            inner: synthetic(7, 4),
            gate: Arc::clone(&gate),
        };
        let ticket = controller
            .start("a", slow, RebuildSpec::new(tiny_config(7), tiny_stream()))
            .unwrap();
        assert_eq!(ticket.status(), RebuildStatus::Running);
        assert!(controller.active_rebuild("a").is_some());
        // Same id: refused while in flight, with an estimated retry-after
        // (no stage has completed yet, so the estimate is the elapsed-time
        // floor — strictly positive either way).
        assert!(matches!(
            controller.start(
                "a",
                synthetic(8, 4),
                RebuildSpec::new(tiny_config(8), tiny_stream())
            ),
            Err(ServeError::RebuildInProgress { model_id, retry_after })
                if model_id == "a" && retry_after > Duration::ZERO
        ));
        assert!(ticket.estimated_remaining() > Duration::ZERO);
        // Different id: runs concurrently.
        let other = controller
            .start(
                "b",
                synthetic(9, 4),
                RebuildSpec::new(tiny_config(9), tiny_stream()),
            )
            .unwrap();
        assert_eq!(other.wait(), RebuildStatus::Succeeded);
        gate.store(true, std::sync::atomic::Ordering::Release);
        assert_eq!(ticket.wait(), RebuildStatus::Succeeded);
        // A finished id can rebuild again.
        let again = controller
            .start(
                "a",
                synthetic(10, 4),
                RebuildSpec::new(tiny_config(10), tiny_stream()),
            )
            .unwrap();
        assert_eq!(again.wait(), RebuildStatus::Succeeded);
    }

    #[test]
    fn invalid_specs_fail_at_the_call_site() {
        let controller = RebuildController::new(Arc::new(ModelRegistry::new()));
        let bad_stream = StreamingFitConfig {
            chunk_size: 0,
            ..Default::default()
        };
        assert!(matches!(
            controller.start(
                "x",
                synthetic(1, 4),
                RebuildSpec::new(tiny_config(1), bad_stream)
            ),
            Err(ServeError::Embed(_))
        ));
        assert!(controller.active_rebuild("x").is_none());
    }
}

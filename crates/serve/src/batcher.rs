//! Request queue and micro-batch formation.
//!
//! Concurrent `embed` calls park their request in a [`BatchQueue`]; a single
//! batcher thread pulls **micro-batches** off the queue: it waits for the
//! first request, then keeps collecting until either
//! [`max_batch_size`](crate::ServeConfig::max_batch_size) requests are in
//! hand or the [`flush_deadline`](crate::ServeConfig::flush_deadline) since
//! batch formation began has passed. The deadline bounds single-request
//! latency under light traffic (a lone request waits at most one flush
//! window); the size cap bounds it under heavy traffic (no request waits
//! behind an unboundedly growing batch).
//!
//! The queue is a plain `Mutex<VecDeque> + Condvar` pair: request rates are
//! bounded by embedding compute (milliseconds per cold sample), so a lock-free
//! queue would buy nothing measurable here.

use crate::error::ServeError;
use crate::service::EmbedResponse;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

type ReplyCell = Mutex<Option<Result<EmbedResponse, ServeError>>>;

/// A one-shot reply channel: the batcher fills it, the requesting thread
/// blocks on it.
#[derive(Debug, Clone)]
pub(crate) struct ReplySlot {
    inner: Arc<(ReplyCell, Condvar)>,
}

impl ReplySlot {
    pub(crate) fn new() -> Self {
        Self {
            inner: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    /// Fills the slot and wakes the waiter. Filling twice is a logic error;
    /// the second value is dropped.
    pub(crate) fn send(&self, result: Result<EmbedResponse, ServeError>) {
        let (lock, cv) = &*self.inner;
        let mut slot = lock.lock().expect("reply slot poisoned");
        if slot.is_none() {
            *slot = Some(result);
        }
        cv.notify_all();
    }

    /// Blocks until the slot is filled and takes the result.
    pub(crate) fn wait(self) -> Result<EmbedResponse, ServeError> {
        let (lock, cv) = &*self.inner;
        let mut slot = lock.lock().expect("reply slot poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = cv.wait(slot).expect("reply slot poisoned");
        }
    }
}

/// A queued embedding request.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    /// Model id the request addresses.
    pub model_id: Arc<str>,
    /// The raw (pre-feature-extraction) sample.
    pub raw_sample: Vec<f64>,
    /// When the request entered the queue (latency measurement starts here).
    pub enqueued_at: Instant,
    /// Absolute expiry: a request still queued past this instant is
    /// completed with [`ServeError::DeadlineExceeded`] *before* any compute
    /// is spent on it. `None` never expires.
    pub deadline: Option<Instant>,
    /// Where to deliver the result.
    pub reply: ReplySlot,
}

impl PendingRequest {
    /// Whether the request's deadline has passed at `now`.
    pub fn is_expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

impl Drop for PendingRequest {
    /// Liveness backstop: a request dropped before being answered (batcher
    /// panic unwinding a batch, shutdown drain) fails its waiter instead of
    /// leaving the client thread blocked forever. `send` is a no-op for
    /// requests that were answered normally.
    fn drop(&mut self) {
        self.reply.send(Err(ServeError::ShuttingDown));
    }
}

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<PendingRequest>,
    shutdown: bool,
}

/// The shared request queue between client threads and the batcher thread.
#[derive(Debug, Default)]
pub(crate) struct BatchQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl BatchQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Enqueues a request, failing fast once shutdown has begun.
    pub(crate) fn push(&self, request: PendingRequest) -> Result<(), ServeError> {
        let mut state = self.state.lock().expect("batch queue poisoned");
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        state.queue.push_back(request);
        drop(state);
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks until at least one request is available, then collects a batch
    /// of up to `max_batch` requests, waiting at most `flush_deadline` (from
    /// the moment batch formation starts) for stragglers.
    ///
    /// Returns `None` only when the queue is shut down **and** drained, so
    /// every accepted request is eventually served.
    pub(crate) fn next_batch(
        &self,
        max_batch: usize,
        flush_deadline: Duration,
    ) -> Option<Vec<PendingRequest>> {
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().expect("batch queue poisoned");
        // Park until there is work or the service is fully done.
        while state.queue.is_empty() {
            if state.shutdown {
                return None;
            }
            state = self.cv.wait(state).expect("batch queue poisoned");
        }
        let deadline = Instant::now() + flush_deadline;
        let mut batch = Vec::with_capacity(max_batch.min(state.queue.len()));
        loop {
            while batch.len() < max_batch {
                match state.queue.pop_front() {
                    Some(req) => batch.push(req),
                    None => break,
                }
            }
            if batch.len() >= max_batch || state.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next_state, timeout) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("batch queue poisoned");
            state = next_state;
            if timeout.timed_out() && state.queue.is_empty() {
                break;
            }
        }
        Some(batch)
    }

    /// Begins shutdown: new pushes fail, already queued requests still drain
    /// through [`BatchQueue::next_batch`].
    pub(crate) fn shutdown(&self) {
        self.state.lock().expect("batch queue poisoned").shutdown = true;
        self.cv.notify_all();
    }

    /// Number of requests currently queued (not yet claimed by the batcher).
    /// The load-shedding front door reads this to decide when to stop
    /// admitting work.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("batch queue poisoned").queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(tag: usize) -> PendingRequest {
        PendingRequest {
            model_id: Arc::from("m"),
            raw_sample: vec![tag as f64],
            enqueued_at: Instant::now(),
            deadline: None,
            reply: ReplySlot::new(),
        }
    }

    #[test]
    fn deadline_expiry_is_observable() {
        let mut r = request(0);
        assert!(!r.is_expired(Instant::now()), "no deadline never expires");
        let now = Instant::now();
        r.deadline = Some(now);
        assert!(r.is_expired(now));
        r.deadline = Some(now + Duration::from_secs(60));
        assert!(!r.is_expired(now));
    }

    #[test]
    fn collects_up_to_max_batch_without_waiting_when_full() {
        let q = BatchQueue::new();
        for i in 0..5 {
            q.push(request(i)).unwrap();
        }
        let start = Instant::now();
        let batch = q.next_batch(3, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "a full batch must not wait for the flush deadline"
        );
        // FIFO order.
        assert_eq!(batch[0].raw_sample, vec![0.0]);
        assert_eq!(batch[2].raw_sample, vec![2.0]);
        assert_eq!(q.depth(), 2);
        let rest = q.next_batch(3, Duration::ZERO).unwrap();
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn flush_deadline_releases_partial_batches() {
        let q = BatchQueue::new();
        q.push(request(0)).unwrap();
        let start = Instant::now();
        let batch = q.next_batch(8, Duration::from_millis(20)).unwrap();
        let waited = start.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(waited >= Duration::from_millis(20), "waited {waited:?}");
        assert!(waited < Duration::from_secs(5));
    }

    #[test]
    fn stragglers_join_an_open_batch() {
        let q = Arc::new(BatchQueue::new());
        q.push(request(0)).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(request(1)).unwrap();
        });
        let batch = q.next_batch(2, Duration::from_secs(5)).unwrap();
        pusher.join().unwrap();
        // The second request arrived within the flush window and filled the
        // batch to its size cap, releasing it before the full deadline.
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = BatchQueue::new();
        q.push(request(0)).unwrap();
        q.push(request(1)).unwrap();
        q.shutdown();
        assert!(matches!(q.push(request(2)), Err(ServeError::ShuttingDown)));
        let batch = q.next_batch(10, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.len(), 2, "queued requests drain after shutdown");
        assert!(q.next_batch(10, Duration::ZERO).is_none());
    }

    #[test]
    fn reply_slot_roundtrip_across_threads() {
        let slot = ReplySlot::new();
        let waiter = slot.clone();
        let handle = std::thread::spawn(move || waiter.wait());
        std::thread::sleep(Duration::from_millis(5));
        slot.send(Err(ServeError::ShuttingDown));
        assert!(matches!(
            handle.join().unwrap(),
            Err(ServeError::ShuttingDown)
        ));
    }
}

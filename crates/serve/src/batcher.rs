//! Request queue and micro-batch formation.
//!
//! Concurrent `embed` calls park their request in a [`BatchQueue`]; a single
//! batcher thread pulls **micro-batches** off the queue: it waits for the
//! first request, then keeps collecting until either
//! [`max_batch_size`](crate::ServeConfig::max_batch_size) requests are in
//! hand or the [`flush_deadline`](crate::ServeConfig::flush_deadline) since
//! batch formation began has passed. The deadline bounds single-request
//! latency under light traffic (a lone request waits at most one flush
//! window); the size cap bounds it under heavy traffic (no request waits
//! behind an unboundedly growing batch).
//!
//! The queue is a plain `Mutex<VecDeque> + Condvar` pair: request rates are
//! bounded by embedding compute (milliseconds per cold sample), so a lock-free
//! queue would buy nothing measurable here. What *does* matter on the hot
//! path is allocation traffic, so the moving parts are pooled: reply slots
//! come from a [`SlotPool`], sample buffers ride in
//! [`PooledBuf`](crate::pool::PooledBuf)s, and the batcher collects into a
//! reusable batch vector via [`BatchQueue::next_batch_into`]. A steady-state
//! request touches the allocator zero times between `embed()` and its reply.

use crate::error::ServeError;
use crate::pool::{PoolStats, PooledBuf};
use crate::service::EmbedResponse;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

type ReplyCell = Mutex<Option<Result<EmbedResponse, ServeError>>>;
type SlotInner = Arc<(ReplyCell, Condvar)>;

/// A one-shot reply channel: the batcher fills it, the requesting thread
/// blocks on it.
///
/// Slots checked out of a [`SlotPool`] recycle themselves when their **last**
/// clone drops; see [`Drop`](ReplySlot::drop) for why only the final holder
/// may park the slot.
#[derive(Debug, Clone)]
pub(crate) struct ReplySlot {
    /// `None` only transiently inside `drop`.
    inner: Option<SlotInner>,
    /// Pool to return the slot to; `None` for unpooled slots (tests, callers
    /// without a service).
    pool: Option<Arc<SlotPool>>,
}

impl ReplySlot {
    /// Creates a fresh, unpooled slot (production slots come from a
    /// [`SlotPool`]; tests use this directly).
    #[cfg(test)]
    pub(crate) fn new() -> Self {
        Self {
            inner: Some(Arc::new((Mutex::new(None), Condvar::new()))),
            pool: None,
        }
    }

    fn cell(&self) -> &(ReplyCell, Condvar) {
        self.inner.as_ref().expect("live reply slot has a cell")
    }

    /// Fills the slot and wakes the waiter. Filling twice is a logic error;
    /// the second value is dropped.
    pub(crate) fn send(&self, result: Result<EmbedResponse, ServeError>) {
        let (lock, cv) = self.cell();
        let mut slot = lock.lock().expect("reply slot poisoned");
        if slot.is_none() {
            *slot = Some(result);
        }
        cv.notify_all();
    }

    /// Blocks until the slot is filled and takes the result.
    pub(crate) fn wait(self) -> Result<EmbedResponse, ServeError> {
        let (lock, cv) = self.cell();
        let mut slot = lock.lock().expect("reply slot poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = cv.wait(slot).expect("reply slot poisoned");
        }
    }
}

impl Drop for ReplySlot {
    /// Recycles pooled slots, but only from the **last** live holder: while
    /// another clone exists (the waiter and the queued request share the
    /// cell), parking the slot would let a fresh request cross-wire with the
    /// old waiter. `Arc::get_mut` succeeding proves this handle is the sole
    /// owner, and `PendingRequest::drop` sends its backstop *before* its
    /// fields drop, so no sender can touch the cell after it is parked. Any
    /// stale value a backstop left behind is cleared on the next checkout.
    fn drop(&mut self) {
        let Some(mut inner) = self.inner.take() else {
            return;
        };
        if let Some(pool) = self.pool.take() {
            if Arc::get_mut(&mut inner).is_some() {
                pool.put(inner);
            }
        }
    }
}

/// A bounded pool of reusable reply slots.
///
/// Mirrors [`crate::pool::BufferPool`] but holds `Arc<(Mutex, Condvar)>`
/// cells: the parked side is capacity-bounded, checkouts clear any stale
/// backstop value, and [`PoolStats::outstanding`] drains to zero when the
/// service quiesces.
#[derive(Debug)]
pub(crate) struct SlotPool {
    slots: Mutex<Vec<SlotInner>>,
    capacity: usize,
    outstanding: AtomicUsize,
    created: AtomicU64,
}

impl SlotPool {
    pub(crate) fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            slots: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
            outstanding: AtomicUsize::new(0),
            created: AtomicU64::new(0),
        })
    }

    /// Checks out a slot with an empty cell, reusing a parked one when
    /// available.
    pub(crate) fn checkout(self: &Arc<Self>) -> ReplySlot {
        let parked = self.slots.lock().expect("slot pool poisoned").pop();
        let inner = parked.unwrap_or_else(|| {
            self.created.fetch_add(1, Ordering::Relaxed);
            Arc::new((Mutex::new(None), Condvar::new()))
        });
        // A recycled slot may still hold the previous request's shutdown
        // backstop; every checkout starts from an empty cell.
        *inner.0.lock().expect("reply slot poisoned") = None;
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        ReplySlot {
            inner: Some(inner),
            pool: Some(Arc::clone(self)),
        }
    }

    fn put(&self, inner: SlotInner) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut slots = self.slots.lock().expect("slot pool poisoned");
        if slots.len() < self.capacity {
            slots.push(inner);
        }
    }

    /// Current accounting snapshot.
    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            available: self.slots.lock().expect("slot pool poisoned").len(),
            capacity: self.capacity,
            outstanding: self.outstanding.load(Ordering::Relaxed),
            created: self.created.load(Ordering::Relaxed),
        }
    }
}

/// A queued embedding request.
#[derive(Debug)]
pub(crate) struct PendingRequest {
    /// Model id the request addresses — interned via the registry, so queuing
    /// a request is an `Arc` bump, not a string copy.
    pub model_id: Arc<str>,
    /// The raw (pre-feature-extraction) sample, in a pooled buffer that
    /// returns to the service's pool when the request is dropped.
    pub raw_sample: PooledBuf,
    /// When the request entered the queue (latency measurement starts here).
    pub enqueued_at: Instant,
    /// Absolute expiry: a request still queued past this instant is
    /// completed with [`ServeError::DeadlineExceeded`] *before* any compute
    /// is spent on it. `None` never expires.
    pub deadline: Option<Instant>,
    /// Where to deliver the result.
    pub reply: ReplySlot,
}

impl PendingRequest {
    /// Whether the request's deadline has passed at `now`.
    pub fn is_expired(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

impl Drop for PendingRequest {
    /// Liveness backstop: a request dropped before being answered (batcher
    /// panic unwinding a batch, shutdown drain) fails its waiter instead of
    /// leaving the client thread blocked forever. `send` is a no-op for
    /// requests that were answered normally. The send happens before the
    /// `reply` field itself drops, which is what makes slot recycling safe —
    /// see [`ReplySlot`]'s `Drop`.
    fn drop(&mut self) {
        self.reply.send(Err(ServeError::ShuttingDown));
    }
}

#[derive(Debug, Default)]
struct QueueState {
    queue: VecDeque<PendingRequest>,
    shutdown: bool,
}

/// The shared request queue between client threads and the batcher thread.
#[derive(Debug, Default)]
pub(crate) struct BatchQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl BatchQueue {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Enqueues a request, failing fast once shutdown has begun.
    pub(crate) fn push(&self, request: PendingRequest) -> Result<(), ServeError> {
        let mut state = self.state.lock().expect("batch queue poisoned");
        if state.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        state.queue.push_back(request);
        drop(state);
        self.cv.notify_all();
        Ok(())
    }

    /// Blocks until at least one request is available, then collects a batch
    /// of up to `max_batch` requests into `batch`, waiting at most
    /// `flush_deadline` (from the moment batch formation starts) for
    /// stragglers. `batch` must be empty on entry; the batcher thread passes
    /// the same vector every iteration so batch collection reuses its
    /// capacity instead of allocating.
    ///
    /// Returns `false` only when the queue is shut down **and** drained, so
    /// every accepted request is eventually served.
    pub(crate) fn next_batch_into(
        &self,
        batch: &mut Vec<PendingRequest>,
        max_batch: usize,
        flush_deadline: Duration,
    ) -> bool {
        debug_assert!(batch.is_empty(), "batch vector is reused, not appended");
        let max_batch = max_batch.max(1);
        let mut state = self.state.lock().expect("batch queue poisoned");
        // Park until there is work or the service is fully done.
        while state.queue.is_empty() {
            if state.shutdown {
                return false;
            }
            state = self.cv.wait(state).expect("batch queue poisoned");
        }
        let deadline = Instant::now() + flush_deadline;
        loop {
            while batch.len() < max_batch {
                match state.queue.pop_front() {
                    Some(req) => batch.push(req),
                    None => break,
                }
            }
            if batch.len() >= max_batch || state.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (next_state, timeout) = self
                .cv
                .wait_timeout(state, deadline - now)
                .expect("batch queue poisoned");
            state = next_state;
            if timeout.timed_out() && state.queue.is_empty() {
                break;
            }
        }
        true
    }

    /// Allocating convenience wrapper around [`BatchQueue::next_batch_into`]:
    /// returns `None` when the queue is shut down and drained.
    pub(crate) fn next_batch(
        &self,
        max_batch: usize,
        flush_deadline: Duration,
    ) -> Option<Vec<PendingRequest>> {
        let mut batch = Vec::new();
        if self.next_batch_into(&mut batch, max_batch, flush_deadline) {
            Some(batch)
        } else {
            None
        }
    }

    /// Begins shutdown: new pushes fail, already queued requests still drain
    /// through [`BatchQueue::next_batch_into`].
    pub(crate) fn shutdown(&self) {
        self.state.lock().expect("batch queue poisoned").shutdown = true;
        self.cv.notify_all();
    }

    /// Number of requests currently queued (not yet claimed by the batcher).
    /// The load-shedding front door reads this to decide when to stop
    /// admitting work.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().expect("batch queue poisoned").queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(tag: usize) -> PendingRequest {
        PendingRequest {
            model_id: Arc::from("m"),
            raw_sample: vec![tag as f64].into(),
            enqueued_at: Instant::now(),
            deadline: None,
            reply: ReplySlot::new(),
        }
    }

    #[test]
    fn deadline_expiry_is_observable() {
        let mut r = request(0);
        assert!(!r.is_expired(Instant::now()), "no deadline never expires");
        let now = Instant::now();
        r.deadline = Some(now);
        assert!(r.is_expired(now));
        r.deadline = Some(now + Duration::from_secs(60));
        assert!(!r.is_expired(now));
    }

    #[test]
    fn collects_up_to_max_batch_without_waiting_when_full() {
        let q = BatchQueue::new();
        for i in 0..5 {
            q.push(request(i)).unwrap();
        }
        let start = Instant::now();
        let batch = q.next_batch(3, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.len(), 3);
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "a full batch must not wait for the flush deadline"
        );
        // FIFO order.
        assert_eq!(*batch[0].raw_sample, vec![0.0]);
        assert_eq!(*batch[2].raw_sample, vec![2.0]);
        assert_eq!(q.depth(), 2);
        let rest = q.next_batch(3, Duration::ZERO).unwrap();
        assert_eq!(rest.len(), 2);
    }

    #[test]
    fn next_batch_into_reuses_the_callers_vector() {
        let q = BatchQueue::new();
        for i in 0..4 {
            q.push(request(i)).unwrap();
        }
        let mut batch = Vec::new();
        assert!(q.next_batch_into(&mut batch, 2, Duration::ZERO));
        assert_eq!(batch.len(), 2);
        let ptr = batch.as_ptr();
        let capacity = batch.capacity();
        batch.clear();
        assert!(q.next_batch_into(&mut batch, 2, Duration::ZERO));
        assert_eq!(batch.len(), 2);
        assert_eq!(*batch[0].raw_sample, vec![2.0], "FIFO across calls");
        assert_eq!(batch.as_ptr(), ptr, "no reallocation across batches");
        assert_eq!(batch.capacity(), capacity);
        batch.clear();
        q.shutdown();
        assert!(!q.next_batch_into(&mut batch, 2, Duration::ZERO));
        assert!(batch.is_empty());
    }

    #[test]
    fn flush_deadline_releases_partial_batches() {
        let q = BatchQueue::new();
        q.push(request(0)).unwrap();
        let start = Instant::now();
        let batch = q.next_batch(8, Duration::from_millis(20)).unwrap();
        let waited = start.elapsed();
        assert_eq!(batch.len(), 1);
        assert!(waited >= Duration::from_millis(20), "waited {waited:?}");
        assert!(waited < Duration::from_secs(5));
    }

    #[test]
    fn stragglers_join_an_open_batch() {
        let q = Arc::new(BatchQueue::new());
        q.push(request(0)).unwrap();
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            q2.push(request(1)).unwrap();
        });
        let batch = q.next_batch(2, Duration::from_secs(5)).unwrap();
        pusher.join().unwrap();
        // The second request arrived within the flush window and filled the
        // batch to its size cap, releasing it before the full deadline.
        assert_eq!(batch.len(), 2);
    }

    #[test]
    fn shutdown_drains_then_ends() {
        let q = BatchQueue::new();
        q.push(request(0)).unwrap();
        q.push(request(1)).unwrap();
        q.shutdown();
        assert!(matches!(q.push(request(2)), Err(ServeError::ShuttingDown)));
        let batch = q.next_batch(10, Duration::from_secs(10)).unwrap();
        assert_eq!(batch.len(), 2, "queued requests drain after shutdown");
        assert!(q.next_batch(10, Duration::ZERO).is_none());
    }

    #[test]
    fn reply_slot_roundtrip_across_threads() {
        let slot = ReplySlot::new();
        let waiter = slot.clone();
        let handle = std::thread::spawn(move || waiter.wait());
        std::thread::sleep(Duration::from_millis(5));
        slot.send(Err(ServeError::ShuttingDown));
        assert!(matches!(
            handle.join().unwrap(),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn slot_pool_recycles_only_after_the_last_holder_drops() {
        let pool = SlotPool::new(4);
        let slot = pool.checkout();
        let clone = slot.clone();
        assert_eq!(pool.stats().outstanding, 1);
        drop(slot);
        assert_eq!(
            pool.stats().available,
            0,
            "a live clone keeps the slot checked out"
        );
        assert_eq!(pool.stats().outstanding, 1);
        drop(clone);
        let stats = pool.stats();
        assert_eq!(stats.available, 1, "the final holder parks the slot");
        assert_eq!(stats.outstanding, 0);
        assert_eq!(stats.created, 1);
        // The recycled slot is reused and starts empty even after a backstop
        // value was left in it.
        let recycled = pool.checkout();
        recycled.send(Err(ServeError::ShuttingDown));
        drop(recycled);
        let reused = pool.checkout();
        assert_eq!(pool.stats().created, 1, "no fresh slot was needed");
        let probe = reused.clone();
        reused.send(Err(ServeError::ModelNotFound("m".into())));
        assert!(matches!(
            probe.wait(),
            Err(ServeError::ModelNotFound(id)) if id == "m"
        ));
    }

    #[test]
    fn pooled_request_lifecycle_returns_the_slot_through_the_backstop() {
        let pool = SlotPool::new(4);
        let slot = pool.checkout();
        let waiter = slot.clone();
        let req = PendingRequest {
            model_id: Arc::from("m"),
            raw_sample: vec![1.0].into(),
            enqueued_at: Instant::now(),
            deadline: None,
            reply: slot,
        };
        // Dropping an unanswered request fires the backstop, then the last
        // holder (the waiter, consumed by wait) recycles the slot.
        drop(req);
        assert!(matches!(waiter.wait(), Err(ServeError::ShuttingDown)));
        let stats = pool.stats();
        assert_eq!(stats.outstanding, 0);
        assert_eq!(stats.available, 1);
    }
}

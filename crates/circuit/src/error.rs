//! Error types for circuit construction and transpilation.

use std::error::Error;
use std::fmt;

/// Errors returned by circuit construction, routing, and transpilation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A qubit index was outside the circuit's register.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// Number of qubits in the circuit.
        num_qubits: usize,
    },
    /// A gate was applied to a repeated qubit (e.g. `cx q0, q0`).
    DuplicateQubit {
        /// The repeated qubit index.
        qubit: usize,
    },
    /// A parameterised angle was used where a bound value was required.
    UnboundParameter {
        /// The parameter index that was still symbolic.
        index: usize,
    },
    /// The number of supplied parameter values did not match the circuit.
    ParameterCountMismatch {
        /// Number of parameters the circuit declares.
        expected: usize,
        /// Number of values supplied.
        found: usize,
    },
    /// The requested pair of qubits is not connected on the device topology.
    NotConnected {
        /// First physical qubit.
        a: usize,
        /// Second physical qubit.
        b: usize,
    },
    /// The circuit does not fit on the device.
    DeviceTooSmall {
        /// Qubits required by the circuit.
        required: usize,
        /// Qubits available on the device.
        available: usize,
    },
    /// A gate is unsupported by the requested transformation.
    UnsupportedGate(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => {
                write!(
                    f,
                    "qubit {qubit} out of range for {num_qubits}-qubit circuit"
                )
            }
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "gate applied twice to qubit {qubit}")
            }
            CircuitError::UnboundParameter { index } => {
                write!(f, "parameter {index} is unbound")
            }
            CircuitError::ParameterCountMismatch { expected, found } => {
                write!(f, "expected {expected} parameter values, found {found}")
            }
            CircuitError::NotConnected { a, b } => {
                write!(f, "physical qubits {a} and {b} are not connected")
            }
            CircuitError::DeviceTooSmall {
                required,
                available,
            } => {
                write!(
                    f,
                    "circuit needs {required} qubits but device has {available}"
                )
            }
            CircuitError::UnsupportedGate(name) => write!(f, "unsupported gate: {name}"),
        }
    }
}

impl Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: 9,
            num_qubits: 4,
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        assert!(CircuitError::UnsupportedGate("foo".into())
            .to_string()
            .contains("foo"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CircuitError>();
    }
}

//! The transpilation pipeline: layout → routing → basis translation → metrics.
//!
//! Mirrors the paper's methodology: circuits are transpiled onto an
//! `ibm_brisbane`-like heavy-hex device at "optimisation level 0", i.e. with
//! only the transformations required for hardware execution (SWAP routing and
//! native-basis translation) and no synthesis-level optimisation.

use crate::basis::translate_to_native;
use crate::circuit::QuantumCircuit;
use crate::error::CircuitError;
use crate::layout::Layout;
use crate::metrics::CircuitMetrics;
use crate::routing::route;
use crate::topology::Topology;

/// Options controlling the transpilation pipeline.
#[derive(Debug, Clone)]
pub struct TranspileOptions {
    /// Physical qubits to place the logical register on. When `None`, a
    /// linear section of the topology (or the trivial layout as a fallback)
    /// is selected automatically.
    pub initial_physical_qubits: Option<Vec<usize>>,
    /// Whether to translate to the native basis after routing.
    pub translate_to_native_basis: bool,
}

impl Default for TranspileOptions {
    fn default() -> Self {
        Self {
            initial_physical_qubits: None,
            translate_to_native_basis: true,
        }
    }
}

/// The output of [`Transpiler::transpile`].
#[derive(Debug, Clone)]
pub struct TranspiledCircuit {
    /// The hardware-ready circuit on physical qubits.
    pub circuit: QuantumCircuit,
    /// The initial layout that was chosen.
    pub initial_layout: Layout,
    /// The layout after routing.
    pub final_layout: Layout,
    /// Number of routing SWAP gates inserted.
    pub swap_count: usize,
    /// Cost metrics of the hardware-ready circuit.
    pub metrics: CircuitMetrics,
}

/// A reusable transpiler bound to a device topology.
///
/// # Examples
///
/// ```
/// use enq_circuit::{QuantumCircuit, Topology, Transpiler};
///
/// let mut qc = QuantumCircuit::new(3);
/// qc.h(0).cx(0, 2).cy(1, 2);
/// let transpiler = Transpiler::new(Topology::ibm_brisbane_like());
/// let out = transpiler.transpile(&qc)?;
/// assert!(out.metrics.two_qubit_gates >= 2);
/// # Ok::<(), enq_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Transpiler {
    topology: Topology,
    options: TranspileOptions,
}

impl Transpiler {
    /// Creates a transpiler with default options for the given topology.
    pub fn new(topology: Topology) -> Self {
        Self {
            topology,
            options: TranspileOptions::default(),
        }
    }

    /// Creates a transpiler with explicit options.
    pub fn with_options(topology: Topology, options: TranspileOptions) -> Self {
        Self { topology, options }
    }

    /// Returns the device topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Returns the transpiler options.
    pub fn options(&self) -> &TranspileOptions {
        &self.options
    }

    /// Chooses the initial layout for a circuit of `num_qubits` logical qubits.
    ///
    /// Preference order: explicitly configured qubits, then a linear section
    /// of the device (which is what both EnQode and the Baseline use in the
    /// paper), then the trivial layout.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DeviceTooSmall`] when the device cannot host
    /// the register.
    pub fn select_layout(&self, num_qubits: usize) -> Result<Layout, CircuitError> {
        if let Some(phys) = &self.options.initial_physical_qubits {
            if phys.len() < num_qubits {
                return Err(CircuitError::DeviceTooSmall {
                    required: num_qubits,
                    available: phys.len(),
                });
            }
            return Layout::from_physical(&phys[..num_qubits], self.topology.num_qubits());
        }
        if let Some(section) = self.topology.linear_section(num_qubits) {
            return Layout::from_physical(&section, self.topology.num_qubits());
        }
        Layout::trivial(num_qubits, self.topology.num_qubits())
    }

    /// Runs the full pipeline on a logical circuit.
    ///
    /// # Errors
    ///
    /// Propagates layout, routing, and translation errors.
    pub fn transpile(&self, circuit: &QuantumCircuit) -> Result<TranspiledCircuit, CircuitError> {
        let initial_layout = self.select_layout(circuit.num_qubits())?;
        let routed = route(circuit, &self.topology, initial_layout.clone())?;
        let hardware_circuit = if self.options.translate_to_native_basis {
            translate_to_native(&routed.circuit)?
        } else {
            routed.circuit
        };
        let metrics = CircuitMetrics::of(&hardware_circuit);
        Ok(TranspiledCircuit {
            circuit: hardware_circuit,
            initial_layout,
            final_layout: routed.final_layout,
            swap_count: routed.swap_count,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::is_native;
    use crate::gate::Gate;

    #[test]
    fn transpile_adjacent_circuit_has_no_swaps() {
        let mut qc = QuantumCircuit::new(4);
        qc.cy(0, 1).cy(2, 3).cy(1, 2);
        let t = Transpiler::new(Topology::linear(4));
        let out = t.transpile(&qc).unwrap();
        assert_eq!(out.swap_count, 0);
        assert!(is_native(&out.circuit));
        // Each CY costs exactly one CX.
        assert_eq!(out.metrics.two_qubit_gates, 3);
    }

    #[test]
    fn transpile_on_brisbane_like_selects_linear_section() {
        let mut qc = QuantumCircuit::new(8);
        for q in 0..7 {
            qc.cy(q, q + 1);
        }
        let t = Transpiler::new(Topology::ibm_brisbane_like());
        let out = t.transpile(&qc).unwrap();
        assert_eq!(out.swap_count, 0, "linear section placement needs no SWAPs");
        assert_eq!(out.metrics.two_qubit_gates, 7);
    }

    #[test]
    fn transpile_without_translation_keeps_gates() {
        let mut qc = QuantumCircuit::new(2);
        qc.cy(0, 1);
        let t = Transpiler::with_options(
            Topology::linear(2),
            TranspileOptions {
                initial_physical_qubits: None,
                translate_to_native_basis: false,
            },
        );
        let out = t.transpile(&qc).unwrap();
        assert!(out.circuit.iter().any(|i| matches!(i.gate, Gate::Cy)));
    }

    #[test]
    fn transpile_with_explicit_layout() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1);
        let t = Transpiler::with_options(
            Topology::linear(6),
            TranspileOptions {
                initial_physical_qubits: Some(vec![3, 4]),
                translate_to_native_basis: true,
            },
        );
        let out = t.transpile(&qc).unwrap();
        assert_eq!(out.initial_layout.physical(0), 3);
        let cx = out
            .circuit
            .iter()
            .find(|i| matches!(i.gate, Gate::Cx))
            .unwrap();
        assert_eq!(cx.qubits, vec![3, 4]);
    }

    #[test]
    fn transpile_too_large_circuit_fails() {
        let qc = QuantumCircuit::new(10);
        let t = Transpiler::new(Topology::linear(3));
        assert!(t.transpile(&qc).is_err());
    }

    #[test]
    fn distant_interactions_cost_swaps_and_depth() {
        // A circuit that repeatedly couples the two ends of a line: routing
        // should add SWAPs and the depth should grow well beyond the logical
        // depth, mimicking the Baseline's behaviour in the paper.
        let n = 6;
        let mut qc = QuantumCircuit::new(n);
        for _ in 0..3 {
            qc.cx(0, n - 1);
            qc.cx(n - 1, 0);
        }
        let t = Transpiler::new(Topology::linear(n));
        let out = t.transpile(&qc).unwrap();
        assert!(out.swap_count > 0);
        assert!(out.metrics.two_qubit_gates > 6);
    }
}

//! Circuit cost metrics as reported in the paper's evaluation.
//!
//! All figures in the paper exclude `Rz` gates (and other virtual frame
//! changes) because they contribute neither error nor duration on IBM
//! hardware. [`CircuitMetrics`] applies the same convention.

use crate::circuit::QuantumCircuit;
use crate::gate::Gate;
use std::fmt;

/// Per-circuit cost metrics (virtual gates excluded unless stated otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CircuitMetrics {
    /// Circuit depth over physical (non-virtual) gates.
    pub depth: usize,
    /// Total number of physical gates.
    pub total_gates: usize,
    /// Number of physical single-qubit gates (`SX`, `X`, …).
    pub one_qubit_gates: usize,
    /// Number of two-qubit gates (`CX`, `CY`, `ECR`, `SWAP`, …).
    pub two_qubit_gates: usize,
    /// Number of explicit `SWAP` gates (before basis translation).
    pub swap_gates: usize,
    /// Number of virtual gates (`Rz`, phases) that were excluded.
    pub virtual_gates: usize,
    /// Total instruction count including virtual gates.
    pub total_instructions: usize,
}

impl CircuitMetrics {
    /// Computes the metrics of a circuit.
    ///
    /// # Examples
    ///
    /// ```
    /// use enq_circuit::{CircuitMetrics, QuantumCircuit};
    ///
    /// let mut qc = QuantumCircuit::new(2);
    /// qc.sx(0).rz(0.3, 0).cx(0, 1);
    /// let m = CircuitMetrics::of(&qc);
    /// assert_eq!(m.total_gates, 2);
    /// assert_eq!(m.virtual_gates, 1);
    /// assert_eq!(m.depth, 2);
    /// ```
    pub fn of(circuit: &QuantumCircuit) -> Self {
        let physical = |inst: &crate::circuit::Instruction| !inst.gate.is_virtual();
        let depth = circuit.depth_filtered(physical);
        let total_gates = circuit.count_filtered(physical);
        let two_qubit_gates = circuit.count_filtered(|i| i.gate.is_two_qubit());
        let one_qubit_gates =
            circuit.count_filtered(|i| !i.gate.is_virtual() && !i.gate.is_two_qubit());
        let swap_gates = circuit.count_filtered(|i| matches!(i.gate, Gate::Swap));
        let virtual_gates = circuit.count_filtered(|i| i.gate.is_virtual());
        Self {
            depth,
            total_gates,
            one_qubit_gates,
            two_qubit_gates,
            swap_gates,
            virtual_gates,
            total_instructions: circuit.len(),
        }
    }
}

impl fmt::Display for CircuitMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "depth={} gates={} (1q={}, 2q={}, swap={}, virtual={})",
            self.depth,
            self.total_gates,
            self.one_qubit_gates,
            self.two_qubit_gates,
            self.swap_gates,
            self.virtual_gates
        )
    }
}

/// Mean / standard-deviation summary of a metric over a set of circuits.
///
/// Fig. 6 and Fig. 7 of the paper report exactly these aggregate statistics
/// across dataset samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

impl MetricStats {
    /// Computes summary statistics of a sequence of values.
    ///
    /// Returns all-zero statistics for an empty input.
    pub fn from_values(values: &[f64]) -> Self {
        if values.is_empty() {
            return Self::default();
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

impl fmt::Display for MetricStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.std_dev)
    }
}

/// Aggregated [`CircuitMetrics`] statistics over a collection of circuits.
#[derive(Debug, Clone, Default)]
pub struct MetricsSummary {
    /// Depth statistics.
    pub depth: MetricStats,
    /// Total physical gate count statistics.
    pub total_gates: MetricStats,
    /// Physical single-qubit gate count statistics.
    pub one_qubit_gates: MetricStats,
    /// Two-qubit gate count statistics.
    pub two_qubit_gates: MetricStats,
    /// SWAP count statistics.
    pub swap_gates: MetricStats,
    /// Number of circuits summarised.
    pub count: usize,
}

impl MetricsSummary {
    /// Summarises a slice of per-circuit metrics.
    pub fn from_metrics(metrics: &[CircuitMetrics]) -> Self {
        let collect = |f: &dyn Fn(&CircuitMetrics) -> f64| {
            MetricStats::from_values(&metrics.iter().map(f).collect::<Vec<_>>())
        };
        Self {
            depth: collect(&|m| m.depth as f64),
            total_gates: collect(&|m| m.total_gates as f64),
            one_qubit_gates: collect(&|m| m.one_qubit_gates as f64),
            two_qubit_gates: collect(&|m| m.two_qubit_gates as f64),
            swap_gates: collect(&|m| m.swap_gates as f64),
            count: metrics.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_exclude_virtual_gates() {
        let mut qc = QuantumCircuit::new(2);
        qc.rz(0.1, 0).rz(0.2, 1).sx(0).x(1).cx(0, 1).rz(0.3, 1);
        let m = CircuitMetrics::of(&qc);
        assert_eq!(m.virtual_gates, 3);
        assert_eq!(m.one_qubit_gates, 2);
        assert_eq!(m.two_qubit_gates, 1);
        assert_eq!(m.total_gates, 3);
        assert_eq!(m.total_instructions, 6);
        // sx(0) and x(1) are parallel, then cx: physical depth 2.
        assert_eq!(m.depth, 2);
    }

    #[test]
    fn swap_counted_as_two_qubit() {
        let mut qc = QuantumCircuit::new(2);
        qc.swap(0, 1);
        let m = CircuitMetrics::of(&qc);
        assert_eq!(m.swap_gates, 1);
        assert_eq!(m.two_qubit_gates, 1);
    }

    #[test]
    fn empty_circuit_has_zero_metrics() {
        let qc = QuantumCircuit::new(3);
        let m = CircuitMetrics::of(&qc);
        assert_eq!(m, CircuitMetrics::default());
    }

    #[test]
    fn metric_stats_mean_and_std() {
        let s = MetricStats::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn metric_stats_empty_is_zero() {
        let s = MetricStats::from_values(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_over_identical_circuits_has_zero_std() {
        let mut qc = QuantumCircuit::new(2);
        qc.sx(0).cx(0, 1);
        let m = CircuitMetrics::of(&qc);
        let summary = MetricsSummary::from_metrics(&[m, m, m]);
        assert_eq!(summary.count, 3);
        assert!(summary.depth.std_dev.abs() < 1e-12);
        assert!((summary.total_gates.mean - 2.0).abs() < 1e-12);
    }
}

//! The gate set.
//!
//! Includes the textbook single- and two-qubit gates, the IBM native basis
//! (`Rz`, `SX`, `X`, plus the entangler), and the `CY` gate that EnQode's
//! ansatz uses for entanglement.
//!
//! ## Matrix convention
//!
//! Two-qubit gate matrices are indexed little-endian over the gate's operand
//! list: for a gate applied to `[a, b]`, basis index `i = (bit_b << 1) | bit_a`.
//! The first operand of a controlled gate is the control. This matches the
//! convention used by qiskit and by the simulators in `enq-qsim`.

use crate::error::CircuitError;
use crate::param::Angle;
use enq_linalg::{CMatrix, C64};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_4};
use std::fmt;

/// A quantum gate, possibly with symbolic rotation angles.
///
/// # Examples
///
/// ```
/// use enq_circuit::Gate;
///
/// let g = Gate::Cx;
/// assert_eq!(g.num_qubits(), 2);
/// assert!(g.matrix().unwrap().is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Square-root of X (IBM native).
    Sx,
    /// Inverse square-root of X.
    Sxdg,
    /// Rotation about the X axis.
    Rx(Angle),
    /// Rotation about the Y axis.
    Ry(Angle),
    /// Rotation about the Z axis (virtual on IBM hardware).
    Rz(Angle),
    /// Phase rotation `diag(1, e^{iλ})` (virtual on IBM hardware).
    Phase(Angle),
    /// Controlled-X. First operand is the control.
    Cx,
    /// Controlled-Y. First operand is the control.
    Cy,
    /// Controlled-Z.
    Cz,
    /// SWAP gate.
    Swap,
    /// Echoed cross-resonance gate (IBM native entangler), locally equivalent
    /// to `Cx`.
    Ecr,
}

impl Gate {
    /// Returns the number of qubits the gate acts on.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::Cx | Gate::Cy | Gate::Cz | Gate::Swap | Gate::Ecr => 2,
            _ => 1,
        }
    }

    /// Returns `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        self.num_qubits() == 2
    }

    /// Returns the lowercase gate name.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sxdg => "sxdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::Cx => "cx",
            Gate::Cy => "cy",
            Gate::Cz => "cz",
            Gate::Swap => "swap",
            Gate::Ecr => "ecr",
        }
    }

    /// Returns `true` if the gate is implemented virtually (as a software
    /// frame change) on IBM hardware, and therefore contributes neither error
    /// nor depth. These gates are excluded from the paper's circuit metrics.
    pub fn is_virtual(&self) -> bool {
        matches!(
            self,
            Gate::I
                | Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::Phase(_)
        )
    }

    /// Returns `true` if any angle of the gate is still symbolic.
    pub fn is_parameterized(&self) -> bool {
        match self {
            Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::Phase(a) => a.is_parameterized(),
            _ => false,
        }
    }

    /// Returns the trainable-parameter index used by the gate, if any.
    pub fn parameter_index(&self) -> Option<usize> {
        match self {
            Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::Phase(a) => a.parameter_index(),
            _ => None,
        }
    }

    /// Binds any symbolic angle against the supplied parameter vector.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] if a referenced parameter is
    /// missing from `values`.
    pub fn bind(&self, values: &[f64]) -> Result<Gate, CircuitError> {
        Ok(match self {
            Gate::Rx(a) => Gate::Rx(Angle::fixed(a.bind(values)?)),
            Gate::Ry(a) => Gate::Ry(Angle::fixed(a.bind(values)?)),
            Gate::Rz(a) => Gate::Rz(Angle::fixed(a.bind(values)?)),
            Gate::Phase(a) => Gate::Phase(Angle::fixed(a.bind(values)?)),
            other => *other,
        })
    }

    /// Returns the adjoint (inverse) gate.
    pub fn adjoint(&self) -> Gate {
        match *self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Sx => Gate::Sxdg,
            Gate::Sxdg => Gate::Sx,
            Gate::Rx(a) => Gate::Rx(negate_angle(a)),
            Gate::Ry(a) => Gate::Ry(negate_angle(a)),
            Gate::Rz(a) => Gate::Rz(negate_angle(a)),
            Gate::Phase(a) => Gate::Phase(negate_angle(a)),
            other => other,
        }
    }

    /// Returns the gate's unitary matrix.
    ///
    /// Two-qubit matrices follow the little-endian operand convention
    /// described at the module level.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] if the gate still has a
    /// symbolic angle.
    pub fn matrix(&self) -> Result<CMatrix, CircuitError> {
        let z = C64::ZERO;
        let one = C64::ONE;
        let i = C64::I;
        let m = match self {
            Gate::I => CMatrix::identity(2),
            Gate::X => CMatrix::from_rows(&[&[z, one], &[one, z]]),
            Gate::Y => CMatrix::from_rows(&[&[z, -i], &[i, z]]),
            Gate::Z => CMatrix::from_rows(&[&[one, z], &[z, -one]]),
            Gate::H => {
                CMatrix::from_rows(&[&[one, one], &[one, -one]]).scale(C64::real(FRAC_1_SQRT_2))
            }
            Gate::S => CMatrix::from_diagonal(&[one, i]),
            Gate::Sdg => CMatrix::from_diagonal(&[one, -i]),
            Gate::T => CMatrix::from_diagonal(&[one, C64::cis(FRAC_PI_4)]),
            Gate::Tdg => CMatrix::from_diagonal(&[one, C64::cis(-FRAC_PI_4)]),
            Gate::Sx => CMatrix::from_rows(&[
                &[C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
                &[C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
            ]),
            Gate::Sxdg => CMatrix::from_rows(&[
                &[C64::new(0.5, -0.5), C64::new(0.5, 0.5)],
                &[C64::new(0.5, 0.5), C64::new(0.5, -0.5)],
            ]),
            Gate::Rx(a) => {
                let t = a.bind(&[]).map_err(|_| unbound(a))?;
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                CMatrix::from_rows(&[
                    &[C64::real(c), C64::new(0.0, -s)],
                    &[C64::new(0.0, -s), C64::real(c)],
                ])
            }
            Gate::Ry(a) => {
                let t = a.bind(&[]).map_err(|_| unbound(a))?;
                let (c, s) = ((t / 2.0).cos(), (t / 2.0).sin());
                CMatrix::from_rows(&[
                    &[C64::real(c), C64::real(-s)],
                    &[C64::real(s), C64::real(c)],
                ])
            }
            Gate::Rz(a) => {
                let t = a.bind(&[]).map_err(|_| unbound(a))?;
                CMatrix::from_diagonal(&[C64::cis(-t / 2.0), C64::cis(t / 2.0)])
            }
            Gate::Phase(a) => {
                let t = a.bind(&[]).map_err(|_| unbound(a))?;
                CMatrix::from_diagonal(&[one, C64::cis(t)])
            }
            Gate::Cx => CMatrix::from_rows(&[
                &[one, z, z, z],
                &[z, z, z, one],
                &[z, z, one, z],
                &[z, one, z, z],
            ]),
            Gate::Cy => CMatrix::from_rows(&[
                &[one, z, z, z],
                &[z, z, z, -i],
                &[z, z, one, z],
                &[z, i, z, z],
            ]),
            Gate::Cz => CMatrix::from_diagonal(&[one, one, one, -one]),
            Gate::Swap => CMatrix::from_rows(&[
                &[one, z, z, z],
                &[z, z, one, z],
                &[z, one, z, z],
                &[z, z, z, one],
            ]),
            Gate::Ecr => CMatrix::from_rows(&[
                &[z, one, z, i],
                &[one, z, -i, z],
                &[z, i, z, one],
                &[-i, z, one, z],
            ])
            .scale(C64::real(FRAC_1_SQRT_2)),
        };
        Ok(m)
    }
}

/// Negates an angle expression (used for gate adjoints).
fn negate_angle(a: Angle) -> Angle {
    match a {
        Angle::Fixed(v) => Angle::Fixed(-v),
        Angle::Expr {
            index,
            sign,
            offset,
        } => Angle::Expr {
            index,
            sign: -sign,
            offset: -offset,
        },
    }
}

fn unbound(a: &Angle) -> CircuitError {
    CircuitError::UnboundParameter {
        index: a.parameter_index().unwrap_or(usize::MAX),
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(a) | Gate::Ry(a) | Gate::Rz(a) | Gate::Phase(a) => {
                write!(f, "{}({})", self.name(), a)
            }
            _ => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn all_fixed_gates() -> Vec<Gate> {
        vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sxdg,
            Gate::Rx(Angle::fixed(0.3)),
            Gate::Ry(Angle::fixed(-1.1)),
            Gate::Rz(Angle::fixed(2.2)),
            Gate::Phase(Angle::fixed(0.7)),
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Swap,
            Gate::Ecr,
        ]
    }

    #[test]
    fn all_gate_matrices_are_unitary() {
        for g in all_fixed_gates() {
            let m = g.matrix().unwrap();
            assert!(m.is_unitary(1e-10), "{} is not unitary", g.name());
            assert_eq!(m.nrows(), 1 << g.num_qubits());
        }
    }

    #[test]
    fn adjoint_matrices_invert() {
        for g in all_fixed_gates() {
            let m = g.matrix().unwrap();
            let md = g.adjoint().matrix().unwrap();
            let id = CMatrix::identity(m.nrows());
            assert!(
                m.matmul(&md).approx_eq(&id, 1e-10),
                "{} adjoint is not its inverse",
                g.name()
            );
        }
    }

    #[test]
    fn sx_squares_to_x() {
        let sx = Gate::Sx.matrix().unwrap();
        let x = Gate::X.matrix().unwrap();
        assert!(sx.matmul(&sx).approx_eq(&x, 1e-12));
    }

    #[test]
    fn rz_is_virtual_but_sx_is_not() {
        assert!(Gate::Rz(Angle::fixed(1.0)).is_virtual());
        assert!(Gate::Z.is_virtual());
        assert!(Gate::S.is_virtual());
        assert!(!Gate::Sx.is_virtual());
        assert!(!Gate::X.is_virtual());
        assert!(!Gate::Cx.is_virtual());
    }

    #[test]
    fn cy_acts_correctly_on_basis_states() {
        // CY with control = operand 0 (LSB). Index 1 = control set, target 0.
        let cy = Gate::Cy.matrix().unwrap();
        // |c=1,t=0⟩ (index 1) → i|c=1,t=1⟩ (index 3)
        assert!(cy[(3, 1)].approx_eq(C64::I, 1e-12));
        // |c=1,t=1⟩ (index 3) → -i|c=1,t=0⟩ (index 1)
        assert!(cy[(1, 3)].approx_eq(-C64::I, 1e-12));
        // control clear: identity
        assert!(cy[(0, 0)].approx_eq(C64::ONE, 1e-12));
        assert!(cy[(2, 2)].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn cy_equals_s_conjugated_cx() {
        // CY = (I⊗S) CX (I⊗S†) with S on the target (operand 1, high bit).
        let s_t = Gate::S.matrix().unwrap().kron(&CMatrix::identity(2));
        let sdg_t = Gate::Sdg.matrix().unwrap().kron(&CMatrix::identity(2));
        let cx = Gate::Cx.matrix().unwrap();
        let cy = Gate::Cy.matrix().unwrap();
        assert!(s_t.matmul(&cx).matmul(&sdg_t).approx_eq(&cy, 1e-12));
    }

    #[test]
    fn rotation_composition() {
        let a = Gate::Rz(Angle::fixed(0.4)).matrix().unwrap();
        let b = Gate::Rz(Angle::fixed(0.6)).matrix().unwrap();
        let ab = Gate::Rz(Angle::fixed(1.0)).matrix().unwrap();
        assert!(a.matmul(&b).approx_eq(&ab, 1e-12));
    }

    #[test]
    fn rx_pi_is_x_up_to_phase() {
        let rx = Gate::Rx(Angle::fixed(PI)).matrix().unwrap();
        let x = Gate::X.matrix().unwrap().scale(-C64::I);
        assert!(rx.approx_eq(&x, 1e-12));
    }

    #[test]
    fn parameterized_gate_reports_and_binds() {
        let g = Gate::Rz(Angle::parameter(2));
        assert!(g.is_parameterized());
        assert_eq!(g.parameter_index(), Some(2));
        assert!(g.matrix().is_err());
        let bound = g.bind(&[0.0, 0.0, 1.5]).unwrap();
        assert!(!bound.is_parameterized());
        assert!(bound.matrix().is_ok());
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Gate::Cx.name(), "cx");
        assert_eq!(Gate::Rz(Angle::fixed(0.0)).name(), "rz");
        assert_eq!(Gate::Ecr.name(), "ecr");
        assert_eq!(format!("{}", Gate::Cy), "cy");
    }

    #[test]
    fn swap_matrix_swaps() {
        let sw = Gate::Swap.matrix().unwrap();
        // |01⟩ (index 1: q0=1,q1=0) → |10⟩ (index 2)
        assert!(sw[(2, 1)].approx_eq(C64::ONE, 1e-12));
        assert!(sw[(1, 2)].approx_eq(C64::ONE, 1e-12));
    }
}

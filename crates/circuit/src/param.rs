//! Symbolic rotation angles.
//!
//! EnQode's ansatz is a parameterised circuit: the `Rz` rotation angles stay
//! symbolic until a particular sample (or cluster mean) has been optimised.
//! [`Angle`] is the small expression type used for those rotation parameters —
//! either a fixed value or a reference to the `i`-th trainable parameter,
//! optionally negated or offset, which is all the EnQode ansatz and the
//! Baseline need.

use crate::error::CircuitError;
use std::fmt;

/// A rotation angle that is either bound to a value or refers to a trainable
/// parameter `θ_i` via an affine expression `sign·θ_i + offset`.
///
/// # Examples
///
/// ```
/// use enq_circuit::Angle;
///
/// let a = Angle::parameter(2);
/// assert_eq!(a.bind(&[0.0, 0.0, 1.5]).unwrap(), 1.5);
/// let b = Angle::fixed(0.25);
/// assert_eq!(b.bind(&[]).unwrap(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Angle {
    /// A concrete angle in radians.
    Fixed(f64),
    /// An affine function of one trainable parameter: `sign·θ[index] + offset`.
    Expr {
        /// Index into the parameter vector.
        index: usize,
        /// Multiplier, typically `±1`.
        sign: f64,
        /// Constant offset in radians.
        offset: f64,
    },
}

impl Angle {
    /// Creates a fixed angle.
    pub fn fixed(value: f64) -> Self {
        Angle::Fixed(value)
    }

    /// Creates an angle bound to trainable parameter `index`.
    pub fn parameter(index: usize) -> Self {
        Angle::Expr {
            index,
            sign: 1.0,
            offset: 0.0,
        }
    }

    /// Creates an affine angle `sign·θ[index] + offset`.
    pub fn affine(index: usize, sign: f64, offset: f64) -> Self {
        Angle::Expr {
            index,
            sign,
            offset,
        }
    }

    /// Returns `true` if the angle still references a parameter.
    pub fn is_parameterized(&self) -> bool {
        matches!(self, Angle::Expr { .. })
    }

    /// Returns the parameter index if the angle is symbolic.
    pub fn parameter_index(&self) -> Option<usize> {
        match self {
            Angle::Fixed(_) => None,
            Angle::Expr { index, .. } => Some(*index),
        }
    }

    /// Evaluates the angle against a parameter vector.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::UnboundParameter`] if the referenced parameter
    /// index is out of range of `values`.
    pub fn bind(&self, values: &[f64]) -> Result<f64, CircuitError> {
        match *self {
            Angle::Fixed(v) => Ok(v),
            Angle::Expr {
                index,
                sign,
                offset,
            } => values
                .get(index)
                .map(|&v| sign * v + offset)
                .ok_or(CircuitError::UnboundParameter { index }),
        }
    }

    /// Returns the fixed value, if bound.
    pub fn as_fixed(&self) -> Option<f64> {
        match self {
            Angle::Fixed(v) => Some(*v),
            Angle::Expr { .. } => None,
        }
    }
}

impl From<f64> for Angle {
    fn from(value: f64) -> Self {
        Angle::Fixed(value)
    }
}

impl fmt::Display for Angle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Angle::Fixed(v) => write!(f, "{v:.6}"),
            Angle::Expr {
                index,
                sign,
                offset,
            } => {
                if *sign == 1.0 && *offset == 0.0 {
                    write!(f, "θ[{index}]")
                } else {
                    write!(f, "{sign}·θ[{index}]+{offset}")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_binds_to_itself() {
        assert_eq!(Angle::fixed(1.25).bind(&[]).unwrap(), 1.25);
        assert!(!Angle::fixed(1.25).is_parameterized());
        assert_eq!(Angle::from(2.0).as_fixed(), Some(2.0));
    }

    #[test]
    fn parameter_binds_from_vector() {
        let a = Angle::parameter(1);
        assert!(a.is_parameterized());
        assert_eq!(a.parameter_index(), Some(1));
        assert_eq!(a.bind(&[0.5, 2.5]).unwrap(), 2.5);
    }

    #[test]
    fn affine_expression_applies_sign_and_offset() {
        let a = Angle::affine(0, -1.0, std::f64::consts::PI);
        let v = a.bind(&[0.5]).unwrap();
        assert!((v - (std::f64::consts::PI - 0.5)).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_parameter_errors() {
        let a = Angle::parameter(3);
        assert!(matches!(
            a.bind(&[1.0]),
            Err(CircuitError::UnboundParameter { index: 3 })
        ));
    }

    #[test]
    fn display_mentions_parameter() {
        assert_eq!(Angle::parameter(4).to_string(), "θ[4]");
        assert!(Angle::fixed(0.5).to_string().starts_with("0.5"));
    }
}

//! # enq-circuit
//!
//! Quantum-circuit intermediate representation, device topologies, SWAP
//! routing, and IBM-native-basis transpilation for the EnQode reproduction.
//!
//! The crate provides everything the paper's methodology needs on the circuit
//! side:
//!
//! * a gate set including the IBM basis (`Rz`, `SX`, `X`, entangler) and the
//!   `CY` gate used by EnQode's ansatz ([`Gate`]),
//! * a circuit builder with parameterised rotations ([`QuantumCircuit`],
//!   [`Angle`]),
//! * heavy-hexagonal and linear device topologies ([`Topology`]),
//! * a "level 0" transpiler: SWAP routing plus native-basis translation
//!   ([`Transpiler`]),
//! * the circuit cost metrics the paper reports (depth and physical gate
//!   counts excluding virtual `Rz`, [`CircuitMetrics`]).
//!
//! ## Example
//!
//! ```
//! use enq_circuit::{QuantumCircuit, Topology, Transpiler};
//!
//! // Build a small entangling circuit and transpile it onto an
//! // ibm_brisbane-like heavy-hex device.
//! let mut qc = QuantumCircuit::new(4);
//! qc.rx(-std::f64::consts::FRAC_PI_2, 0);
//! qc.cy(0, 1).cy(2, 3).cy(1, 2);
//! let out = Transpiler::new(Topology::ibm_brisbane_like()).transpile(&qc)?;
//! assert_eq!(out.metrics.two_qubit_gates, 3);
//! # Ok::<(), enq_circuit::CircuitError>(())
//! ```

#![warn(missing_docs)]

mod basis;
mod circuit;
mod error;
mod gate;
mod layout;
mod metrics;
mod param;
mod routing;
mod topology;
mod transpile;

pub use basis::{decompose_1q, is_native, translate_to_native, zyz_angles, ZyzAngles};
pub use circuit::{Instruction, QuantumCircuit};
pub use error::CircuitError;
pub use gate::Gate;
pub use layout::Layout;
pub use metrics::{CircuitMetrics, MetricStats, MetricsSummary};
pub use param::Angle;
pub use routing::{route, RoutedCircuit};
pub use topology::Topology;
pub use transpile::{TranspileOptions, TranspiledCircuit, Transpiler};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Strategy producing a random small circuit on `n` qubits.
    fn arb_circuit(n: usize, max_len: usize) -> impl Strategy<Value = QuantumCircuit> {
        let gate_choice = 0..8u8;
        proptest::collection::vec((gate_choice, 0..n, 0..n, -3.0..3.0f64), 1..max_len).prop_map(
            move |ops| {
                let mut qc = QuantumCircuit::new(n);
                for (kind, a, b, angle) in ops {
                    let b = if a == b { (b + 1) % n } else { b };
                    match kind {
                        0 => {
                            qc.h(a);
                        }
                        1 => {
                            qc.x(a);
                        }
                        2 => {
                            qc.rz(angle, a);
                        }
                        3 => {
                            qc.ry(angle, a);
                        }
                        4 => {
                            qc.cx(a, b);
                        }
                        5 => {
                            qc.cy(a, b);
                        }
                        6 => {
                            qc.cz(a, b);
                        }
                        _ => {
                            qc.rx(angle, a);
                        }
                    }
                }
                qc
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn circuit_unitary_is_always_unitary(qc in arb_circuit(3, 12)) {
            let u = qc.unitary().unwrap();
            prop_assert!(u.is_unitary(1e-8));
        }

        #[test]
        fn inverse_restores_identity(qc in arb_circuit(3, 10)) {
            let mut total = qc.clone();
            total.compose(&qc.inverse()).unwrap();
            let u = total.unitary().unwrap();
            prop_assert!(u.approx_eq(&enq_linalg::CMatrix::identity(8), 1e-8));
        }

        #[test]
        fn native_translation_preserves_state(qc in arb_circuit(3, 10)) {
            let native = translate_to_native(&qc).unwrap();
            prop_assert!(is_native(&native));
            let a = qc.statevector_from_zero().unwrap();
            let b = native.statevector_from_zero().unwrap();
            prop_assert!(a.approx_eq_up_to_phase(&b, 1e-7));
        }

        #[test]
        fn routing_never_reduces_two_qubit_gate_count(qc in arb_circuit(4, 12)) {
            let topo = Topology::linear(4);
            let routed = route(&qc, &topo, Layout::trivial(4, 4).unwrap()).unwrap();
            let before = qc.count_filtered(|i| i.gate.is_two_qubit());
            let after = routed.circuit.count_filtered(|i| i.gate.is_two_qubit());
            prop_assert!(after >= before);
            prop_assert_eq!(after - before, routed.swap_count);
        }

        #[test]
        fn transpiled_circuits_are_native_and_routed(qc in arb_circuit(4, 10)) {
            let topo = Topology::linear(6);
            let t = Transpiler::new(topo.clone());
            let out = t.transpile(&qc).unwrap();
            prop_assert!(is_native(&out.circuit));
            for inst in out.circuit.iter() {
                if inst.gate.is_two_qubit() {
                    prop_assert!(topo.are_connected(inst.qubits[0], inst.qubits[1]));
                }
            }
        }

        #[test]
        fn depth_monotone_under_composition(qc in arb_circuit(3, 8)) {
            let mut doubled = qc.clone();
            doubled.compose(&qc).unwrap();
            prop_assert!(doubled.depth() >= qc.depth());
            prop_assert_eq!(doubled.len(), qc.len() * 2);
        }
    }
}

//! Device connectivity graphs.
//!
//! EnQode maps its ansatz onto the *linear section* of IBM's heavy-hexagonal
//! lattice so that the alternating `CY` entangler needs no SWAP insertion.
//! The Baseline is routed onto the same topology, which is where its SWAP
//! overhead (and much of its depth) comes from.

use crate::error::CircuitError;
use std::collections::{BTreeSet, VecDeque};

/// An undirected device coupling graph.
///
/// # Examples
///
/// ```
/// use enq_circuit::Topology;
///
/// let line = Topology::linear(5);
/// assert!(line.are_connected(1, 2));
/// assert!(!line.are_connected(0, 4));
/// assert_eq!(line.shortest_path(0, 4).unwrap().len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    num_qubits: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl Topology {
    /// Creates a topology from an explicit edge list.
    ///
    /// Edges are stored undirected; self-loops are ignored.
    pub fn from_edges(num_qubits: usize, edges: &[(usize, usize)]) -> Result<Self, CircuitError> {
        let mut set = BTreeSet::new();
        for &(a, b) in edges {
            if a >= num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: a,
                    num_qubits,
                });
            }
            if b >= num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: b,
                    num_qubits,
                });
            }
            if a != b {
                set.insert((a.min(b), a.max(b)));
            }
        }
        Ok(Self {
            num_qubits,
            edges: set,
        })
    }

    /// Creates a linear chain `0—1—…—(n-1)`.
    pub fn linear(num_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..num_qubits).map(|i| (i - 1, i)).collect();
        Self::from_edges(num_qubits, &edges).expect("linear edges are always valid")
    }

    /// Creates a ring of `n` qubits.
    pub fn ring(num_qubits: usize) -> Self {
        let mut edges: Vec<(usize, usize)> = (1..num_qubits).map(|i| (i - 1, i)).collect();
        if num_qubits > 2 {
            edges.push((num_qubits - 1, 0));
        }
        Self::from_edges(num_qubits, &edges).expect("ring edges are always valid")
    }

    /// Creates a rectangular grid of `rows × cols` qubits.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut edges = Vec::new();
        let idx = |r: usize, c: usize| r * cols + c;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((idx(r, c), idx(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((idx(r, c), idx(r + 1, c)));
                }
            }
        }
        Self::from_edges(rows * cols, &edges).expect("grid edges are always valid")
    }

    /// Creates a heavy-hexagonal lattice in the style of IBM's large devices.
    ///
    /// The lattice consists of `rows` horizontal chains of `row_len` qubits
    /// each, with bridge qubits connecting every fourth column of adjacent
    /// rows (offset by two columns on alternating rows), giving the
    /// characteristic degree-≤3 "heavy-hex" structure.
    pub fn heavy_hex(rows: usize, row_len: usize) -> Self {
        let mut edges = Vec::new();
        let row_base = |r: usize| r * row_len;
        // Horizontal chains.
        for r in 0..rows {
            for c in 1..row_len {
                edges.push((row_base(r) + c - 1, row_base(r) + c));
            }
        }
        // Bridge qubits sit after all row qubits.
        let mut next_bridge = rows * row_len;
        let mut num_qubits = rows * row_len;
        for r in 0..rows.saturating_sub(1) {
            let offset = if r % 2 == 0 { 0 } else { 2 };
            let mut c = offset;
            while c < row_len {
                let top = row_base(r) + c;
                let bottom = row_base(r + 1) + c;
                edges.push((top, next_bridge));
                edges.push((next_bridge, bottom));
                next_bridge += 1;
                num_qubits += 1;
                c += 4;
            }
        }
        Self::from_edges(num_qubits, &edges).expect("heavy-hex edges are always valid")
    }

    /// Creates a heavy-hex lattice with a size comparable to IBM's 127-qubit
    /// Eagle devices (`ibm_brisbane` and friends).
    pub fn ibm_brisbane_like() -> Self {
        // 7 rows of 15 qubits plus bridges ≈ 127 qubits.
        Self::heavy_hex(7, 15)
    }

    /// Returns the number of physical qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns an iterator over the undirected edges.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Returns `true` if the two physical qubits share an edge.
    pub fn are_connected(&self, a: usize, b: usize) -> bool {
        self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Returns the neighbours of a physical qubit.
    pub fn neighbors(&self, q: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == q {
                    Some(b)
                } else if b == q {
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Returns the degree of a physical qubit.
    pub fn degree(&self, q: usize) -> usize {
        self.neighbors(q).len()
    }

    /// Returns the shortest path (inclusive of both endpoints) between two
    /// physical qubits, found with breadth-first search.
    ///
    /// Returns `None` if the qubits are disconnected or out of range.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        if from >= self.num_qubits || to >= self.num_qubits {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut prev = vec![usize::MAX; self.num_qubits];
        let mut visited = vec![false; self.num_qubits];
        let mut queue = VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            for nb in self.neighbors(cur) {
                if !visited[nb] {
                    visited[nb] = true;
                    prev[nb] = cur;
                    if nb == to {
                        let mut path = vec![to];
                        let mut node = to;
                        while prev[node] != usize::MAX {
                            node = prev[node];
                            path.push(node);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(nb);
                }
            }
        }
        None
    }

    /// Returns the graph distance (number of edges) between two qubits, or
    /// `None` if disconnected.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        self.shortest_path(a, b).map(|p| p.len() - 1)
    }

    /// Finds a simple path of `len` physical qubits (a "linear section"), used
    /// to place EnQode's ansatz without any SWAP overhead.
    ///
    /// Returns `None` if no such path exists.
    pub fn linear_section(&self, len: usize) -> Option<Vec<usize>> {
        if len == 0 {
            return Some(Vec::new());
        }
        if len > self.num_qubits {
            return None;
        }
        // Depth-first search for a simple path, trying every start qubit.
        for start in 0..self.num_qubits {
            let mut path = vec![start];
            let mut on_path = vec![false; self.num_qubits];
            on_path[start] = true;
            if self.extend_path(&mut path, &mut on_path, len) {
                return Some(path);
            }
        }
        None
    }

    fn extend_path(&self, path: &mut Vec<usize>, on_path: &mut [bool], len: usize) -> bool {
        if path.len() == len {
            return true;
        }
        let last = *path.last().expect("path is never empty here");
        for nb in self.neighbors(last) {
            if !on_path[nb] {
                path.push(nb);
                on_path[nb] = true;
                if self.extend_path(path, on_path, len) {
                    return true;
                }
                path.pop();
                on_path[nb] = false;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_topology_structure() {
        let t = Topology::linear(5);
        assert_eq!(t.num_qubits(), 5);
        assert_eq!(t.num_edges(), 4);
        assert!(t.are_connected(0, 1));
        assert!(!t.are_connected(0, 2));
        assert_eq!(t.degree(0), 1);
        assert_eq!(t.degree(2), 2);
    }

    #[test]
    fn ring_topology_wraps_around() {
        let t = Topology::ring(6);
        assert!(t.are_connected(5, 0));
        assert_eq!(t.num_edges(), 6);
        assert_eq!(t.distance(0, 3), Some(3));
    }

    #[test]
    fn grid_topology_distances() {
        let t = Topology::grid(3, 3);
        assert_eq!(t.num_qubits(), 9);
        assert_eq!(t.distance(0, 8), Some(4));
        assert!(t.are_connected(4, 5));
        assert!(!t.are_connected(0, 4));
    }

    #[test]
    fn shortest_path_endpoints() {
        let t = Topology::linear(6);
        let p = t.shortest_path(1, 4).unwrap();
        assert_eq!(p, vec![1, 2, 3, 4]);
        assert_eq!(t.shortest_path(2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn disconnected_qubits_have_no_path() {
        let t = Topology::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(t.shortest_path(0, 3), None);
        assert_eq!(t.distance(1, 2), None);
    }

    #[test]
    fn invalid_edges_rejected() {
        assert!(Topology::from_edges(2, &[(0, 5)]).is_err());
    }

    #[test]
    fn heavy_hex_has_low_degree() {
        let t = Topology::heavy_hex(4, 9);
        assert!(t.num_qubits() > 36);
        for q in 0..t.num_qubits() {
            assert!(t.degree(q) <= 3, "qubit {q} has degree {}", t.degree(q));
        }
    }

    #[test]
    fn brisbane_like_size_and_linear_section() {
        let t = Topology::ibm_brisbane_like();
        assert!(t.num_qubits() >= 120, "got {}", t.num_qubits());
        // EnQode needs an 8-qubit linear section with no SWAPs.
        let section = t.linear_section(8).unwrap();
        assert_eq!(section.len(), 8);
        for pair in section.windows(2) {
            assert!(t.are_connected(pair[0], pair[1]));
        }
        // All distinct.
        let set: BTreeSet<usize> = section.iter().copied().collect();
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn linear_section_too_long_fails() {
        let t = Topology::linear(4);
        assert!(t.linear_section(5).is_none());
        assert_eq!(t.linear_section(4).unwrap().len(), 4);
    }
}

//! Logical-to-physical qubit layouts.

use crate::error::CircuitError;

/// A bijective mapping from logical circuit qubits to physical device qubits.
///
/// # Examples
///
/// ```
/// use enq_circuit::Layout;
///
/// let layout = Layout::from_physical(&[5, 6, 7], 10)?;
/// assert_eq!(layout.physical(1), 6);
/// assert_eq!(layout.logical(7), Some(2));
/// # Ok::<(), enq_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// `logical_to_physical[l]` is the physical qubit hosting logical qubit `l`.
    logical_to_physical: Vec<usize>,
    /// `physical_to_logical[p]` is the logical qubit on physical qubit `p`, if any.
    physical_to_logical: Vec<Option<usize>>,
}

impl Layout {
    /// Creates the trivial layout `l ↦ l` on a device of `device_size` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DeviceTooSmall`] if the device has fewer than
    /// `num_logical` qubits.
    pub fn trivial(num_logical: usize, device_size: usize) -> Result<Self, CircuitError> {
        let assignment: Vec<usize> = (0..num_logical).collect();
        Self::from_physical(&assignment, device_size)
    }

    /// Creates a layout from an explicit list of physical qubits, one per
    /// logical qubit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DeviceTooSmall`] if the device cannot host the
    /// logical register and [`CircuitError::QubitOutOfRange`] or
    /// [`CircuitError::DuplicateQubit`] for invalid assignments.
    pub fn from_physical(assignment: &[usize], device_size: usize) -> Result<Self, CircuitError> {
        if assignment.len() > device_size {
            return Err(CircuitError::DeviceTooSmall {
                required: assignment.len(),
                available: device_size,
            });
        }
        let mut physical_to_logical = vec![None; device_size];
        for (logical, &physical) in assignment.iter().enumerate() {
            if physical >= device_size {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: physical,
                    num_qubits: device_size,
                });
            }
            if physical_to_logical[physical].is_some() {
                return Err(CircuitError::DuplicateQubit { qubit: physical });
            }
            physical_to_logical[physical] = Some(logical);
        }
        Ok(Self {
            logical_to_physical: assignment.to_vec(),
            physical_to_logical,
        })
    }

    /// Returns the number of logical qubits.
    pub fn num_logical(&self) -> usize {
        self.logical_to_physical.len()
    }

    /// Returns the number of physical qubits on the device.
    pub fn device_size(&self) -> usize {
        self.physical_to_logical.len()
    }

    /// Returns the physical qubit hosting logical qubit `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is not a valid logical qubit.
    pub fn physical(&self, l: usize) -> usize {
        self.logical_to_physical[l]
    }

    /// Returns the logical qubit on physical qubit `p`, if occupied.
    pub fn logical(&self, p: usize) -> Option<usize> {
        self.physical_to_logical.get(p).copied().flatten()
    }

    /// Returns the full logical-to-physical assignment.
    pub fn as_slice(&self) -> &[usize] {
        &self.logical_to_physical
    }

    /// Swaps whatever occupies physical qubits `a` and `b` (used when a SWAP
    /// gate is routed).
    ///
    /// # Panics
    ///
    /// Panics if either physical qubit is out of range.
    pub fn swap_physical(&mut self, a: usize, b: usize) {
        let la = self.physical_to_logical[a];
        let lb = self.physical_to_logical[b];
        self.physical_to_logical[a] = lb;
        self.physical_to_logical[b] = la;
        if let Some(l) = la {
            self.logical_to_physical[l] = b;
        }
        if let Some(l) = lb {
            self.logical_to_physical[l] = a;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_layout_is_identity() {
        let l = Layout::trivial(3, 5).unwrap();
        assert_eq!(l.physical(0), 0);
        assert_eq!(l.physical(2), 2);
        assert_eq!(l.logical(2), Some(2));
        assert_eq!(l.logical(4), None);
        assert_eq!(l.num_logical(), 3);
        assert_eq!(l.device_size(), 5);
    }

    #[test]
    fn custom_layout_maps_both_ways() {
        let l = Layout::from_physical(&[4, 2, 0], 5).unwrap();
        assert_eq!(l.physical(0), 4);
        assert_eq!(l.logical(4), Some(0));
        assert_eq!(l.logical(2), Some(1));
        assert_eq!(l.logical(1), None);
    }

    #[test]
    fn invalid_layouts_rejected() {
        assert!(Layout::from_physical(&[0, 0], 4).is_err());
        assert!(Layout::from_physical(&[9], 4).is_err());
        assert!(Layout::trivial(5, 3).is_err());
    }

    #[test]
    fn swap_physical_updates_both_maps() {
        let mut l = Layout::from_physical(&[0, 1], 3).unwrap();
        l.swap_physical(1, 2);
        assert_eq!(l.physical(1), 2);
        assert_eq!(l.logical(2), Some(1));
        assert_eq!(l.logical(1), None);
        // Swapping two empty/occupied mixes still consistent.
        l.swap_physical(0, 1);
        assert_eq!(l.physical(0), 1);
        assert_eq!(l.logical(0), None);
    }
}

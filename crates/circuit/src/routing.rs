//! SWAP-insertion routing onto a device topology.
//!
//! The router mirrors what a "transpilation optimisation level 0" pass does:
//! it keeps the initial layout, and whenever a two-qubit gate acts on
//! physical qubits that are not adjacent it walks one operand along the
//! shortest path with SWAP gates. No re-synthesis or commutation analysis is
//! performed, exactly as in the paper's methodology (which disables such
//! optimisations to avoid confounding factors).

use crate::circuit::{Instruction, QuantumCircuit};
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::layout::Layout;
use crate::topology::Topology;

/// The result of routing a logical circuit onto a device.
#[derive(Debug, Clone)]
pub struct RoutedCircuit {
    /// The routed circuit, expressed on physical qubits.
    pub circuit: QuantumCircuit,
    /// The layout after all routing SWAPs have been applied.
    pub final_layout: Layout,
    /// Number of SWAP gates inserted.
    pub swap_count: usize,
}

/// Routes `circuit` onto `topology`, starting from `initial_layout`.
///
/// # Errors
///
/// Returns [`CircuitError::DeviceTooSmall`] if the device cannot host the
/// circuit, and [`CircuitError::NotConnected`] if two operands of a gate lie
/// in different connected components of the topology.
///
/// # Examples
///
/// ```
/// use enq_circuit::{route, Layout, QuantumCircuit, Topology};
///
/// let mut qc = QuantumCircuit::new(3);
/// qc.cx(0, 2); // not adjacent on a line
/// let topo = Topology::linear(3);
/// let layout = Layout::trivial(3, 3)?;
/// let routed = route(&qc, &topo, layout)?;
/// assert_eq!(routed.swap_count, 1);
/// # Ok::<(), enq_circuit::CircuitError>(())
/// ```
pub fn route(
    circuit: &QuantumCircuit,
    topology: &Topology,
    initial_layout: Layout,
) -> Result<RoutedCircuit, CircuitError> {
    if circuit.num_qubits() > topology.num_qubits() {
        return Err(CircuitError::DeviceTooSmall {
            required: circuit.num_qubits(),
            available: topology.num_qubits(),
        });
    }
    if initial_layout.num_logical() < circuit.num_qubits() {
        return Err(CircuitError::DeviceTooSmall {
            required: circuit.num_qubits(),
            available: initial_layout.num_logical(),
        });
    }

    let mut layout = initial_layout;
    let mut routed = QuantumCircuit::new(topology.num_qubits());
    let mut swap_count = 0usize;

    for Instruction { gate, qubits } in circuit.iter() {
        match qubits.len() {
            1 => {
                let p = layout.physical(qubits[0]);
                routed.append(*gate, &[p])?;
            }
            2 => {
                let mut pa = layout.physical(qubits[0]);
                let pb = layout.physical(qubits[1]);
                if !topology.are_connected(pa, pb) {
                    let path = topology
                        .shortest_path(pa, pb)
                        .ok_or(CircuitError::NotConnected { a: pa, b: pb })?;
                    // Walk the first operand along the path until adjacent to pb.
                    // path = [pa, x1, x2, ..., pb]; swap pa with x1, x1 with x2, ...
                    for window in path.windows(2).take(path.len().saturating_sub(2)) {
                        let (from, to) = (window[0], window[1]);
                        routed.append(Gate::Swap, &[from, to])?;
                        layout.swap_physical(from, to);
                        swap_count += 1;
                        pa = to;
                    }
                }
                debug_assert!(topology.are_connected(pa, pb));
                routed.append(*gate, &[pa, pb])?;
            }
            _ => {
                return Err(CircuitError::UnsupportedGate(format!(
                    "routing does not support {}-qubit gates",
                    qubits.len()
                )))
            }
        }
    }

    Ok(RoutedCircuit {
        circuit: routed,
        final_layout: layout,
        swap_count,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacent_gates_need_no_swaps() {
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 1).cx(1, 2).h(0);
        let topo = Topology::linear(3);
        let routed = route(&qc, &topo, Layout::trivial(3, 3).unwrap()).unwrap();
        assert_eq!(routed.swap_count, 0);
        assert_eq!(routed.circuit.len(), 3);
    }

    #[test]
    fn distant_gate_inserts_swaps() {
        let mut qc = QuantumCircuit::new(4);
        qc.cx(0, 3);
        let topo = Topology::linear(4);
        let routed = route(&qc, &topo, Layout::trivial(4, 4).unwrap()).unwrap();
        // Distance 3 ⇒ 2 SWAPs bring the control adjacent to the target.
        assert_eq!(routed.swap_count, 2);
        let swaps = routed
            .circuit
            .count_filtered(|i| matches!(i.gate, Gate::Swap));
        assert_eq!(swaps, 2);
    }

    #[test]
    fn layout_tracks_moved_qubits() {
        let mut qc = QuantumCircuit::new(3);
        qc.cx(0, 2).x(0);
        let topo = Topology::linear(3);
        let routed = route(&qc, &topo, Layout::trivial(3, 3).unwrap()).unwrap();
        // Logical 0 moved to physical 1 by the routing SWAP, so the final X
        // must act on physical qubit 1.
        let last = routed.circuit.instructions().last().unwrap();
        assert_eq!(last.gate, Gate::X);
        assert_eq!(last.qubits, vec![1]);
        assert_eq!(routed.final_layout.physical(0), 1);
    }

    #[test]
    fn routed_circuit_preserves_semantics() {
        // Compare statevectors: routed circuit on the device (trivial layout,
        // same qubit count) must equal the original up to the final
        // permutation given by the layout.
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 2).cy(2, 0).x(1).cz(0, 1);
        let topo = Topology::linear(3);
        let routed = route(&qc, &topo, Layout::trivial(3, 3).unwrap()).unwrap();

        let original = qc.statevector_from_zero().unwrap();
        let routed_sv = routed.circuit.statevector_from_zero().unwrap();

        // Undo the final layout permutation: amplitude of physical basis state
        // maps back to logical ordering.
        let n = 3;
        let mut unpermuted = vec![enq_linalg::C64::ZERO; 1 << n];
        for phys_index in 0..(1usize << n) {
            let mut logical_index = 0usize;
            for p in 0..n {
                if (phys_index >> p) & 1 == 1 {
                    let l = routed
                        .final_layout
                        .logical(p)
                        .expect("all physical qubits occupied in this test");
                    logical_index |= 1 << l;
                }
            }
            unpermuted[logical_index] = routed_sv[phys_index];
        }
        let unpermuted = enq_linalg::CVector::new(unpermuted);
        assert!(unpermuted.approx_eq_up_to_phase(&original, 1e-10));
    }

    #[test]
    fn disconnected_topology_errors() {
        let mut qc = QuantumCircuit::new(4);
        qc.cx(0, 3);
        let topo = Topology::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(matches!(
            route(&qc, &topo, Layout::trivial(4, 4).unwrap()),
            Err(CircuitError::NotConnected { .. })
        ));
    }

    #[test]
    fn too_small_device_errors() {
        let qc = QuantumCircuit::new(5);
        let topo = Topology::linear(3);
        assert!(route(&qc, &topo, Layout::trivial(3, 3).unwrap()).is_err());
    }

    #[test]
    fn custom_initial_layout_is_respected() {
        let mut qc = QuantumCircuit::new(2);
        qc.cx(0, 1);
        let topo = Topology::linear(5);
        let layout = Layout::from_physical(&[4, 3], 5).unwrap();
        let routed = route(&qc, &topo, layout).unwrap();
        let inst = &routed.circuit.instructions()[0];
        assert_eq!(inst.qubits, vec![4, 3]);
    }
}

//! Translation to the IBM native gate basis `{Rz, SX, X, CX}`.
//!
//! `Rz` is implemented virtually on IBM hardware (a frame change), so after
//! this pass the only error-contributing gates are `SX`, `X`, and the
//! two-qubit entangler. The physical entangler on Eagle-class devices is the
//! ECR gate, which is locally equivalent to `CX`; we emit `CX` and note that
//! every metric the paper reports (depth, one-/two-qubit physical gate
//! counts) is identical under that local equivalence.

use crate::circuit::{Instruction, QuantumCircuit};
use crate::error::CircuitError;
use crate::gate::Gate;
use crate::param::Angle;
use enq_linalg::CMatrix;
use std::f64::consts::{FRAC_PI_2, FRAC_PI_4, PI, TAU};

/// Angles of a ZYZ Euler decomposition `U ∝ Rz(phi)·Ry(theta)·Rz(lam)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZyzAngles {
    /// Rotation of the leading `Rz`.
    pub phi: f64,
    /// Rotation of the middle `Ry`.
    pub theta: f64,
    /// Rotation of the trailing `Rz` (applied first).
    pub lam: f64,
}

/// Computes the ZYZ Euler angles of a single-qubit unitary, ignoring global
/// phase.
///
/// # Errors
///
/// Returns [`CircuitError::UnsupportedGate`] if the matrix is not 2×2 or not
/// unitary within `1e-8`.
pub fn zyz_angles(u: &CMatrix) -> Result<ZyzAngles, CircuitError> {
    if u.nrows() != 2 || u.ncols() != 2 {
        return Err(CircuitError::UnsupportedGate(format!(
            "expected a 2x2 matrix, got {}x{}",
            u.nrows(),
            u.ncols()
        )));
    }
    if !u.is_unitary(1e-8) {
        return Err(CircuitError::UnsupportedGate(
            "matrix is not unitary".to_string(),
        ));
    }
    let u00 = u[(0, 0)];
    let u01 = u[(0, 1)];
    let u10 = u[(1, 0)];
    let u11 = u[(1, 1)];
    let theta = 2.0 * u10.abs().atan2(u00.abs());
    let eps = 1e-10;
    let (phi, lam) = if u10.abs() < eps {
        // θ ≈ 0: only the combined Rz(φ+λ) is defined.
        (0.0, u11.arg() - u00.arg())
    } else if u00.abs() < eps {
        // θ ≈ π: only φ−λ is defined.
        (u10.arg() - (-u01).arg(), 0.0)
    } else {
        (u10.arg() - u00.arg(), u11.arg() - u10.arg())
    };
    Ok(ZyzAngles { phi, theta, lam })
}

/// Reduces an angle into `(-π, π]` and returns `0.0` for angles that are a
/// multiple of `2π` within `tol`.
fn normalize_angle(a: f64, tol: f64) -> f64 {
    let mut x = a % TAU;
    if x > PI {
        x -= TAU;
    } else if x <= -PI {
        x += TAU;
    }
    if x.abs() < tol || (x.abs() - TAU).abs() < tol {
        0.0
    } else {
        x
    }
}

/// Decomposes a single-qubit unitary into the native `Rz·SX·Rz·SX·Rz`
/// sequence (returned in circuit order), dropping rotations that reduce to
/// the identity.
///
/// The decomposition uses the identity
/// `Rz(φ)·Ry(θ)·Rz(λ) = e^{-iπ/2}·Rz(φ)·SX·Rz(π−θ)·SX·Rz(λ−π)`.
///
/// # Errors
///
/// Propagates errors from [`zyz_angles`].
pub fn decompose_1q(u: &CMatrix) -> Result<Vec<Gate>, CircuitError> {
    let ZyzAngles { phi, theta, lam } = zyz_angles(u)?;
    let tol = 1e-9;
    let theta_n = normalize_angle(theta, tol);
    let mut gates = Vec::new();
    if theta_n == 0.0 {
        // Pure Rz.
        let total = normalize_angle(phi + lam, tol);
        if total != 0.0 {
            gates.push(Gate::Rz(Angle::fixed(total)));
        }
        return Ok(gates);
    }
    let first = normalize_angle(lam - PI, tol);
    let middle = normalize_angle(PI - theta, tol);
    let last = normalize_angle(phi, tol);
    if first != 0.0 {
        gates.push(Gate::Rz(Angle::fixed(first)));
    }
    gates.push(Gate::Sx);
    if middle != 0.0 {
        gates.push(Gate::Rz(Angle::fixed(middle)));
    }
    gates.push(Gate::Sx);
    if last != 0.0 {
        gates.push(Gate::Rz(Angle::fixed(last)));
    }
    Ok(gates)
}

/// Translates a circuit into the native basis `{Rz, SX, X, CX}` (plus `ECR`
/// pass-through).
///
/// Parameterised `Rz` gates are forwarded untouched, so EnQode's symbolic
/// ansatz can be translated before its parameters are bound. Any other
/// parameterised rotation must be bound first.
///
/// # Errors
///
/// Returns [`CircuitError::UnboundParameter`] for parameterised non-`Rz`
/// rotations and [`CircuitError::UnsupportedGate`] for gates with more than
/// two qubits.
pub fn translate_to_native(circuit: &QuantumCircuit) -> Result<QuantumCircuit, CircuitError> {
    let mut out = QuantumCircuit::new(circuit.num_qubits());
    for Instruction { gate, qubits } in circuit.iter() {
        translate_instruction(*gate, qubits, &mut out)?;
    }
    Ok(out)
}

fn translate_instruction(
    gate: Gate,
    qubits: &[usize],
    out: &mut QuantumCircuit,
) -> Result<(), CircuitError> {
    match gate {
        // Already native.
        Gate::X | Gate::Sx | Gate::Cx | Gate::Ecr => {
            out.append(gate, qubits)?;
        }
        Gate::I => {}
        // Diagonal gates become (virtual) Rz, up to a global phase.
        Gate::Rz(a) | Gate::Phase(a) => {
            out.append(Gate::Rz(a), qubits)?;
        }
        Gate::Z => {
            out.append(Gate::Rz(Angle::fixed(PI)), qubits)?;
        }
        Gate::S => {
            out.append(Gate::Rz(Angle::fixed(FRAC_PI_2)), qubits)?;
        }
        Gate::Sdg => {
            out.append(Gate::Rz(Angle::fixed(-FRAC_PI_2)), qubits)?;
        }
        Gate::T => {
            out.append(Gate::Rz(Angle::fixed(FRAC_PI_4)), qubits)?;
        }
        Gate::Tdg => {
            out.append(Gate::Rz(Angle::fixed(-FRAC_PI_4)), qubits)?;
        }
        // Generic single-qubit gates go through the ZXZXZ decomposition.
        Gate::H | Gate::Y | Gate::Sxdg | Gate::Rx(_) | Gate::Ry(_) => {
            let m = gate.matrix()?;
            for g in decompose_1q(&m)? {
                out.append(g, qubits)?;
            }
        }
        // CY = (I⊗S)·CX·(I⊗S†) with the phase gates on the target, which are
        // virtual Rz rotations.
        Gate::Cy => {
            let (c, t) = (qubits[0], qubits[1]);
            out.append(Gate::Rz(Angle::fixed(-FRAC_PI_2)), &[t])?;
            out.append(Gate::Cx, &[c, t])?;
            out.append(Gate::Rz(Angle::fixed(FRAC_PI_2)), &[t])?;
        }
        // CZ = (I⊗H)·CX·(I⊗H).
        Gate::Cz => {
            let (c, t) = (qubits[0], qubits[1]);
            let h = Gate::H.matrix()?;
            for g in decompose_1q(&h)? {
                out.append(g, &[t])?;
            }
            out.append(Gate::Cx, &[c, t])?;
            for g in decompose_1q(&h)? {
                out.append(g, &[t])?;
            }
        }
        // SWAP = three alternating CX gates.
        Gate::Swap => {
            let (a, b) = (qubits[0], qubits[1]);
            out.append(Gate::Cx, &[a, b])?;
            out.append(Gate::Cx, &[b, a])?;
            out.append(Gate::Cx, &[a, b])?;
        }
        #[allow(unreachable_patterns)]
        other => {
            return Err(CircuitError::UnsupportedGate(other.name().to_string()));
        }
    }
    Ok(())
}

/// Returns `true` if every gate of the circuit belongs to the native basis
/// `{Rz, SX, X, CX, ECR}`.
pub fn is_native(circuit: &QuantumCircuit) -> bool {
    circuit.iter().all(|inst| {
        matches!(
            inst.gate,
            Gate::Rz(_) | Gate::Sx | Gate::X | Gate::Cx | Gate::Ecr
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_linalg::{CVector, C64};

    fn assert_same_action(original: &QuantumCircuit, translated: &QuantumCircuit) {
        // Compare action on a handful of basis states up to global phase.
        let n = original.num_qubits();
        for idx in 0..(1usize << n).min(4) {
            let mut prep = QuantumCircuit::new(n);
            for q in 0..n {
                if (idx >> q) & 1 == 1 {
                    prep.x(q);
                }
            }
            let mut a = prep.clone();
            a.compose(original).unwrap();
            let mut b = prep.clone();
            b.compose(translated).unwrap();
            let sa = a.statevector_from_zero().unwrap();
            let sb = b.statevector_from_zero().unwrap();
            assert!(
                sa.approx_eq_up_to_phase(&sb, 1e-8),
                "translation changed the action on basis state {idx}"
            );
        }
    }

    #[test]
    fn zyz_of_rz_is_pure_z_rotation() {
        let u = Gate::Rz(Angle::fixed(0.7)).matrix().unwrap();
        let angles = zyz_angles(&u).unwrap();
        assert!(angles.theta.abs() < 1e-10);
        assert!((normalize_angle(angles.phi + angles.lam, 1e-12) - 0.7).abs() < 1e-9);
    }

    #[test]
    fn zyz_of_ry_matches() {
        let u = Gate::Ry(Angle::fixed(1.1)).matrix().unwrap();
        let angles = zyz_angles(&u).unwrap();
        assert!((angles.theta - 1.1).abs() < 1e-9);
    }

    #[test]
    fn decompose_reconstructs_unitary_up_to_phase() {
        let cases = vec![
            Gate::H.matrix().unwrap(),
            Gate::Y.matrix().unwrap(),
            Gate::Sxdg.matrix().unwrap(),
            Gate::Rx(Angle::fixed(-FRAC_PI_2)).matrix().unwrap(),
            Gate::Ry(Angle::fixed(2.3)).matrix().unwrap(),
            Gate::Rz(Angle::fixed(0.4)).matrix().unwrap(),
            Gate::X.matrix().unwrap(),
        ];
        for u in cases {
            let gates = decompose_1q(&u).unwrap();
            let mut qc = QuantumCircuit::new(1);
            for g in &gates {
                qc.append(*g, &[0]).unwrap();
            }
            let v = qc.unitary().unwrap();
            // Compare columns up to a single global phase.
            let u_col = u.matvec(&CVector::basis_state(2, 0));
            let v_col = v.matvec(&CVector::basis_state(2, 0));
            assert!(u_col.approx_eq_up_to_phase(&v_col, 1e-8));
            let u_col1 = u.matvec(&CVector::basis_state(2, 1));
            let v_col1 = v.matvec(&CVector::basis_state(2, 1));
            assert!(u_col1.approx_eq_up_to_phase(&v_col1, 1e-8));
            // And the relative phase between columns must also match: check a
            // superposition input.
            let plus = CVector::new(vec![C64::real(1.0 / 2f64.sqrt()); 2]);
            assert!(u
                .matvec(&plus)
                .approx_eq_up_to_phase(&v.matvec(&plus), 1e-8));
        }
    }

    #[test]
    fn decompose_identity_is_empty() {
        let id = CMatrix::identity(2);
        assert!(decompose_1q(&id).unwrap().is_empty());
    }

    #[test]
    fn decompose_uses_at_most_two_sx() {
        let u = Gate::H.matrix().unwrap();
        let gates = decompose_1q(&u).unwrap();
        let sx_count = gates.iter().filter(|g| matches!(g, Gate::Sx)).count();
        assert_eq!(sx_count, 2);
        assert!(gates.len() <= 5);
    }

    #[test]
    fn translate_preserves_circuit_action() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0)
            .cy(0, 1)
            .rx(-FRAC_PI_2, 2)
            .cz(1, 2)
            .swap(0, 2)
            .ry(0.9, 1)
            .s(0)
            .y(2)
            .rz(0.3, 1);
        let native = translate_to_native(&qc).unwrap();
        assert!(is_native(&native));
        assert_same_action(&qc, &native);
    }

    #[test]
    fn translate_keeps_parameterized_rz() {
        let mut qc = QuantumCircuit::new(2);
        qc.rz(Angle::parameter(0), 0).cy(0, 1);
        let native = translate_to_native(&qc).unwrap();
        assert!(native.is_parameterized());
        assert!(is_native(&native));
    }

    #[test]
    fn translate_rejects_parameterized_rx() {
        let mut qc = QuantumCircuit::new(1);
        qc.rx(Angle::parameter(0), 0);
        assert!(translate_to_native(&qc).is_err());
    }

    #[test]
    fn cy_translation_uses_single_cx() {
        let mut qc = QuantumCircuit::new(2);
        qc.cy(0, 1);
        let native = translate_to_native(&qc).unwrap();
        let cx_count = native.count_filtered(|i| matches!(i.gate, Gate::Cx));
        assert_eq!(cx_count, 1);
        // The surrounding phase corrections are virtual.
        let physical_1q = native.count_filtered(|i| !i.gate.is_virtual() && !i.gate.is_two_qubit());
        assert_eq!(physical_1q, 0);
    }

    #[test]
    fn swap_translation_uses_three_cx() {
        let mut qc = QuantumCircuit::new(2);
        qc.swap(0, 1);
        let native = translate_to_native(&qc).unwrap();
        assert_eq!(native.count_filtered(|i| matches!(i.gate, Gate::Cx)), 3);
        assert_same_action(&qc, &native);
    }
}

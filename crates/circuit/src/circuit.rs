//! The quantum-circuit intermediate representation.

use crate::error::CircuitError;
use crate::gate::Gate;
use crate::param::Angle;
use enq_linalg::{CMatrix, C64};
use std::fmt;

/// A single gate application to specific qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct Instruction {
    /// The gate being applied.
    pub gate: Gate,
    /// The qubit operands, in gate-operand order (controls first).
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates a new instruction.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        Self { gate, qubits }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?}", self.gate, self.qubits)
    }
}

/// A gate-list quantum circuit on a fixed-size qubit register.
///
/// # Examples
///
/// ```
/// use enq_circuit::QuantumCircuit;
///
/// let mut qc = QuantumCircuit::new(2);
/// qc.h(0);
/// qc.cx(0, 1);
/// assert_eq!(qc.len(), 2);
/// assert!(qc.unitary()?.is_unitary(1e-12));
/// # Ok::<(), enq_circuit::CircuitError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantumCircuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl QuantumCircuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Returns the number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Returns the number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` if the circuit contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Returns the instruction list.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Returns an iterator over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Appends a gate after validating its operands. The circuit is left
    /// unchanged when validation fails, so an `Err` never corrupts a
    /// partially built circuit.
    ///
    /// Returns `&mut Self` on success so fallible construction chains with
    /// `?`:
    ///
    /// ```
    /// use enq_circuit::{Gate, QuantumCircuit};
    ///
    /// let mut qc = QuantumCircuit::new(2);
    /// qc.append(Gate::H, &[0])?.append(Gate::Cx, &[0, 1])?;
    /// assert_eq!(qc.len(), 2);
    /// # Ok::<(), enq_circuit::CircuitError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] or
    /// [`CircuitError::DuplicateQubit`] for invalid operands, and an error if
    /// the operand count does not match the gate arity.
    pub fn append(&mut self, gate: Gate, qubits: &[usize]) -> Result<&mut Self, CircuitError> {
        if qubits.len() != gate.num_qubits() {
            return Err(CircuitError::UnsupportedGate(format!(
                "{} expects {} qubits, got {}",
                gate.name(),
                gate.num_qubits(),
                qubits.len()
            )));
        }
        for (i, &q) in qubits.iter().enumerate() {
            if q >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
            if qubits[..i].contains(&q) {
                return Err(CircuitError::DuplicateQubit { qubit: q });
            }
        }
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec()));
        Ok(self)
    }

    /// Infallible backing for the single-gate builder sugar below: those
    /// methods take operands that are almost always literals in tests and
    /// examples, so they trade the `Result` for chainability and document
    /// their panic. All library construction paths go through
    /// [`QuantumCircuit::append`] and propagate errors instead.
    fn must_append(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        if let Err(e) = self.append(gate, qubits) {
            panic!("invalid gate application: {e}");
        }
        self
    }

    /// Applies a Pauli-X gate.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range (same for all builder methods below;
    /// use [`QuantumCircuit::append`] to handle invalid operands as errors).
    pub fn x(&mut self, qubit: usize) -> &mut Self {
        self.must_append(Gate::X, &[qubit])
    }

    /// Applies a Pauli-Y gate.
    pub fn y(&mut self, qubit: usize) -> &mut Self {
        self.must_append(Gate::Y, &[qubit])
    }

    /// Applies a Pauli-Z gate.
    pub fn z(&mut self, qubit: usize) -> &mut Self {
        self.must_append(Gate::Z, &[qubit])
    }

    /// Applies a Hadamard gate.
    pub fn h(&mut self, qubit: usize) -> &mut Self {
        self.must_append(Gate::H, &[qubit])
    }

    /// Applies an S gate.
    pub fn s(&mut self, qubit: usize) -> &mut Self {
        self.must_append(Gate::S, &[qubit])
    }

    /// Applies an S† gate.
    pub fn sdg(&mut self, qubit: usize) -> &mut Self {
        self.must_append(Gate::Sdg, &[qubit])
    }

    /// Applies a √X gate.
    pub fn sx(&mut self, qubit: usize) -> &mut Self {
        self.must_append(Gate::Sx, &[qubit])
    }

    /// Applies an Rx rotation.
    pub fn rx(&mut self, angle: impl Into<Angle>, qubit: usize) -> &mut Self {
        self.must_append(Gate::Rx(angle.into()), &[qubit])
    }

    /// Applies an Ry rotation.
    pub fn ry(&mut self, angle: impl Into<Angle>, qubit: usize) -> &mut Self {
        self.must_append(Gate::Ry(angle.into()), &[qubit])
    }

    /// Applies an Rz rotation.
    pub fn rz(&mut self, angle: impl Into<Angle>, qubit: usize) -> &mut Self {
        self.must_append(Gate::Rz(angle.into()), &[qubit])
    }

    /// Applies a phase rotation `diag(1, e^{iλ})`.
    pub fn p(&mut self, angle: impl Into<Angle>, qubit: usize) -> &mut Self {
        self.must_append(Gate::Phase(angle.into()), &[qubit])
    }

    /// Applies a CX (CNOT) gate.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.must_append(Gate::Cx, &[control, target])
    }

    /// Applies a CY gate.
    pub fn cy(&mut self, control: usize, target: usize) -> &mut Self {
        self.must_append(Gate::Cy, &[control, target])
    }

    /// Applies a CZ gate.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.must_append(Gate::Cz, &[control, target])
    }

    /// Applies a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.must_append(Gate::Swap, &[a, b])
    }

    /// Appends all instructions of `other` to this circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::DeviceTooSmall`] if `other` uses more qubits
    /// than this circuit has.
    pub fn compose(&mut self, other: &QuantumCircuit) -> Result<(), CircuitError> {
        if other.num_qubits > self.num_qubits {
            return Err(CircuitError::DeviceTooSmall {
                required: other.num_qubits,
                available: self.num_qubits,
            });
        }
        for inst in &other.instructions {
            self.append(inst.gate, &inst.qubits)?;
        }
        Ok(())
    }

    /// Returns the adjoint circuit (reversed instruction order, each gate
    /// inverted).
    pub fn inverse(&self) -> QuantumCircuit {
        let mut out = QuantumCircuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            out.instructions
                .push(Instruction::new(inst.gate.adjoint(), inst.qubits.clone()));
        }
        out
    }

    /// Returns the number of trainable parameters (1 + the highest parameter
    /// index referenced), or 0 if fully bound.
    pub fn num_parameters(&self) -> usize {
        self.instructions
            .iter()
            .filter_map(|inst| inst.gate.parameter_index())
            .map(|i| i + 1)
            .max()
            .unwrap_or(0)
    }

    /// Returns `true` if any gate still has a symbolic angle.
    pub fn is_parameterized(&self) -> bool {
        self.instructions
            .iter()
            .any(|inst| inst.gate.is_parameterized())
    }

    /// Returns a copy of the circuit with all symbolic angles bound.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::ParameterCountMismatch`] if fewer values are
    /// supplied than the circuit references.
    pub fn bind_parameters(&self, values: &[f64]) -> Result<QuantumCircuit, CircuitError> {
        let needed = self.num_parameters();
        if values.len() < needed {
            return Err(CircuitError::ParameterCountMismatch {
                expected: needed,
                found: values.len(),
            });
        }
        let mut out = QuantumCircuit::new(self.num_qubits);
        for inst in &self.instructions {
            out.instructions.push(Instruction::new(
                inst.gate.bind(values)?,
                inst.qubits.clone(),
            ));
        }
        Ok(out)
    }

    /// Returns the circuit depth counting every gate (including virtual ones).
    pub fn depth(&self) -> usize {
        self.depth_filtered(|_| true)
    }

    /// Returns the circuit depth counting only instructions accepted by
    /// `filter`.
    pub fn depth_filtered(&self, filter: impl Fn(&Instruction) -> bool) -> usize {
        let mut per_qubit = vec![0usize; self.num_qubits];
        let mut max_depth = 0;
        for inst in &self.instructions {
            if !filter(inst) {
                continue;
            }
            let level = inst.qubits.iter().map(|&q| per_qubit[q]).max().unwrap_or(0) + 1;
            for &q in &inst.qubits {
                per_qubit[q] = level;
            }
            max_depth = max_depth.max(level);
        }
        max_depth
    }

    /// Counts instructions accepted by `filter`.
    pub fn count_filtered(&self, filter: impl Fn(&Instruction) -> bool) -> usize {
        self.instructions.iter().filter(|inst| filter(inst)).count()
    }

    /// Builds the full `2^n × 2^n` unitary of the circuit.
    ///
    /// Intended for verification on small registers; the cost is
    /// `O(len · 4^n)`.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit still has unbound parameters.
    pub fn unitary(&self) -> Result<CMatrix, CircuitError> {
        let dim = 1usize << self.num_qubits;
        let mut u = CMatrix::identity(dim);
        for inst in &self.instructions {
            let g = expand_gate(&inst.gate.matrix()?, &inst.qubits, self.num_qubits);
            u = g.matmul(&u);
        }
        Ok(u)
    }

    /// Applies the circuit to `|0…0⟩` and returns the resulting statevector.
    ///
    /// This is a convenience for tests and examples; the simulators in
    /// `enq-qsim` are the fast path.
    ///
    /// # Errors
    ///
    /// Returns an error if the circuit still has unbound parameters.
    pub fn statevector_from_zero(&self) -> Result<enq_linalg::CVector, CircuitError> {
        let dim = 1usize << self.num_qubits;
        let mut state = vec![C64::ZERO; dim];
        state[0] = C64::ONE;
        for inst in &self.instructions {
            apply_gate_to_state(&mut state, &inst.gate.matrix()?, &inst.qubits);
        }
        Ok(enq_linalg::CVector::new(state))
    }
}

/// Expands a 1- or 2-qubit gate matrix to the full register dimension.
///
/// The operand list is little-endian: the first operand supplies the least
/// significant bit of the gate-local index.
pub(crate) fn expand_gate(gate: &CMatrix, qubits: &[usize], num_qubits: usize) -> CMatrix {
    let dim = 1usize << num_qubits;
    let k = qubits.len();
    let sub_dim = 1usize << k;
    let mut out = CMatrix::zeros(dim, dim);
    for col in 0..dim {
        // Extract the gate-local index bits of this column.
        let mut sub_col = 0usize;
        for (pos, &q) in qubits.iter().enumerate() {
            sub_col |= ((col >> q) & 1) << pos;
        }
        // The bits outside the gate stay fixed.
        for sub_row in 0..sub_dim {
            let amp = gate[(sub_row, sub_col)];
            if amp == C64::ZERO {
                continue;
            }
            let mut row = col;
            for (pos, &q) in qubits.iter().enumerate() {
                let bit = (sub_row >> pos) & 1;
                row = (row & !(1usize << q)) | (bit << q);
            }
            out[(row, col)] += amp;
        }
    }
    out
}

/// Applies a gate matrix to a statevector in place (little-endian operands).
pub(crate) fn apply_gate_to_state(state: &mut [C64], gate: &CMatrix, qubits: &[usize]) {
    let n_amp = state.len();
    let k = qubits.len();
    let sub_dim = 1usize << k;
    // Iterate over all amplitude groups that share the non-operand bits.
    let mut visited = vec![false; n_amp];
    let mut scratch = vec![C64::ZERO; sub_dim];
    for base in 0..n_amp {
        if visited[base] {
            continue;
        }
        // Only handle the representative with all operand bits clear.
        if qubits.iter().any(|&q| (base >> q) & 1 == 1) {
            continue;
        }
        // Gather the group indices.
        let mut indices = vec![0usize; sub_dim];
        for (sub, index) in indices.iter_mut().enumerate() {
            let mut idx = base;
            for (pos, &q) in qubits.iter().enumerate() {
                if (sub >> pos) & 1 == 1 {
                    idx |= 1usize << q;
                }
            }
            *index = idx;
            visited[idx] = true;
        }
        for (sub_row, s) in scratch.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for sub_col in 0..sub_dim {
                let g = gate[(sub_row, sub_col)];
                if g != C64::ZERO {
                    acc += g * state[indices[sub_col]];
                }
            }
            *s = acc;
        }
        for (sub, &idx) in indices.iter().enumerate() {
            state[idx] = scratch[sub];
        }
    }
}

impl fmt::Display for QuantumCircuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.num_qubits)?;
        for inst in &self.instructions {
            writeln!(f, "  {inst}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a QuantumCircuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use enq_linalg::CVector;
    use std::f64::consts::PI;

    #[test]
    fn bell_state_construction() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cx(0, 1);
        let sv = qc.statevector_from_zero().unwrap();
        let expected = CVector::from_real(&[1.0 / 2f64.sqrt(), 0.0, 0.0, 1.0 / 2f64.sqrt()]);
        assert!(sv.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn unitary_matches_statevector() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).cx(0, 1).ry(0.7, 2).cz(1, 2).rz(0.3, 0);
        let u = qc.unitary().unwrap();
        assert!(u.is_unitary(1e-10));
        let from_u = u.matvec(&CVector::basis_state(8, 0));
        let sv = qc.statevector_from_zero().unwrap();
        assert!(from_u.approx_eq(&sv, 1e-10));
    }

    #[test]
    fn append_validates_operands() {
        let mut qc = QuantumCircuit::new(2);
        assert!(qc.append(Gate::X, &[5]).is_err());
        assert!(qc.append(Gate::Cx, &[0, 0]).is_err());
        assert!(qc.append(Gate::Cx, &[0]).is_err());
        assert!(qc.append(Gate::Cx, &[0, 1]).is_ok());
    }

    #[test]
    fn append_out_of_range_qubit_propagates_error_and_leaves_circuit_intact() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0);
        let err = qc.append(Gate::Cx, &[0, 2]).unwrap_err();
        assert_eq!(
            err,
            CircuitError::QubitOutOfRange {
                qubit: 2,
                num_qubits: 2
            }
        );
        // A failed append must not corrupt the circuit under construction.
        assert_eq!(qc.len(), 1);

        // The fallible path chains with `?` inside a result-returning builder.
        fn build(bad: bool) -> Result<QuantumCircuit, CircuitError> {
            let mut qc = QuantumCircuit::new(2);
            qc.append(Gate::H, &[0])?
                .append(Gate::Cx, &[0, if bad { 7 } else { 1 }])?;
            Ok(qc)
        }
        assert!(build(false).is_ok());
        assert!(matches!(
            build(true),
            Err(CircuitError::QubitOutOfRange { qubit: 7, .. })
        ));
    }

    #[test]
    fn inverse_composes_to_identity() {
        let mut qc = QuantumCircuit::new(2);
        qc.h(0).cy(0, 1).rx(0.4, 1).rz(-1.2, 0).cx(1, 0);
        let mut total = qc.clone();
        total.compose(&qc.inverse()).unwrap();
        let u = total.unitary().unwrap();
        assert!(u.approx_eq(&CMatrix::identity(4), 1e-10));
    }

    #[test]
    fn depth_counts_parallel_gates_once() {
        let mut qc = QuantumCircuit::new(3);
        qc.h(0).h(1).h(2); // one layer
        qc.cx(0, 1); // second layer
        qc.x(2); // also second layer (disjoint qubit)
        assert_eq!(qc.depth(), 2);
    }

    #[test]
    fn depth_filtered_excludes_virtual() {
        let mut qc = QuantumCircuit::new(1);
        qc.rz(0.1, 0).rz(0.2, 0).sx(0).rz(0.3, 0);
        assert_eq!(qc.depth(), 4);
        assert_eq!(qc.depth_filtered(|i| !i.gate.is_virtual()), 1);
    }

    #[test]
    fn parameter_binding_roundtrip() {
        let mut qc = QuantumCircuit::new(2);
        qc.rz(Angle::parameter(0), 0)
            .rz(Angle::parameter(1), 1)
            .cx(0, 1)
            .rz(Angle::parameter(2), 1);
        assert!(qc.is_parameterized());
        assert_eq!(qc.num_parameters(), 3);
        let bound = qc.bind_parameters(&[0.1, 0.2, 0.3]).unwrap();
        assert!(!bound.is_parameterized());
        assert!(bound.unitary().is_ok());
        assert!(qc.bind_parameters(&[0.1]).is_err());
    }

    #[test]
    fn compose_rejects_larger_circuit() {
        let mut small = QuantumCircuit::new(1);
        let big = QuantumCircuit::new(3);
        assert!(small.compose(&big).is_err());
    }

    #[test]
    fn two_qubit_gate_operand_order_matters() {
        // CX with control 1, target 0 acting on |01⟩ (q0=1): control q1=0, so no flip.
        let mut qc = QuantumCircuit::new(2);
        qc.x(0).cx(1, 0);
        let sv = qc.statevector_from_zero().unwrap();
        assert!(sv.approx_eq(&CVector::basis_state(4, 1), 1e-12));

        // Control 0, target 1: |01⟩ → |11⟩.
        let mut qc2 = QuantumCircuit::new(2);
        qc2.x(0).cx(0, 1);
        let sv2 = qc2.statevector_from_zero().unwrap();
        assert!(sv2.approx_eq(&CVector::basis_state(4, 3), 1e-12));
    }

    #[test]
    fn expand_gate_on_non_adjacent_qubits() {
        // CX control q0, target q2 in a 3-qubit register.
        let mut qc = QuantumCircuit::new(3);
        qc.x(0).cx(0, 2);
        let sv = qc.statevector_from_zero().unwrap();
        // Expect |101⟩ = index 5.
        assert!(sv.approx_eq(&CVector::basis_state(8, 5), 1e-12));
    }

    #[test]
    fn rx_rotation_statevector() {
        let mut qc = QuantumCircuit::new(1);
        qc.rx(PI, 0);
        let sv = qc.statevector_from_zero().unwrap();
        // Rx(π)|0⟩ = -i|1⟩.
        assert!(sv[1].approx_eq(-C64::I, 1e-12));
    }

    #[test]
    fn swap_via_builder() {
        let mut qc = QuantumCircuit::new(2);
        qc.x(0).swap(0, 1);
        let sv = qc.statevector_from_zero().unwrap();
        assert!(sv.approx_eq(&CVector::basis_state(4, 2), 1e-12));
    }
}

//! Dataset containers.

use crate::error::DataError;
use std::fmt;

/// The image datasets used by the paper's evaluation. The repository ships
/// deterministic synthetic surrogates with the same dimensionality and class
/// structure (see `enq_data::synthetic`), because the pipeline only ever
/// consumes PCA-reduced, L2-normalised feature vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// 28×28 grayscale digits (MNIST surrogate).
    MnistLike,
    /// 28×28 grayscale clothing items (Fashion-MNIST surrogate).
    FashionMnistLike,
    /// 32×32 RGB natural images (CIFAR-10 surrogate).
    CifarLike,
}

impl DatasetKind {
    /// Returns the raw feature dimension of one sample (flattened pixels).
    pub fn feature_dim(&self) -> usize {
        match self {
            DatasetKind::MnistLike | DatasetKind::FashionMnistLike => 28 * 28,
            DatasetKind::CifarLike => 32 * 32 * 3,
        }
    }

    /// Returns the display name used in figures and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::MnistLike => "MNIST",
            DatasetKind::FashionMnistLike => "F-MNIST",
            DatasetKind::CifarLike => "CIFAR",
        }
    }

    /// All three evaluation datasets, in the order the paper's figures use.
    pub fn all() -> [DatasetKind; 3] {
        [
            DatasetKind::MnistLike,
            DatasetKind::FashionMnistLike,
            DatasetKind::CifarLike,
        ]
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A labelled collection of flat feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    feature_dim: usize,
    samples: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Creates a dataset from samples and labels.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] when no samples are supplied and
    /// [`DataError::DimensionMismatch`] when samples disagree in length or the
    /// label count differs from the sample count.
    pub fn new(
        name: impl Into<String>,
        samples: Vec<Vec<f64>>,
        labels: Vec<usize>,
    ) -> Result<Self, DataError> {
        if samples.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let feature_dim = samples[0].len();
        for s in &samples {
            if s.len() != feature_dim {
                return Err(DataError::DimensionMismatch {
                    expected: feature_dim,
                    found: s.len(),
                });
            }
        }
        if labels.len() != samples.len() {
            return Err(DataError::DimensionMismatch {
                expected: samples.len(),
                found: labels.len(),
            });
        }
        Ok(Self {
            name: name.into(),
            feature_dim,
            samples,
            labels,
        })
    }

    /// Returns the dataset name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when there are no samples (never the case for a
    /// successfully constructed dataset).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the per-sample feature dimension.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Returns all samples.
    pub fn samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// Returns all labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Returns the sample at `index`.
    pub fn sample(&self, index: usize) -> &[f64] {
        &self.samples[index]
    }

    /// Returns the distinct labels present, in ascending order.
    pub fn classes(&self) -> Vec<usize> {
        let mut classes: Vec<usize> = self.labels.clone();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// Returns the indices of all samples with the given label.
    pub fn indices_of_class(&self, label: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter_map(|(i, &l)| if l == label { Some(i) } else { None })
            .collect()
    }

    /// Returns a new dataset containing only the samples of the given label.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] if the class is not present.
    pub fn class_subset(&self, label: usize) -> Result<Dataset, DataError> {
        let indices = self.indices_of_class(label);
        if indices.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        Ok(Dataset {
            name: format!("{}-class{}", self.name, label),
            feature_dim: self.feature_dim,
            samples: indices.iter().map(|&i| self.samples[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
        })
    }

    /// Returns a new dataset with features replaced by `f(sample)`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] if `f` produces vectors of
    /// inconsistent length.
    pub fn map_features(
        &self,
        mut f: impl FnMut(&[f64]) -> Vec<f64>,
    ) -> Result<Dataset, DataError> {
        let samples: Vec<Vec<f64>> = self.samples.iter().map(|s| f(s)).collect();
        Dataset::new(self.name.clone(), samples, self.labels.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![
                vec![1.0, 0.0],
                vec![0.0, 1.0],
                vec![1.0, 1.0],
                vec![2.0, 2.0],
            ],
            vec![0, 1, 0, 1],
        )
        .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.classes(), vec![0, 1]);
        assert_eq!(d.indices_of_class(0), vec![0, 2]);
        assert_eq!(d.sample(3), &[2.0, 2.0]);
        assert!(!d.is_empty());
    }

    #[test]
    fn invalid_construction_rejected() {
        assert!(matches!(
            Dataset::new("x", vec![], vec![]),
            Err(DataError::EmptyDataset)
        ));
        assert!(Dataset::new("x", vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0]).is_err());
        assert!(Dataset::new("x", vec![vec![1.0]], vec![0, 1]).is_err());
    }

    #[test]
    fn class_subset_filters() {
        let d = toy();
        let sub = d.class_subset(1).unwrap();
        assert_eq!(sub.len(), 2);
        assert!(sub.labels().iter().all(|&l| l == 1));
        assert!(d.class_subset(9).is_err());
    }

    #[test]
    fn map_features_transforms() {
        let d = toy();
        let doubled = d
            .map_features(|s| s.iter().map(|v| v * 2.0).collect())
            .unwrap();
        assert_eq!(doubled.sample(0), &[2.0, 0.0]);
        assert_eq!(doubled.labels(), d.labels());
    }

    #[test]
    fn dataset_kind_dimensions() {
        assert_eq!(DatasetKind::MnistLike.feature_dim(), 784);
        assert_eq!(DatasetKind::FashionMnistLike.feature_dim(), 784);
        assert_eq!(DatasetKind::CifarLike.feature_dim(), 3072);
        assert_eq!(DatasetKind::all().len(), 3);
        assert_eq!(DatasetKind::CifarLike.to_string(), "CIFAR");
    }
}

//! Feature preprocessing: PCA reduction followed by L2 normalisation, the
//! exact pipeline the paper applies to every image before embedding it.

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::incremental::IncrementalPca;
use crate::pca::Pca;
use crate::prefetch::{drive_chunks, IngestMode};
use crate::stream::{SampleChunk, SampleSource};
use std::num::NonZeroUsize;

/// Returns an L2-normalised copy of a vector.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if the vector has zero norm (it
/// could not be used as an amplitude-embedding target).
pub fn l2_normalize(values: &[f64]) -> Result<Vec<f64>, DataError> {
    let norm: f64 = values.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm <= 0.0 {
        return Err(DataError::InvalidParameter(
            "cannot normalise a zero vector".to_string(),
        ));
    }
    Ok(values.iter().map(|v| v / norm).collect())
}

/// A fitted feature pipeline: PCA to `2^n` features, then L2 normalisation.
///
/// # Examples
///
/// ```
/// use enq_data::{generate_synthetic, DatasetKind, FeaturePipeline, SyntheticConfig};
///
/// let data = generate_synthetic(
///     DatasetKind::MnistLike,
///     &SyntheticConfig { classes: 2, samples_per_class: 12, seed: 3 },
/// )?;
/// let pipeline = FeaturePipeline::fit(&data, 16)?;
/// let features = pipeline.apply(data.sample(0))?;
/// assert_eq!(features.len(), 16);
/// let norm: f64 = features.iter().map(|v| v * v).sum();
/// assert!((norm - 1.0).abs() < 1e-9);
/// # Ok::<(), enq_data::DataError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FeaturePipeline {
    pca: Pca,
    output_dim: usize,
}

impl FeaturePipeline {
    /// Fits the pipeline on a dataset, producing `output_dim` features per
    /// sample (for the paper's 8-qubit experiments, `output_dim = 256`).
    ///
    /// When the training set has effective rank below `output_dim` (fewer
    /// samples than features, constant pixels), the PCA keeps only the
    /// informative directions and [`FeaturePipeline::apply`] zero-pads the
    /// projection back to `output_dim` — trailing coordinates that used to
    /// be numerical noise from degenerate components are now exactly zero.
    ///
    /// # Errors
    ///
    /// Propagates PCA fitting errors.
    pub fn fit(dataset: &Dataset, output_dim: usize) -> Result<Self, DataError> {
        let pca = Pca::fit_truncated(dataset.samples(), output_dim)?;
        Ok(Self { pca, output_dim })
    }

    /// Wraps an already-fitted PCA model (e.g. from [`IncrementalPca`]).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if the model yields more than
    /// `output_dim` components.
    pub fn from_pca(pca: Pca, output_dim: usize) -> Result<Self, DataError> {
        if pca.num_components() > output_dim {
            return Err(DataError::InvalidParameter(format!(
                "PCA produces {} components but the pipeline outputs {} features",
                pca.num_components(),
                output_dim
            )));
        }
        Ok(Self { pca, output_dim })
    }

    /// Fits the pipeline out-of-core from a [`SampleSource`] with
    /// [`IncrementalPca`]: one pass over the source, `O(chunk × dim)`
    /// resident memory. On data whose effective rank stays within the
    /// incremental sketch this reproduces [`FeaturePipeline::fit`] up to
    /// component sign.
    ///
    /// # Errors
    ///
    /// Propagates source and PCA errors.
    pub fn fit_streaming(
        source: &mut dyn SampleSource,
        output_dim: usize,
        chunk_size: usize,
    ) -> Result<Self, DataError> {
        Self::fit_streaming_with_threads(
            source,
            output_dim,
            chunk_size,
            enq_parallel::default_threads(),
        )
    }

    /// [`FeaturePipeline::fit_streaming`] with an explicit worker count
    /// (bit-identical results for every `threads` value).
    ///
    /// # Errors
    ///
    /// Same as [`FeaturePipeline::fit_streaming`].
    pub fn fit_streaming_with_threads(
        source: &mut dyn SampleSource,
        output_dim: usize,
        chunk_size: usize,
        threads: NonZeroUsize,
    ) -> Result<Self, DataError> {
        Self::fit_streaming_with_options(
            source,
            output_dim,
            chunk_size,
            threads,
            IngestMode::default(),
        )
    }

    /// [`FeaturePipeline::fit_streaming_with_threads`] with an explicit
    /// [`IngestMode`]: prefetched ingestion overlaps reading/generating the
    /// next chunk with the incremental-PCA merge of the current one, and is
    /// bit-identical to the synchronous mode.
    ///
    /// # Errors
    ///
    /// Same as [`FeaturePipeline::fit_streaming`].
    pub fn fit_streaming_with_options(
        source: &mut dyn SampleSource,
        output_dim: usize,
        chunk_size: usize,
        threads: NonZeroUsize,
        ingest: IngestMode,
    ) -> Result<Self, DataError> {
        let mut ipca = IncrementalPca::with_threads(source.feature_dim(), output_dim, threads)?;
        source.reset()?;
        drive_chunks(source, chunk_size, ingest, |chunk| {
            ipca.partial_fit(chunk.samples())
        })?;
        Self::from_pca(ipca.finalize_truncated()?, output_dim)
    }

    /// Returns the number of output features.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Returns the underlying PCA model.
    pub fn pca(&self) -> &Pca {
        &self.pca
    }

    /// Maps one raw sample to its normalised feature vector.
    ///
    /// If the fitted PCA carries fewer than `output_dim` components (rank-
    /// deficient training data), the projection is zero-padded to
    /// `output_dim` before normalisation. Samples that project onto the zero
    /// vector (extremely unlikely for real data) receive a deterministic
    /// basis vector so they remain embeddable.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] if the sample has the wrong
    /// raw dimension.
    pub fn apply(&self, sample: &[f64]) -> Result<Vec<f64>, DataError> {
        let mut projected = self.pca.transform(sample)?;
        projected.resize(self.output_dim, 0.0);
        match l2_normalize(&projected) {
            Ok(v) => Ok(v),
            Err(_) => {
                let mut fallback = vec![0.0; self.output_dim];
                fallback[0] = 1.0;
                Ok(fallback)
            }
        }
    }

    /// Maps a whole dataset to its normalised feature representation.
    ///
    /// # Errors
    ///
    /// Propagates per-sample errors.
    pub fn apply_dataset(&self, dataset: &Dataset) -> Result<Dataset, DataError> {
        let samples: Result<Vec<Vec<f64>>, DataError> =
            dataset.samples().iter().map(|s| self.apply(s)).collect();
        Dataset::new(
            dataset.name().to_string(),
            samples?,
            dataset.labels().to_vec(),
        )
    }

    /// Adapts a raw [`SampleSource`] into one that yields this pipeline's
    /// normalised feature vectors, chunk by chunk — the streaming analogue
    /// of [`FeaturePipeline::apply_dataset`]. Labels pass through.
    pub fn stream_features<'a>(
        &'a self,
        source: &'a mut dyn SampleSource,
    ) -> TransformedSource<'a> {
        TransformedSource {
            pipeline: self,
            inner: source,
            raw: SampleChunk::new(),
        }
    }
}

/// A [`SampleSource`] adapter applying a fitted [`FeaturePipeline`] to every
/// sample of an underlying raw source (see
/// [`FeaturePipeline::stream_features`]).
pub struct TransformedSource<'a> {
    pipeline: &'a FeaturePipeline,
    inner: &'a mut dyn SampleSource,
    raw: SampleChunk,
}

impl SampleSource for TransformedSource<'_> {
    fn feature_dim(&self) -> usize {
        self.pipeline.output_dim()
    }

    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }

    fn reset(&mut self) -> Result<(), DataError> {
        self.inner.reset()
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        let n = self.inner.next_chunk(max_samples, &mut self.raw)?;
        chunk.clear();
        for (sample, &label) in self.raw.samples().iter().zip(self.raw.labels()) {
            chunk.push(self.pipeline.apply(sample)?, label);
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetKind;
    use crate::synthetic::{generate_synthetic, SyntheticConfig};

    fn small_dataset() -> Dataset {
        generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 3,
                samples_per_class: 10,
                seed: 5,
            },
        )
        .unwrap()
    }

    #[test]
    fn l2_normalize_basics() {
        let v = l2_normalize(&[3.0, 4.0]).unwrap();
        assert!((v[0] - 0.6).abs() < 1e-12);
        assert!((v[1] - 0.8).abs() < 1e-12);
        assert!(l2_normalize(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn pipeline_produces_normalized_features() {
        let data = small_dataset();
        let pipeline = FeaturePipeline::fit(&data, 16).unwrap();
        assert_eq!(pipeline.output_dim(), 16);
        for s in data.samples().iter().take(5) {
            let f = pipeline.apply(s).unwrap();
            assert_eq!(f.len(), 16);
            let norm: f64 = f.iter().map(|v| v * v).sum();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pipeline_dataset_transform_preserves_labels() {
        let data = small_dataset();
        let pipeline = FeaturePipeline::fit(&data, 8).unwrap();
        let transformed = pipeline.apply_dataset(&data).unwrap();
        assert_eq!(transformed.len(), data.len());
        assert_eq!(transformed.labels(), data.labels());
        assert_eq!(transformed.feature_dim(), 8);
    }

    #[test]
    fn rank_deficient_fit_zero_pads_instead_of_emitting_noise() {
        // 10 samples can carry at most 9 centered directions; a 16-feature
        // pipeline must zero the trailing coordinates, not fill them with
        // degenerate-component noise.
        let data = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 5,
                seed: 11,
            },
        )
        .unwrap();
        let pipeline = FeaturePipeline::fit(&data, 16).unwrap();
        assert!(pipeline.pca().num_components() <= 9);
        let f = pipeline.apply(data.sample(0)).unwrap();
        assert_eq!(f.len(), 16);
        for &v in &f[pipeline.pca().num_components()..] {
            assert_eq!(v, 0.0, "padding coordinates must be exactly zero");
        }
        let norm: f64 = f.iter().map(|v| v * v).sum();
        assert!((norm - 1.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_fit_produces_normalized_features() {
        let data = small_dataset();
        let mut source = crate::stream::InMemorySource::new(&data);
        let pipeline = FeaturePipeline::fit_streaming(&mut source, 8, 7).unwrap();
        assert_eq!(pipeline.output_dim(), 8);
        for s in data.samples().iter().take(5) {
            let f = pipeline.apply(s).unwrap();
            assert_eq!(f.len(), 8);
            let norm: f64 = f.iter().map(|v| v * v).sum();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn stream_features_matches_apply_dataset() {
        let data = small_dataset();
        let pipeline = FeaturePipeline::fit(&data, 8).unwrap();
        let reference = pipeline.apply_dataset(&data).unwrap();
        let mut raw = crate::stream::InMemorySource::new(&data);
        let mut transformed = pipeline.stream_features(&mut raw);
        let streamed = crate::stream::materialize(&mut transformed, "features").unwrap();
        assert_eq!(streamed.samples(), reference.samples());
        assert_eq!(streamed.labels(), reference.labels());
    }

    #[test]
    fn from_pca_validates_width() {
        let data = small_dataset();
        let pipeline = FeaturePipeline::fit(&data, 8).unwrap();
        let pca = pipeline.pca().clone();
        assert!(FeaturePipeline::from_pca(pca.clone(), 8).is_ok());
        assert!(FeaturePipeline::from_pca(pca, 4).is_err());
    }

    #[test]
    fn pipeline_rejects_wrong_dimension() {
        let data = small_dataset();
        let pipeline = FeaturePipeline::fit(&data, 8).unwrap();
        assert!(pipeline.apply(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn features_cluster_by_class() {
        // After PCA + normalisation, a sample should on average be closer to
        // samples of its own class than to other classes.
        let data = small_dataset();
        let pipeline = FeaturePipeline::fit(&data, 16).unwrap();
        let features = pipeline.apply_dataset(&data).unwrap();
        let dist =
            |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum() };
        let c0 = features.indices_of_class(0);
        let c1 = features.indices_of_class(1);
        let mut within = 0.0;
        let mut across = 0.0;
        let mut count = 0.0;
        for i in 0..5 {
            within += dist(features.sample(c0[i]), features.sample(c0[i + 1]));
            across += dist(features.sample(c0[i]), features.sample(c1[i]));
            count += 1.0;
        }
        assert!(within / count < across / count);
    }
}

//! Chunked sample ingestion for out-of-core training.
//!
//! The full-batch training path materialises every sample in a
//! [`crate::Dataset`]; at the "millions of users" scale the ROADMAP targets,
//! that is the binding constraint long before any optimiser runs. This module
//! defines [`SampleSource`] — a rewindable, chunk-at-a-time reader — plus the
//! three reader families the streaming fits consume:
//!
//! * [`InMemorySource`] — adapts an existing [`crate::Dataset`] (the exact
//!   reference path for equivalence tests),
//! * [`crate::SyntheticSource`] — generates surrogate image data on the fly
//!   with O(chunk) resident memory (see `crate::synthetic`),
//! * [`CsvSource`] / [`BinarySource`] — on-disk readers for external data.
//!
//! Every consumer (incremental PCA, mini-batch k-means, the streaming
//! pipeline builds) holds at most one chunk of samples resident, so training
//! memory is `O(chunk_size × dim)` regardless of how many samples the source
//! yields.

use crate::dataset::Dataset;
use crate::error::DataError;
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A reusable buffer holding one chunk of (sample, label) pairs.
///
/// Sources append into it; drivers clear and refill it every iteration so the
/// per-sample `Vec` allocations are recycled instead of reallocated.
#[derive(Debug, Clone, Default)]
pub struct SampleChunk {
    samples: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl SampleChunk {
    /// Creates an empty chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes all samples, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.labels.clear();
    }

    /// Number of samples currently buffered.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the chunk holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The buffered samples.
    pub fn samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// The buffered labels (unlabelled sources push `0`).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Appends one sample with its label.
    pub fn push(&mut self, sample: Vec<f64>, label: usize) {
        self.samples.push(sample);
        self.labels.push(label);
    }
}

/// A rewindable source of labelled samples, read one bounded chunk at a time.
///
/// Implementations must be deterministic: two identical pass sequences over
/// the same source yield identical samples in identical order, which is what
/// makes the streaming fits bit-reproducible.
pub trait SampleSource {
    /// Per-sample feature dimension.
    fn feature_dim(&self) -> usize;

    /// Total sample count when cheaply known (used only for reporting and
    /// pre-sizing, never for correctness).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Rewinds the source to its first sample so another pass can run.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] when the underlying reader cannot rewind.
    fn reset(&mut self) -> Result<(), DataError>;

    /// Clears `chunk` and fills it with up to `max_samples` samples.
    ///
    /// Returns the number of samples appended; `0` means the source is
    /// exhausted for this pass.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] for read failures,
    /// [`DataError::DimensionMismatch`] for malformed records, and
    /// [`DataError::InvalidParameter`] when `max_samples` is zero.
    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError>;
}

/// Runs `f` over every chunk of one pass, reusing a single buffer.
///
/// # Errors
///
/// Propagates source and callback errors.
pub fn for_each_chunk<F>(
    source: &mut dyn SampleSource,
    chunk_size: usize,
    mut f: F,
) -> Result<(), DataError>
where
    F: FnMut(&SampleChunk) -> Result<(), DataError>,
{
    if chunk_size == 0 {
        return Err(DataError::InvalidParameter(
            "chunk_size must be positive".to_string(),
        ));
    }
    let mut chunk = SampleChunk::new();
    loop {
        let n = source.next_chunk(chunk_size, &mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        f(&chunk)?;
    }
}

/// Materialises every sample of one pass into a [`Dataset`] (test and
/// reference-baseline helper — this is exactly the O(N × dim) allocation the
/// streaming path avoids).
///
/// # Errors
///
/// Propagates source errors; an exhausted-from-the-start source yields
/// [`DataError::EmptyDataset`].
pub fn materialize(
    source: &mut dyn SampleSource,
    name: impl Into<String>,
) -> Result<Dataset, DataError> {
    source.reset()?;
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for_each_chunk(source, 1024, |chunk| {
        samples.extend_from_slice(chunk.samples());
        labels.extend_from_slice(chunk.labels());
        Ok(())
    })?;
    Dataset::new(name, samples, labels)
}

/// A [`SampleSource`] over an in-memory [`Dataset`].
#[derive(Debug)]
pub struct InMemorySource<'a> {
    dataset: &'a Dataset,
    cursor: usize,
}

impl<'a> InMemorySource<'a> {
    /// Wraps a dataset.
    pub fn new(dataset: &'a Dataset) -> Self {
        Self { dataset, cursor: 0 }
    }
}

impl SampleSource for InMemorySource<'_> {
    fn feature_dim(&self) -> usize {
        self.dataset.feature_dim()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.dataset.len())
    }

    fn reset(&mut self) -> Result<(), DataError> {
        self.cursor = 0;
        Ok(())
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        if max_samples == 0 {
            return Err(DataError::InvalidParameter(
                "max_samples must be positive".to_string(),
            ));
        }
        chunk.clear();
        let end = (self.cursor + max_samples).min(self.dataset.len());
        for i in self.cursor..end {
            chunk.push(self.dataset.sample(i).to_vec(), self.dataset.labels()[i]);
        }
        let n = end - self.cursor;
        self.cursor = end;
        Ok(n)
    }
}

/// A [`SampleSource`] reading comma-separated floating-point rows from disk.
///
/// Each non-empty line is one sample; when `labeled` the **last** column is
/// parsed as an integer class label. The feature dimension is taken from the
/// first row and enforced on every subsequent row.
#[derive(Debug)]
pub struct CsvSource {
    path: PathBuf,
    reader: BufReader<File>,
    labeled: bool,
    feature_dim: usize,
    line_buf: String,
    line_no: usize,
}

impl CsvSource {
    /// Opens a CSV file and probes the first row for the feature dimension.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] for unreadable files and
    /// [`DataError::EmptyDataset`] for files with no rows.
    pub fn open(path: impl AsRef<Path>, labeled: bool) -> Result<Self, DataError> {
        let path = path.as_ref().to_path_buf();
        let mut source = Self {
            reader: BufReader::new(File::open(&path)?),
            path,
            labeled,
            feature_dim: 0,
            line_buf: String::new(),
            line_no: 0,
        };
        // Probe the first record for its width, then rewind.
        let mut chunk = SampleChunk::new();
        if source.next_chunk(1, &mut chunk)? == 0 {
            return Err(DataError::EmptyDataset);
        }
        source.feature_dim = chunk.samples()[0].len();
        source.reset()?;
        Ok(source)
    }

    fn parse_line(&self, line: &str, chunk: &mut SampleChunk) -> Result<bool, DataError> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(false);
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let (value_fields, label) = if self.labeled {
            let (label_field, values) = fields.split_last().expect("split produced >= 1 field");
            let label = label_field.parse::<usize>().map_err(|_| {
                DataError::Io(format!(
                    "{}:{}: label column {label_field:?} is not a non-negative integer",
                    self.path.display(),
                    self.line_no
                ))
            })?;
            (values, label)
        } else {
            (fields.as_slice(), 0)
        };
        let mut sample = Vec::with_capacity(value_fields.len());
        for field in value_fields {
            sample.push(field.parse::<f64>().map_err(|_| {
                DataError::Io(format!(
                    "{}:{}: field {field:?} is not a number",
                    self.path.display(),
                    self.line_no
                ))
            })?);
        }
        if self.feature_dim != 0 && sample.len() != self.feature_dim {
            return Err(DataError::DimensionMismatch {
                expected: self.feature_dim,
                found: sample.len(),
            });
        }
        chunk.push(sample, label);
        Ok(true)
    }
}

impl SampleSource for CsvSource {
    fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn reset(&mut self) -> Result<(), DataError> {
        self.reader.seek(SeekFrom::Start(0))?;
        self.line_no = 0;
        Ok(())
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        if max_samples == 0 {
            return Err(DataError::InvalidParameter(
                "max_samples must be positive".to_string(),
            ));
        }
        chunk.clear();
        while chunk.len() < max_samples {
            self.line_buf.clear();
            if self.reader.read_line(&mut self.line_buf)? == 0 {
                break;
            }
            self.line_no += 1;
            let line = std::mem::take(&mut self.line_buf);
            let pushed = self.parse_line(&line, chunk)?;
            self.line_buf = line;
            let _ = pushed;
        }
        Ok(chunk.len())
    }
}

/// Magic bytes opening every [`BinarySource`] file.
const BINARY_MAGIC: &[u8; 4] = b"ENQB";

/// Writes samples (and labels) in the fixed-record binary layout
/// [`BinarySource`] reads: a 17-byte header (`ENQB`, u64-LE sample count,
/// u32-LE dim, u8 has-labels flag) followed by one record per sample —
/// `dim` little-endian `f64`s plus, when labelled, a u64-LE label.
///
/// # Errors
///
/// Returns [`DataError::Io`] for write failures and
/// [`DataError::DimensionMismatch`] for ragged samples or a label/sample
/// count mismatch.
pub fn write_binary_dataset(
    path: impl AsRef<Path>,
    samples: &[Vec<f64>],
    labels: Option<&[usize]>,
) -> Result<(), DataError> {
    if samples.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let dim = samples[0].len();
    if let Some(labels) = labels {
        if labels.len() != samples.len() {
            return Err(DataError::DimensionMismatch {
                expected: samples.len(),
                found: labels.len(),
            });
        }
    }
    let mut writer = std::io::BufWriter::new(File::create(path)?);
    writer.write_all(BINARY_MAGIC)?;
    writer.write_all(&(samples.len() as u64).to_le_bytes())?;
    writer.write_all(&(dim as u32).to_le_bytes())?;
    writer.write_all(&[u8::from(labels.is_some())])?;
    for (i, sample) in samples.iter().enumerate() {
        if sample.len() != dim {
            return Err(DataError::DimensionMismatch {
                expected: dim,
                found: sample.len(),
            });
        }
        for v in sample {
            writer.write_all(&v.to_le_bytes())?;
        }
        if let Some(labels) = labels {
            writer.write_all(&(labels[i] as u64).to_le_bytes())?;
        }
    }
    writer.flush()?;
    Ok(())
}

/// A [`SampleSource`] over the fixed-record binary layout produced by
/// [`write_binary_dataset`].
#[derive(Debug)]
pub struct BinarySource {
    reader: BufReader<File>,
    num_samples: u64,
    feature_dim: usize,
    labeled: bool,
    cursor: u64,
}

impl BinarySource {
    /// Header length in bytes: magic + count + dim + label flag.
    const HEADER_LEN: u64 = 4 + 8 + 4 + 1;

    /// Opens a binary sample file and validates its header.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] for unreadable or malformed files.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, DataError> {
        let path = path.as_ref();
        let mut reader = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != BINARY_MAGIC {
            return Err(DataError::Io(format!(
                "{}: not an ENQB binary sample file",
                path.display()
            )));
        }
        let mut u64_buf = [0u8; 8];
        reader.read_exact(&mut u64_buf)?;
        let num_samples = u64::from_le_bytes(u64_buf);
        let mut u32_buf = [0u8; 4];
        reader.read_exact(&mut u32_buf)?;
        let feature_dim = u32::from_le_bytes(u32_buf) as usize;
        let mut flag = [0u8; 1];
        reader.read_exact(&mut flag)?;
        if feature_dim == 0 {
            return Err(DataError::Io(format!(
                "{}: header declares zero-dimensional samples",
                path.display()
            )));
        }
        Ok(Self {
            reader,
            num_samples,
            feature_dim,
            labeled: flag[0] != 0,
            cursor: 0,
        })
    }

    /// Whether each record carries a class label.
    pub fn is_labeled(&self) -> bool {
        self.labeled
    }
}

impl SampleSource for BinarySource {
    fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.num_samples as usize)
    }

    fn reset(&mut self) -> Result<(), DataError> {
        self.reader.seek(SeekFrom::Start(Self::HEADER_LEN))?;
        self.cursor = 0;
        Ok(())
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        if max_samples == 0 {
            return Err(DataError::InvalidParameter(
                "max_samples must be positive".to_string(),
            ));
        }
        chunk.clear();
        let mut f64_buf = [0u8; 8];
        while chunk.len() < max_samples && self.cursor < self.num_samples {
            let mut sample = Vec::with_capacity(self.feature_dim);
            for _ in 0..self.feature_dim {
                self.reader.read_exact(&mut f64_buf)?;
                sample.push(f64::from_le_bytes(f64_buf));
            }
            let label = if self.labeled {
                self.reader.read_exact(&mut f64_buf)?;
                u64::from_le_bytes(f64_buf) as usize
            } else {
                0
            };
            chunk.push(sample, label);
            self.cursor += 1;
        }
        Ok(chunk.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        Dataset::new(
            "toy",
            (0..10)
                .map(|i| vec![i as f64, (i * i) as f64 * 0.5, -(i as f64)])
                .collect(),
            (0..10).map(|i| i % 3).collect(),
        )
        .unwrap()
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("enq_stream_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn in_memory_source_chunks_and_resets() {
        let data = toy_dataset();
        let mut source = InMemorySource::new(&data);
        assert_eq!(source.feature_dim(), 3);
        assert_eq!(source.len_hint(), Some(10));
        let mut chunk = SampleChunk::new();
        assert_eq!(source.next_chunk(4, &mut chunk).unwrap(), 4);
        assert_eq!(chunk.samples()[0], data.sample(0));
        assert_eq!(source.next_chunk(4, &mut chunk).unwrap(), 4);
        assert_eq!(source.next_chunk(4, &mut chunk).unwrap(), 2);
        assert_eq!(source.next_chunk(4, &mut chunk).unwrap(), 0);
        source.reset().unwrap();
        let round_trip = materialize(&mut source, "copy").unwrap();
        assert_eq!(round_trip.samples(), data.samples());
        assert_eq!(round_trip.labels(), data.labels());
    }

    #[test]
    fn for_each_chunk_covers_every_sample_once() {
        let data = toy_dataset();
        let mut source = InMemorySource::new(&data);
        let mut seen = 0usize;
        for_each_chunk(&mut source, 3, |chunk| {
            seen += chunk.len();
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 10);
        assert!(for_each_chunk(&mut source, 0, |_| Ok(())).is_err());
    }

    #[test]
    fn csv_source_round_trips() {
        let data = toy_dataset();
        let path = temp_path("roundtrip.csv");
        let mut text = String::new();
        for (s, l) in data.samples().iter().zip(data.labels()) {
            for v in s {
                text.push_str(&format!("{v},"));
            }
            text.push_str(&format!("{l}\n"));
        }
        std::fs::write(&path, text).unwrap();
        let mut source = CsvSource::open(&path, true).unwrap();
        assert_eq!(source.feature_dim(), 3);
        let copy = materialize(&mut source, "csv").unwrap();
        assert_eq!(copy.labels(), data.labels());
        for (a, b) in copy.samples().iter().zip(data.samples()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        // A second pass after reset yields the same samples.
        source.reset().unwrap();
        let copy2 = materialize(&mut source, "csv2").unwrap();
        assert_eq!(copy.samples(), copy2.samples());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_source_rejects_malformed_rows() {
        let path = temp_path("bad.csv");
        std::fs::write(&path, "1.0,2.0,0\n1.0,oops,1\n").unwrap();
        let mut source = CsvSource::open(&path, true).unwrap();
        let mut chunk = SampleChunk::new();
        let err = source.next_chunk(8, &mut chunk).unwrap_err();
        assert!(matches!(err, DataError::Io(_)), "{err}");

        let ragged = temp_path("ragged.csv");
        std::fs::write(&ragged, "1.0,2.0\n1.0,2.0,3.0\n").unwrap();
        let mut source = CsvSource::open(&ragged, false).unwrap();
        let err = source.next_chunk(8, &mut chunk).unwrap_err();
        assert!(matches!(err, DataError::DimensionMismatch { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&ragged).unwrap();
    }

    #[test]
    fn binary_source_round_trips() {
        let data = toy_dataset();
        let path = temp_path("roundtrip.enqb");
        write_binary_dataset(&path, data.samples(), Some(data.labels())).unwrap();
        let mut source = BinarySource::open(&path).unwrap();
        assert!(source.is_labeled());
        assert_eq!(source.feature_dim(), 3);
        assert_eq!(source.len_hint(), Some(10));
        let copy = materialize(&mut source, "bin").unwrap();
        // f64 round-trip through to_le_bytes is exact.
        assert_eq!(copy.samples(), data.samples());
        assert_eq!(copy.labels(), data.labels());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_source_unlabeled_and_bad_magic() {
        let data = toy_dataset();
        let path = temp_path("unlabeled.enqb");
        write_binary_dataset(&path, data.samples(), None).unwrap();
        let mut source = BinarySource::open(&path).unwrap();
        assert!(!source.is_labeled());
        let copy = materialize(&mut source, "bin").unwrap();
        assert!(copy.labels().iter().all(|&l| l == 0));

        let bad = temp_path("bad.enqb");
        std::fs::write(&bad, b"NOPE............................").unwrap();
        assert!(matches!(BinarySource::open(&bad), Err(DataError::Io(_))));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&bad).unwrap();
    }
}

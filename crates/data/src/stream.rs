//! Chunked sample ingestion for out-of-core training.
//!
//! The full-batch training path materialises every sample in a
//! [`crate::Dataset`]; at the "millions of users" scale the ROADMAP targets,
//! that is the binding constraint long before any optimiser runs. This module
//! defines [`SampleSource`] — a rewindable, chunk-at-a-time reader — plus the
//! three reader families the streaming fits consume:
//!
//! * [`InMemorySource`] — adapts an existing [`crate::Dataset`] (the exact
//!   reference path for equivalence tests),
//! * [`crate::SyntheticSource`] — generates surrogate image data on the fly
//!   with O(chunk) resident memory (see `crate::synthetic`),
//! * [`CsvSource`] / [`BinarySource`] — on-disk readers for external data.
//!
//! Every consumer (incremental PCA, mini-batch k-means, the streaming
//! pipeline builds) holds at most one chunk of samples resident, so training
//! memory is `O(chunk_size × dim)` regardless of how many samples the source
//! yields.

use crate::dataset::Dataset;
use crate::error::DataError;
use std::fs::File;
use std::io::{BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// A reusable buffer holding one chunk of (sample, label) pairs.
///
/// Sources append into it; drivers clear and refill it every iteration so the
/// per-sample `Vec` allocations are recycled instead of reallocated.
#[derive(Debug, Clone, Default)]
pub struct SampleChunk {
    samples: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl SampleChunk {
    /// Creates an empty chunk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes all samples, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.labels.clear();
    }

    /// Number of samples currently buffered.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the chunk holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The buffered samples.
    pub fn samples(&self) -> &[Vec<f64>] {
        &self.samples
    }

    /// The buffered labels (unlabelled sources push `0`).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Appends one sample with its label.
    pub fn push(&mut self, sample: Vec<f64>, label: usize) {
        self.samples.push(sample);
        self.labels.push(label);
    }

    /// Moves every sample of this chunk onto the end of `target`, leaving
    /// this chunk empty. The per-sample `Vec` allocations are moved, not
    /// cloned — this is how the multi-source combinators splice inner-shard
    /// reads into one output chunk without copying samples.
    pub fn drain_into(&mut self, target: &mut SampleChunk) {
        target.samples.append(&mut self.samples);
        target.labels.append(&mut self.labels);
    }
}

/// A rewindable source of labelled samples, read one bounded chunk at a time.
///
/// Implementations must be deterministic: two identical pass sequences over
/// the same source yield identical samples in identical order, which is what
/// makes the streaming fits bit-reproducible.
///
/// `Send` is a supertrait so any source can be handed to the reader thread
/// of a [`crate::ChunkPrefetcher`] — prefetched and synchronous ingestion
/// stay interchangeable for every source.
pub trait SampleSource: Send {
    /// Per-sample feature dimension.
    fn feature_dim(&self) -> usize;

    /// Total sample count when cheaply known (used only for reporting and
    /// pre-sizing, never for correctness).
    fn len_hint(&self) -> Option<usize> {
        None
    }

    /// Rewinds the source to its first sample so another pass can run.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] when the underlying reader cannot rewind.
    fn reset(&mut self) -> Result<(), DataError>;

    /// Clears `chunk` and fills it with up to `max_samples` samples.
    ///
    /// Returns the number of samples appended; `0` means the source is
    /// exhausted for this pass.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] for read failures,
    /// [`DataError::DimensionMismatch`] for malformed records, and
    /// [`DataError::InvalidParameter`] when `max_samples` is zero.
    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError>;
}

/// Runs `f` over every chunk of one pass, reusing a single buffer.
///
/// # Errors
///
/// Propagates source and callback errors.
pub fn for_each_chunk<F>(
    source: &mut dyn SampleSource,
    chunk_size: usize,
    mut f: F,
) -> Result<(), DataError>
where
    F: FnMut(&SampleChunk) -> Result<(), DataError>,
{
    if chunk_size == 0 {
        return Err(DataError::InvalidParameter(
            "chunk_size must be positive".to_string(),
        ));
    }
    let mut chunk = SampleChunk::new();
    loop {
        let n = source.next_chunk(chunk_size, &mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        f(&chunk)?;
    }
}

/// Streams every sample of one pass into a fresh `ENQB` shard at `path`,
/// returning the record count — the compaction primitive behind long-lived
/// traffic accumulators: a ring of many small shards (one per buffer spill)
/// is rewritten as a single contiguous shard without ever materialising the
/// corpus in memory.
///
/// # Errors
///
/// Propagates source errors and [`DataError::Io`] for write failures; a
/// partially-written shard file is removed on error.
pub fn compact_to_shard(
    source: &mut dyn SampleSource,
    path: impl AsRef<Path>,
    labeled: bool,
) -> Result<u64, DataError> {
    let path = path.as_ref();
    let outcome = (|| {
        let mut writer = BinaryDatasetWriter::create(path, source.feature_dim(), labeled)?;
        let mut chunk = SampleChunk::new();
        loop {
            let n = source.next_chunk(1024, &mut chunk)?;
            if n == 0 {
                break;
            }
            for (sample, &label) in chunk.samples().iter().zip(chunk.labels()) {
                writer.append(sample, label)?;
            }
        }
        writer.finish()
    })();
    if outcome.is_err() {
        let _ = std::fs::remove_file(path);
    }
    outcome
}

/// Materialises every sample of one pass into a [`Dataset`] (test and
/// reference-baseline helper — this is exactly the O(N × dim) allocation the
/// streaming path avoids).
///
/// # Errors
///
/// Propagates source errors; an exhausted-from-the-start source yields
/// [`DataError::EmptyDataset`].
pub fn materialize(
    source: &mut dyn SampleSource,
    name: impl Into<String>,
) -> Result<Dataset, DataError> {
    source.reset()?;
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for_each_chunk(source, 1024, |chunk| {
        samples.extend_from_slice(chunk.samples());
        labels.extend_from_slice(chunk.labels());
        Ok(())
    })?;
    Dataset::new(name, samples, labels)
}

/// A [`SampleSource`] over an in-memory [`Dataset`].
#[derive(Debug)]
pub struct InMemorySource<'a> {
    dataset: &'a Dataset,
    cursor: usize,
}

impl<'a> InMemorySource<'a> {
    /// Wraps a dataset.
    pub fn new(dataset: &'a Dataset) -> Self {
        Self { dataset, cursor: 0 }
    }
}

impl SampleSource for InMemorySource<'_> {
    fn feature_dim(&self) -> usize {
        self.dataset.feature_dim()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.dataset.len())
    }

    fn reset(&mut self) -> Result<(), DataError> {
        self.cursor = 0;
        Ok(())
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        if max_samples == 0 {
            return Err(DataError::InvalidParameter(
                "max_samples must be positive".to_string(),
            ));
        }
        chunk.clear();
        let end = (self.cursor + max_samples).min(self.dataset.len());
        for i in self.cursor..end {
            chunk.push(self.dataset.sample(i).to_vec(), self.dataset.labels()[i]);
        }
        let n = end - self.cursor;
        self.cursor = end;
        Ok(n)
    }
}

/// A [`SampleSource`] reading comma-separated floating-point rows from disk.
///
/// Each non-empty line is one sample; when `labeled` the **last** column is
/// parsed as an integer class label. The feature dimension is taken from the
/// first row and enforced on every subsequent row.
#[derive(Debug)]
pub struct CsvSource {
    path: PathBuf,
    reader: BufReader<File>,
    labeled: bool,
    feature_dim: usize,
    line_buf: String,
    line_no: usize,
}

impl CsvSource {
    /// Opens a CSV file and probes the first row for the feature dimension.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] for unreadable files and
    /// [`DataError::EmptyDataset`] for files with no rows.
    pub fn open(path: impl AsRef<Path>, labeled: bool) -> Result<Self, DataError> {
        let path = path.as_ref().to_path_buf();
        let mut source = Self {
            reader: BufReader::new(File::open(&path)?),
            path,
            labeled,
            feature_dim: 0,
            line_buf: String::new(),
            line_no: 0,
        };
        // Probe the first record for its width, then rewind.
        let mut chunk = SampleChunk::new();
        if source.next_chunk(1, &mut chunk)? == 0 {
            return Err(DataError::EmptyDataset);
        }
        source.feature_dim = chunk.samples()[0].len();
        source.reset()?;
        Ok(source)
    }

    fn parse_line(&self, line: &str, chunk: &mut SampleChunk) -> Result<bool, DataError> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(false);
        }
        let fields: Vec<&str> = trimmed.split(',').map(str::trim).collect();
        let (value_fields, label) = if self.labeled {
            let (label_field, values) = fields.split_last().expect("split produced >= 1 field");
            let label = label_field.parse::<usize>().map_err(|_| {
                DataError::Io(format!(
                    "{}:{}: label column {label_field:?} is not a non-negative integer",
                    self.path.display(),
                    self.line_no
                ))
            })?;
            (values, label)
        } else {
            (fields.as_slice(), 0)
        };
        let mut sample = Vec::with_capacity(value_fields.len());
        for field in value_fields {
            sample.push(field.parse::<f64>().map_err(|_| {
                DataError::Io(format!(
                    "{}:{}: field {field:?} is not a number",
                    self.path.display(),
                    self.line_no
                ))
            })?);
        }
        if self.feature_dim != 0 && sample.len() != self.feature_dim {
            return Err(DataError::DimensionMismatch {
                expected: self.feature_dim,
                found: sample.len(),
            });
        }
        chunk.push(sample, label);
        Ok(true)
    }
}

impl SampleSource for CsvSource {
    fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn reset(&mut self) -> Result<(), DataError> {
        self.reader.seek(SeekFrom::Start(0))?;
        self.line_no = 0;
        Ok(())
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        if max_samples == 0 {
            return Err(DataError::InvalidParameter(
                "max_samples must be positive".to_string(),
            ));
        }
        chunk.clear();
        while chunk.len() < max_samples {
            self.line_buf.clear();
            if self.reader.read_line(&mut self.line_buf)? == 0 {
                break;
            }
            self.line_no += 1;
            let line = std::mem::take(&mut self.line_buf);
            let pushed = self.parse_line(&line, chunk)?;
            self.line_buf = line;
            let _ = pushed;
        }
        Ok(chunk.len())
    }
}

/// Magic bytes opening every [`BinarySource`] file.
const BINARY_MAGIC: &[u8; 4] = b"ENQB";

/// A streaming writer for the fixed-record `ENQB` binary layout: a 17-byte
/// header (`ENQB`, u64-LE sample count, u32-LE dim, u8 has-labels flag)
/// followed by one record per sample — `dim` little-endian `f64`s plus, when
/// labelled, a u64-LE label.
///
/// Unlike [`write_binary_dataset`], records are appended one at a time, so a
/// streaming producer (the pipeline's feature-spill stage, an ingestion
/// converter) never materialises the dataset: the header's sample count is
/// back-patched by [`BinaryDatasetWriter::finish`].
#[derive(Debug)]
pub struct BinaryDatasetWriter {
    writer: std::io::BufWriter<File>,
    dim: usize,
    labeled: bool,
    count: u64,
}

impl BinaryDatasetWriter {
    /// Creates the file and writes a header with a zero sample count
    /// (patched on [`BinaryDatasetWriter::finish`]).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] for a zero `dim` and
    /// [`DataError::Io`] for creation/write failures.
    pub fn create(path: impl AsRef<Path>, dim: usize, labeled: bool) -> Result<Self, DataError> {
        if dim == 0 {
            return Err(DataError::InvalidParameter(
                "cannot write zero-dimensional samples".to_string(),
            ));
        }
        let mut writer = std::io::BufWriter::new(File::create(path)?);
        writer.write_all(BINARY_MAGIC)?;
        writer.write_all(&0u64.to_le_bytes())?;
        writer.write_all(&(dim as u32).to_le_bytes())?;
        writer.write_all(&[u8::from(labeled)])?;
        Ok(Self {
            writer,
            dim,
            labeled,
            count: 0,
        })
    }

    /// Appends one record. The label is ignored for unlabelled files.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] for a sample of the wrong
    /// length and [`DataError::Io`] for write failures.
    pub fn append(&mut self, sample: &[f64], label: usize) -> Result<(), DataError> {
        if sample.len() != self.dim {
            return Err(DataError::DimensionMismatch {
                expected: self.dim,
                found: sample.len(),
            });
        }
        for v in sample {
            self.writer.write_all(&v.to_le_bytes())?;
        }
        if self.labeled {
            self.writer.write_all(&(label as u64).to_le_bytes())?;
        }
        self.count += 1;
        Ok(())
    }

    /// Number of records appended so far.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no records have been appended yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Back-patches the header's sample count and flushes; returns the
    /// number of records written.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] when nothing was appended (an
    /// empty `ENQB` file could not be re-opened) and [`DataError::Io`] for
    /// flush/seek failures.
    pub fn finish(mut self) -> Result<u64, DataError> {
        if self.count == 0 {
            return Err(DataError::EmptyDataset);
        }
        self.writer
            .seek(SeekFrom::Start(BINARY_MAGIC.len() as u64))?;
        self.writer.write_all(&self.count.to_le_bytes())?;
        self.writer.flush()?;
        Ok(self.count)
    }
}

/// Writes samples (and labels) in the fixed-record binary layout
/// [`BinarySource`] reads (see [`BinaryDatasetWriter`] for the wire format
/// and the record-at-a-time streaming variant).
///
/// # Errors
///
/// Returns [`DataError::Io`] for write failures and
/// [`DataError::DimensionMismatch`] for ragged samples or a label/sample
/// count mismatch.
pub fn write_binary_dataset(
    path: impl AsRef<Path>,
    samples: &[Vec<f64>],
    labels: Option<&[usize]>,
) -> Result<(), DataError> {
    if samples.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    if let Some(labels) = labels {
        if labels.len() != samples.len() {
            return Err(DataError::DimensionMismatch {
                expected: samples.len(),
                found: labels.len(),
            });
        }
    }
    let mut writer = BinaryDatasetWriter::create(path, samples[0].len(), labels.is_some())?;
    for (i, sample) in samples.iter().enumerate() {
        writer.append(sample, labels.map_or(0, |l| l[i]))?;
    }
    writer.finish()?;
    Ok(())
}

/// Read-only memory mapping of a file via raw `mmap(2)` bindings (the
/// workspace builds offline, so no `libc`/`memmap` crates are available; the
/// C library these symbols live in is linked into every binary anyway).
#[cfg(all(unix, target_pointer_width = "64"))]
mod mapped {
    use std::ffi::c_void;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, length: usize) -> i32;
    }

    const PROT_READ: i32 = 0x1;
    const MAP_PRIVATE: i32 = 0x2;

    /// A read-only, private mapping of one whole file.
    ///
    /// The caller must not truncate the file while the mapping lives (the
    /// kernel would deliver `SIGBUS` on access past the new end) — the
    /// `ENQB` readers only map files they treat as immutable.
    pub struct Mmap {
        ptr: *mut c_void,
        len: usize,
    }

    impl Mmap {
        /// Maps the whole file read-only.
        pub fn map_readonly(file: &File) -> io::Result<Self> {
            let len = file.metadata()?.len();
            if len == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "cannot map an empty file",
                ));
            }
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "file too large"))?;
            // SAFETY: PROT_READ + MAP_PRIVATE over a file descriptor we hold
            // open; the kernel picks the address. Failure is reported as
            // MAP_FAILED (-1), checked below.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { ptr, len })
        }

        /// The mapped bytes.
        pub fn as_slice(&self) -> &[u8] {
            // SAFETY: the mapping is valid for `len` bytes until Drop, and
            // read-only for the lifetime of `self`.
            unsafe { std::slice::from_raw_parts(self.ptr as *const u8, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            // SAFETY: `ptr/len` came from a successful mmap and are unmapped
            // exactly once.
            unsafe {
                munmap(self.ptr, self.len);
            }
        }
    }

    // SAFETY: the mapping is read-only and the raw pointer is only
    // dereferenced through `as_slice`; moving or sharing it across threads
    // is as safe as sharing a `&[u8]`.
    unsafe impl Send for Mmap {}
    unsafe impl Sync for Mmap {}

    impl std::fmt::Debug for Mmap {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mmap").field("len", &self.len).finish()
        }
    }
}

/// How a [`BinarySource`] reads its records.
#[derive(Debug)]
enum BinaryBackend {
    /// Sequential buffered reads (the portable fallback and the explicit
    /// [`BinarySource::open_buffered`] path).
    Buffered(BufReader<File>),
    /// The whole file mapped read-only: a chunk is a bounds-checked slice,
    /// with no syscalls or copies between passes.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped(mapped::Mmap),
}

/// A [`SampleSource`] over the fixed-record binary layout produced by
/// [`write_binary_dataset`] / [`BinaryDatasetWriter`].
///
/// On Unix, [`BinarySource::open`] memory-maps the file: multi-pass
/// streaming fits re-read records as page-cache slices instead of issuing a
/// buffered `read` per `f64`, which the fit-throughput benchmark shows cuts
/// the dominant ingestion cost of disk-backed training. When mapping is
/// unavailable (non-Unix, special files), it falls back to buffered reads;
/// both backends yield **byte-identical** chunks.
#[derive(Debug)]
pub struct BinarySource {
    backend: BinaryBackend,
    num_samples: u64,
    /// On-disk per-record feature width (the record layout).
    file_dim: usize,
    /// Columns served to consumers: `None` yields full-width records,
    /// `Some` yields exactly those columns, in order (strictly increasing
    /// file indices — validated at open).
    columns: Option<Vec<usize>>,
    labeled: bool,
    cursor: u64,
    /// Scratch record buffer for the buffered backend's pruned reads (one
    /// on-disk record; recycled across samples).
    record_buf: Vec<u8>,
}

impl BinarySource {
    /// Header length in bytes: magic + count + dim + label flag.
    const HEADER_LEN: u64 = 4 + 8 + 4 + 1;

    /// Opens a binary sample file, preferring a read-only memory mapping and
    /// falling back to buffered reads where mapping is unavailable.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] for unreadable, malformed, or truncated
    /// files.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, DataError> {
        Self::open_pruned(path, None)
    }

    /// [`BinarySource::open`] restricted to a **column subset**: every
    /// served record contains exactly `columns` (strictly increasing
    /// on-disk indices), so feature-subset pipelines stop materialising
    /// full-width samples. On the mapped backend unselected columns are
    /// never read at all; the buffered backend must still consume the
    /// record's bytes (it is a sequential stream) but decodes only the
    /// selected ones. Both backends serve chunks **bit-identical** to
    /// reading full-width records and pruning post hoc.
    ///
    /// # Errors
    ///
    /// Everything [`BinarySource::open`] returns, plus
    /// [`DataError::InvalidParameter`] for an empty, unsorted, duplicated,
    /// or out-of-range column list.
    pub fn open_with_columns(
        path: impl AsRef<Path>,
        columns: Vec<usize>,
    ) -> Result<Self, DataError> {
        Self::open_pruned(path, Some(columns))
    }

    fn open_pruned(path: impl AsRef<Path>, columns: Option<Vec<usize>>) -> Result<Self, DataError> {
        let path = path.as_ref();
        let mut source = Self::open_buffered_pruned(path, columns)?;
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            let BinaryBackend::Buffered(reader) = &source.backend else {
                unreachable!("open_buffered builds a buffered backend");
            };
            if let Ok(map) = mapped::Mmap::map_readonly(reader.get_ref()) {
                // open_buffered already validated the header fits the file
                // length; re-check against the actual mapping so chunk
                // slicing can never run off the end even if the two lengths
                // disagree (e.g. the file shrank between open and map).
                let needed = (Self::HEADER_LEN as u128)
                    + (source.num_samples as u128) * (source.record_len() as u128);
                if (map.as_slice().len() as u128) >= needed {
                    source.backend = BinaryBackend::Mapped(map);
                }
            }
        }
        Ok(source)
    }

    /// Opens a binary sample file with the sequential buffered backend only
    /// (no memory mapping) — the reference path for byte-identicality tests
    /// and ingestion benchmarks.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::Io`] for unreadable, malformed, or truncated
    /// files (the header's sample count must fit in the file, so multi-pass
    /// training fails at open instead of mid-stream).
    pub fn open_buffered(path: impl AsRef<Path>) -> Result<Self, DataError> {
        Self::open_buffered_pruned(path, None)
    }

    /// [`BinarySource::open_with_columns`] on the buffered backend only.
    ///
    /// # Errors
    ///
    /// Same as [`BinarySource::open_with_columns`].
    pub fn open_buffered_with_columns(
        path: impl AsRef<Path>,
        columns: Vec<usize>,
    ) -> Result<Self, DataError> {
        Self::open_buffered_pruned(path, Some(columns))
    }

    fn open_buffered_pruned(
        path: impl AsRef<Path>,
        columns: Option<Vec<usize>>,
    ) -> Result<Self, DataError> {
        let path = path.as_ref();
        let mut reader = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 4];
        reader.read_exact(&mut magic)?;
        if &magic != BINARY_MAGIC {
            return Err(DataError::Io(format!(
                "{}: not an ENQB binary sample file",
                path.display()
            )));
        }
        let mut u64_buf = [0u8; 8];
        reader.read_exact(&mut u64_buf)?;
        let num_samples = u64::from_le_bytes(u64_buf);
        let mut u32_buf = [0u8; 4];
        reader.read_exact(&mut u32_buf)?;
        let file_dim = u32::from_le_bytes(u32_buf) as usize;
        let mut flag = [0u8; 1];
        reader.read_exact(&mut flag)?;
        if file_dim == 0 {
            return Err(DataError::Io(format!(
                "{}: header declares zero-dimensional samples",
                path.display()
            )));
        }
        if let Some(columns) = &columns {
            if columns.is_empty() {
                return Err(DataError::InvalidParameter(
                    "column selection must name at least one column".to_string(),
                ));
            }
            if !columns.windows(2).all(|w| w[0] < w[1]) {
                return Err(DataError::InvalidParameter(
                    "column selection must be strictly increasing".to_string(),
                ));
            }
            if *columns.last().expect("non-empty") >= file_dim {
                return Err(DataError::InvalidParameter(format!(
                    "column {} out of range for {file_dim}-wide records",
                    columns.last().expect("non-empty")
                )));
            }
        }
        let labeled = flag[0] != 0;
        let record_len = file_dim * 8 + usize::from(labeled) * 8;
        let needed = Self::HEADER_LEN as u128 + num_samples as u128 * record_len as u128;
        let actual = reader.get_ref().metadata()?.len() as u128;
        if actual < needed {
            return Err(DataError::Io(format!(
                "{}: file is truncated ({actual} bytes, header promises {needed})",
                path.display(),
            )));
        }
        Ok(Self {
            backend: BinaryBackend::Buffered(reader),
            num_samples,
            file_dim,
            columns,
            labeled,
            cursor: 0,
            record_buf: Vec::new(),
        })
    }

    /// Whether each record carries a class label.
    pub fn is_labeled(&self) -> bool {
        self.labeled
    }

    /// The column subset this source serves (`None` = full-width records).
    pub fn selected_columns(&self) -> Option<&[usize]> {
        self.columns.as_deref()
    }

    /// Whether records are served from a memory mapping (false = buffered
    /// fallback).
    pub fn is_mapped(&self) -> bool {
        match self.backend {
            BinaryBackend::Buffered(_) => false,
            #[cfg(all(unix, target_pointer_width = "64"))]
            BinaryBackend::Mapped(_) => true,
        }
    }

    /// Bytes per on-disk record (always full width — pruning changes what
    /// is decoded, never the file layout).
    fn record_len(&self) -> usize {
        self.file_dim * 8 + usize::from(self.labeled) * 8
    }
}

/// Decodes the served columns of one on-disk record into a fresh sample.
fn decode_record_sample(record: &[u8], file_dim: usize, columns: Option<&[usize]>) -> Vec<f64> {
    match columns {
        None => record[..file_dim * 8]
            .chunks_exact(8)
            .map(|v| f64::from_le_bytes(v.try_into().expect("8-byte chunk")))
            .collect(),
        Some(columns) => columns
            .iter()
            .map(|&c| {
                let at = c * 8;
                f64::from_le_bytes(record[at..at + 8].try_into().expect("8-byte column"))
            })
            .collect(),
    }
}

/// Decodes the label field of one on-disk record (0 when unlabelled).
fn decode_record_label(record: &[u8], file_dim: usize, labeled: bool) -> usize {
    if labeled {
        let at = file_dim * 8;
        u64::from_le_bytes(record[at..at + 8].try_into().expect("8-byte label")) as usize
    } else {
        0
    }
}

impl SampleSource for BinarySource {
    fn feature_dim(&self) -> usize {
        self.columns
            .as_ref()
            .map_or(self.file_dim, |columns| columns.len())
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.num_samples as usize)
    }

    fn reset(&mut self) -> Result<(), DataError> {
        if let BinaryBackend::Buffered(reader) = &mut self.backend {
            reader.seek(SeekFrom::Start(Self::HEADER_LEN))?;
        }
        self.cursor = 0;
        Ok(())
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        if max_samples == 0 {
            return Err(DataError::InvalidParameter(
                "max_samples must be positive".to_string(),
            ));
        }
        chunk.clear();
        let record_len = self.record_len();
        // Disjoint field borrows: the backend is driven mutably while the
        // column selection is read immutably.
        let Self {
            backend,
            num_samples,
            file_dim,
            columns,
            labeled,
            cursor,
            record_buf,
        } = self;
        let columns = columns.as_deref();
        match backend {
            BinaryBackend::Buffered(reader) => {
                record_buf.resize(record_len, 0);
                while chunk.len() < max_samples && *cursor < *num_samples {
                    // One sequential read per record; only the selected
                    // columns are decoded into f64s.
                    reader.read_exact(record_buf)?;
                    chunk.push(
                        decode_record_sample(record_buf, *file_dim, columns),
                        decode_record_label(record_buf, *file_dim, *labeled),
                    );
                    *cursor += 1;
                }
            }
            #[cfg(all(unix, target_pointer_width = "64"))]
            BinaryBackend::Mapped(map) => {
                let bytes = map.as_slice();
                let end = (*cursor + max_samples as u64).min(*num_samples);
                for i in *cursor..end {
                    // In bounds: `open` validated the mapping covers every
                    // record the header promises. With a column selection,
                    // unselected bytes of the record are never touched.
                    let at = Self::HEADER_LEN as usize + (i as usize) * record_len;
                    let record = &bytes[at..at + record_len];
                    chunk.push(
                        decode_record_sample(record, *file_dim, columns),
                        decode_record_label(record, *file_dim, *labeled),
                    );
                }
                *cursor = end;
            }
        }
        Ok(chunk.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        Dataset::new(
            "toy",
            (0..10)
                .map(|i| vec![i as f64, (i * i) as f64 * 0.5, -(i as f64)])
                .collect(),
            (0..10).map(|i| i % 3).collect(),
        )
        .unwrap()
    }

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("enq_stream_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn in_memory_source_chunks_and_resets() {
        let data = toy_dataset();
        let mut source = InMemorySource::new(&data);
        assert_eq!(source.feature_dim(), 3);
        assert_eq!(source.len_hint(), Some(10));
        let mut chunk = SampleChunk::new();
        assert_eq!(source.next_chunk(4, &mut chunk).unwrap(), 4);
        assert_eq!(chunk.samples()[0], data.sample(0));
        assert_eq!(source.next_chunk(4, &mut chunk).unwrap(), 4);
        assert_eq!(source.next_chunk(4, &mut chunk).unwrap(), 2);
        assert_eq!(source.next_chunk(4, &mut chunk).unwrap(), 0);
        source.reset().unwrap();
        let round_trip = materialize(&mut source, "copy").unwrap();
        assert_eq!(round_trip.samples(), data.samples());
        assert_eq!(round_trip.labels(), data.labels());
    }

    #[test]
    fn for_each_chunk_covers_every_sample_once() {
        let data = toy_dataset();
        let mut source = InMemorySource::new(&data);
        let mut seen = 0usize;
        for_each_chunk(&mut source, 3, |chunk| {
            seen += chunk.len();
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 10);
        assert!(for_each_chunk(&mut source, 0, |_| Ok(())).is_err());
    }

    #[test]
    fn csv_source_round_trips() {
        let data = toy_dataset();
        let path = temp_path("roundtrip.csv");
        let mut text = String::new();
        for (s, l) in data.samples().iter().zip(data.labels()) {
            for v in s {
                text.push_str(&format!("{v},"));
            }
            text.push_str(&format!("{l}\n"));
        }
        std::fs::write(&path, text).unwrap();
        let mut source = CsvSource::open(&path, true).unwrap();
        assert_eq!(source.feature_dim(), 3);
        let copy = materialize(&mut source, "csv").unwrap();
        assert_eq!(copy.labels(), data.labels());
        for (a, b) in copy.samples().iter().zip(data.samples()) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        // A second pass after reset yields the same samples.
        source.reset().unwrap();
        let copy2 = materialize(&mut source, "csv2").unwrap();
        assert_eq!(copy.samples(), copy2.samples());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn csv_source_rejects_malformed_rows() {
        let path = temp_path("bad.csv");
        std::fs::write(&path, "1.0,2.0,0\n1.0,oops,1\n").unwrap();
        let mut source = CsvSource::open(&path, true).unwrap();
        let mut chunk = SampleChunk::new();
        let err = source.next_chunk(8, &mut chunk).unwrap_err();
        assert!(matches!(err, DataError::Io(_)), "{err}");

        let ragged = temp_path("ragged.csv");
        std::fs::write(&ragged, "1.0,2.0\n1.0,2.0,3.0\n").unwrap();
        let mut source = CsvSource::open(&ragged, false).unwrap();
        let err = source.next_chunk(8, &mut chunk).unwrap_err();
        assert!(matches!(err, DataError::DimensionMismatch { .. }), "{err}");
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&ragged).unwrap();
    }

    #[test]
    fn binary_source_round_trips() {
        let data = toy_dataset();
        let path = temp_path("roundtrip.enqb");
        write_binary_dataset(&path, data.samples(), Some(data.labels())).unwrap();
        let mut source = BinarySource::open(&path).unwrap();
        assert!(source.is_labeled());
        assert_eq!(source.feature_dim(), 3);
        assert_eq!(source.len_hint(), Some(10));
        let copy = materialize(&mut source, "bin").unwrap();
        // f64 round-trip through to_le_bytes is exact.
        assert_eq!(copy.samples(), data.samples());
        assert_eq!(copy.labels(), data.labels());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapped_and_buffered_backends_are_byte_identical() {
        let data = toy_dataset();
        let path = temp_path("backends.enqb");
        write_binary_dataset(&path, data.samples(), Some(data.labels())).unwrap();
        let mut mapped = BinarySource::open(&path).unwrap();
        let mut buffered = BinarySource::open_buffered(&path).unwrap();
        assert!(!buffered.is_mapped());
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert!(mapped.is_mapped(), "regular files must map on 64-bit unix");
        // Identical chunking across several chunk sizes, bit for bit —
        // including a reset between passes.
        for chunk_size in [1, 3, 4, 64] {
            mapped.reset().unwrap();
            buffered.reset().unwrap();
            let mut a = SampleChunk::new();
            let mut b = SampleChunk::new();
            loop {
                let na = mapped.next_chunk(chunk_size, &mut a).unwrap();
                let nb = buffered.next_chunk(chunk_size, &mut b).unwrap();
                assert_eq!(na, nb);
                assert_eq!(a.labels(), b.labels());
                for (x, y) in a.samples().iter().zip(b.samples()) {
                    for (p, q) in x.iter().zip(y) {
                        assert_eq!(p.to_bits(), q.to_bits());
                    }
                }
                if na == 0 {
                    break;
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn column_pruning_matches_post_hoc_pruning_bit_for_bit() {
        let data = toy_dataset();
        let path = temp_path("pruned.enqb");
        write_binary_dataset(&path, data.samples(), Some(data.labels())).unwrap();
        for columns in [vec![0], vec![2], vec![0, 2], vec![0, 1, 2]] {
            for buffered_only in [false, true] {
                let (mut pruned, mut full) = if buffered_only {
                    (
                        BinarySource::open_buffered_with_columns(&path, columns.clone()).unwrap(),
                        BinarySource::open_buffered(&path).unwrap(),
                    )
                } else {
                    (
                        BinarySource::open_with_columns(&path, columns.clone()).unwrap(),
                        BinarySource::open(&path).unwrap(),
                    )
                };
                assert_eq!(pruned.selected_columns(), Some(columns.as_slice()));
                assert_eq!(pruned.feature_dim(), columns.len());
                for chunk_size in [1, 3, 64] {
                    pruned.reset().unwrap();
                    full.reset().unwrap();
                    let mut a = SampleChunk::new();
                    let mut b = SampleChunk::new();
                    loop {
                        let na = pruned.next_chunk(chunk_size, &mut a).unwrap();
                        let nb = full.next_chunk(chunk_size, &mut b).unwrap();
                        assert_eq!(na, nb);
                        assert_eq!(a.labels(), b.labels());
                        for (x, y) in a.samples().iter().zip(b.samples()) {
                            // Post-hoc pruning of the full-width record.
                            let reference: Vec<f64> = columns.iter().map(|&c| y[c]).collect();
                            assert_eq!(x.len(), reference.len());
                            for (p, q) in x.iter().zip(&reference) {
                                assert_eq!(p.to_bits(), q.to_bits());
                            }
                        }
                        if na == 0 {
                            break;
                        }
                    }
                }
            }
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn column_pruning_rejects_bad_selections() {
        let data = toy_dataset();
        let path = temp_path("pruned_bad.enqb");
        write_binary_dataset(&path, data.samples(), Some(data.labels())).unwrap();
        for bad in [vec![], vec![1, 0], vec![1, 1], vec![3], vec![0, 7]] {
            let err = BinarySource::open_with_columns(&path, bad.clone()).unwrap_err();
            assert!(
                matches!(err, DataError::InvalidParameter(_)),
                "{bad:?}: {err}"
            );
            let err = BinarySource::open_buffered_with_columns(&path, bad.clone()).unwrap_err();
            assert!(
                matches!(err, DataError::InvalidParameter(_)),
                "{bad:?}: {err}"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_writer_streams_records_and_patches_the_count() {
        let data = toy_dataset();
        let path = temp_path("writer.enqb");
        let mut writer = BinaryDatasetWriter::create(&path, 3, true).unwrap();
        assert!(writer.is_empty());
        for (s, &l) in data.samples().iter().zip(data.labels()) {
            writer.append(s, l).unwrap();
        }
        assert_eq!(writer.len(), 10);
        assert_eq!(writer.finish().unwrap(), 10);
        let mut source = BinarySource::open(&path).unwrap();
        assert_eq!(source.len_hint(), Some(10));
        let copy = materialize(&mut source, "writer").unwrap();
        assert_eq!(copy.samples(), data.samples());
        assert_eq!(copy.labels(), data.labels());
        std::fs::remove_file(&path).unwrap();

        // Ragged samples and empty finishes are rejected.
        let bad = temp_path("writer_bad.enqb");
        let mut writer = BinaryDatasetWriter::create(&bad, 3, false).unwrap();
        assert!(matches!(
            writer.append(&[1.0, 2.0], 0),
            Err(DataError::DimensionMismatch { .. })
        ));
        assert!(matches!(writer.finish(), Err(DataError::EmptyDataset)));
        assert!(BinaryDatasetWriter::create(&bad, 0, false).is_err());
        std::fs::remove_file(&bad).unwrap();
    }

    #[test]
    fn truncated_binary_files_are_rejected_at_open_by_both_backends() {
        let data = toy_dataset();
        let path = temp_path("truncated.enqb");
        write_binary_dataset(&path, data.samples(), Some(data.labels())).unwrap();
        // Chop the last record in half: the header still promises 10.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 12]).unwrap();
        let err = BinarySource::open(&path).unwrap_err();
        assert!(matches!(err, DataError::Io(msg) if msg.contains("truncated")));
        let err = BinarySource::open_buffered(&path).unwrap_err();
        assert!(matches!(err, DataError::Io(msg) if msg.contains("truncated")));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn binary_source_unlabeled_and_bad_magic() {
        let data = toy_dataset();
        let path = temp_path("unlabeled.enqb");
        write_binary_dataset(&path, data.samples(), None).unwrap();
        let mut source = BinarySource::open(&path).unwrap();
        assert!(!source.is_labeled());
        let copy = materialize(&mut source, "bin").unwrap();
        assert!(copy.labels().iter().all(|&l| l == 0));

        let bad = temp_path("bad.enqb");
        std::fs::write(&bad, b"NOPE............................").unwrap();
        assert!(matches!(BinarySource::open(&bad), Err(DataError::Io(_))));
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&bad).unwrap();
    }
}

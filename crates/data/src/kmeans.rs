//! k-means clustering (Lloyd's algorithm with k-means++ initialisation).
//!
//! EnQode partitions each dataset into `k` clusters and trains one ansatz per
//! cluster mean. The paper chooses `k` such that the state fidelity between
//! every sample and its nearest cluster mean is at least 0.95;
//! [`fit_with_fidelity_threshold`] implements exactly that selection rule.

use crate::error::DataError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a single k-means fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the total centroid movement.
    pub tolerance: f64,
    /// RNG seed for the k-means++ initialisation.
    pub seed: u64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            max_iterations: 100,
            tolerance: 1e-8,
            seed: 17,
        }
    }
}

/// A fitted k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansModel {
    centroids: Vec<Vec<f64>>,
    assignments: Vec<usize>,
    inertia: f64,
    iterations: usize,
}

impl KMeansModel {
    /// Returns the cluster centroids (the "cluster mean samples" ⃗cᵢ of the
    /// paper).
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Returns the number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Returns the cluster index assigned to each training sample.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Returns the sum of squared distances of samples to their centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Returns the number of Lloyd iterations performed.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Returns the nearest centroid index and its squared Euclidean distance
    /// for a new sample.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] for a sample of the wrong
    /// length.
    pub fn nearest_centroid(&self, sample: &[f64]) -> Result<(usize, f64), DataError> {
        let dim = self.centroids[0].len();
        if sample.len() != dim {
            return Err(DataError::DimensionMismatch {
                expected: dim,
                found: sample.len(),
            });
        }
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = squared_distance(sample, c);
            if d < best_dist {
                best_dist = d;
                best = i;
            }
        }
        Ok((best, best_dist))
    }
}

pub(crate) fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means on the samples.
///
/// # Errors
///
/// Returns [`DataError::EmptyDataset`] when no samples are supplied,
/// [`DataError::InvalidParameter`] when `k` is zero or exceeds the sample
/// count, and [`DataError::DimensionMismatch`] for ragged samples.
///
/// # Examples
///
/// ```
/// use enq_data::{kmeans, KMeansConfig};
///
/// let samples = vec![
///     vec![0.0, 0.0], vec![0.1, 0.0], vec![5.0, 5.0], vec![5.1, 4.9],
/// ];
/// let model = kmeans(&samples, &KMeansConfig { k: 2, ..Default::default() })?;
/// assert_eq!(model.num_clusters(), 2);
/// # Ok::<(), enq_data::DataError>(())
/// ```
pub fn kmeans(samples: &[Vec<f64>], config: &KMeansConfig) -> Result<KMeansModel, DataError> {
    if samples.is_empty() {
        return Err(DataError::EmptyDataset);
    }
    let dim = samples[0].len();
    for s in samples {
        if s.len() != dim {
            return Err(DataError::DimensionMismatch {
                expected: dim,
                found: s.len(),
            });
        }
    }
    if config.k == 0 || config.k > samples.len() {
        return Err(DataError::InvalidParameter(format!(
            "k = {} is invalid for {} samples",
            config.k,
            samples.len()
        )));
    }

    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut centroids = kmeans_plus_plus_init(samples, config.k, &mut rng);
    let mut assignments = vec![0usize; samples.len()];
    let mut iterations = 0usize;

    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // Assignment step.
        for (i, s) in samples.iter().enumerate() {
            let mut best = 0usize;
            let mut best_dist = f64::INFINITY;
            for (c_idx, c) in centroids.iter().enumerate() {
                let d = squared_distance(s, c);
                if d < best_dist {
                    best_dist = d;
                    best = c_idx;
                }
            }
            assignments[i] = best;
        }
        // Update step.
        let mut new_centroids = vec![vec![0.0; dim]; config.k];
        let mut counts = vec![0usize; config.k];
        for (s, &a) in samples.iter().zip(assignments.iter()) {
            counts[a] += 1;
            for (nc, v) in new_centroids[a].iter_mut().zip(s.iter()) {
                *nc += v;
            }
        }
        for (c_idx, count) in counts.iter().enumerate() {
            if *count == 0 {
                // Re-seed an empty cluster with the sample farthest from its
                // centroid.
                let far = samples
                    .iter()
                    .enumerate()
                    .max_by(|(ia, a), (ib, b)| {
                        let da = squared_distance(a, &centroids[assignments[*ia]]);
                        let db = squared_distance(b, &centroids[assignments[*ib]]);
                        da.partial_cmp(&db).expect("finite distances")
                    })
                    .map(|(i, _)| i)
                    .expect("samples is non-empty");
                new_centroids[c_idx] = samples[far].clone();
            } else {
                for v in new_centroids[c_idx].iter_mut() {
                    *v /= *count as f64;
                }
            }
        }
        let movement: f64 = centroids
            .iter()
            .zip(new_centroids.iter())
            .map(|(a, b)| squared_distance(a, b))
            .sum();
        centroids = new_centroids;
        if movement < config.tolerance {
            break;
        }
    }

    // Final assignment + inertia.
    let mut inertia = 0.0;
    for (i, s) in samples.iter().enumerate() {
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for (c_idx, c) in centroids.iter().enumerate() {
            let d = squared_distance(s, c);
            if d < best_dist {
                best_dist = d;
                best = c_idx;
            }
        }
        assignments[i] = best;
        inertia += best_dist;
    }

    Ok(KMeansModel {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// k-means++ seeding: each new centroid is drawn with probability
/// proportional to the squared distance from the nearest existing centroid.
pub(crate) fn kmeans_plus_plus_init(
    samples: &[Vec<f64>],
    k: usize,
    rng: &mut StdRng,
) -> Vec<Vec<f64>> {
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(samples[rng.gen_range(0..samples.len())].clone());
    while centroids.len() < k {
        let distances: Vec<f64> = samples
            .iter()
            .map(|s| {
                centroids
                    .iter()
                    .map(|c| squared_distance(s, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = distances.iter().sum();
        if total <= 0.0 {
            // All samples coincide with existing centroids; duplicate one.
            centroids.push(samples[rng.gen_range(0..samples.len())].clone());
            continue;
        }
        let mut threshold = rng.gen_range(0.0..total);
        let mut chosen = samples.len() - 1;
        for (i, &d) in distances.iter().enumerate() {
            if threshold < d {
                chosen = i;
                break;
            }
            threshold -= d;
        }
        centroids.push(samples[chosen].clone());
    }
    centroids
}

/// The cosine-squared similarity `⟨x̂, ĉ⟩²` between a sample and a centroid,
/// which equals the state fidelity of their amplitude-embedded states.
pub fn embedding_fidelity(sample: &[f64], centroid: &[f64]) -> f64 {
    let dot: f64 = sample.iter().zip(centroid.iter()).map(|(a, b)| a * b).sum();
    let na: f64 = sample.iter().map(|v| v * v).sum::<f64>().sqrt();
    let nb: f64 = centroid.iter().map(|v| v * v).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    let cos = dot / (na * nb);
    cos * cos
}

/// Fits k-means with the smallest `k` (scanning upward) such that the
/// embedding fidelity between every sample and its nearest centroid is at
/// least `threshold`, as prescribed by the paper's methodology (0.95).
///
/// If no `k ≤ max_k` reaches the threshold, the model for `max_k` is
/// returned.
///
/// # Errors
///
/// Propagates [`kmeans`] errors and rejects thresholds outside `(0, 1]`.
pub fn fit_with_fidelity_threshold(
    samples: &[Vec<f64>],
    threshold: f64,
    max_k: usize,
    seed: u64,
) -> Result<KMeansModel, DataError> {
    if !(0.0..=1.0).contains(&threshold) || threshold == 0.0 {
        return Err(DataError::InvalidParameter(format!(
            "fidelity threshold {threshold} must be in (0, 1]"
        )));
    }
    if max_k == 0 {
        return Err(DataError::InvalidParameter(
            "max_k must be positive".to_string(),
        ));
    }
    let max_k = max_k.min(samples.len());
    let mut k = 1usize;
    let best = loop {
        let model = kmeans(
            samples,
            &KMeansConfig {
                k,
                seed,
                ..KMeansConfig::default()
            },
        )?;
        let min_fidelity = samples
            .iter()
            .zip(model.assignments().iter())
            .map(|(s, &a)| embedding_fidelity(s, &model.centroids()[a]))
            .fold(f64::INFINITY, f64::min);
        if min_fidelity >= threshold || k >= max_k {
            break model;
        }
        // Grow k geometrically-ish to keep the scan cheap on large datasets.
        k = (k + (k / 2).max(1)).min(max_k);
    };
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut out = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.01;
            out.push(vec![0.0 + t, 0.0 - t]);
            out.push(vec![10.0 - t, 10.0 + t]);
            out.push(vec![-10.0 + t, 10.0 - t]);
        }
        out
    }

    #[test]
    fn separates_well_separated_blobs() {
        let samples = blobs();
        let model = kmeans(
            &samples,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(model.num_clusters(), 3);
        // Samples 0, 1, 2 belong to three different blobs.
        let a = model.assignments()[0];
        let b = model.assignments()[1];
        let c = model.assignments()[2];
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
        assert!(model.inertia() < 1.0);
    }

    #[test]
    fn nearest_centroid_prediction() {
        let samples = blobs();
        let model = kmeans(
            &samples,
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let (cluster, dist) = model.nearest_centroid(&[9.8, 10.2]).unwrap();
        assert_eq!(cluster, model.assignments()[1]);
        assert!(dist < 1.0);
        assert!(model.nearest_centroid(&[1.0]).is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let samples = blobs();
        assert!(kmeans(
            &samples,
            &KMeansConfig {
                k: 0,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(
            &samples,
            &KMeansConfig {
                k: samples.len() + 1,
                ..Default::default()
            }
        )
        .is_err());
        assert!(kmeans(&[], &KMeansConfig::default()).is_err());
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let samples = vec![vec![1.0, 1.0], vec![3.0, 5.0]];
        let model = kmeans(
            &samples,
            &KMeansConfig {
                k: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((model.centroids()[0][0] - 2.0).abs() < 1e-9);
        assert!((model.centroids()[0][1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = blobs();
        let cfg = KMeansConfig {
            k: 3,
            seed: 5,
            ..Default::default()
        };
        let a = kmeans(&samples, &cfg).unwrap();
        let b = kmeans(&samples, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn embedding_fidelity_properties() {
        assert!((embedding_fidelity(&[1.0, 0.0], &[2.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!(embedding_fidelity(&[1.0, 0.0], &[0.0, 1.0]) < 1e-12);
        let f = embedding_fidelity(&[1.0, 1.0], &[1.0, 0.0]);
        assert!((f - 0.5).abs() < 1e-12);
        assert_eq!(embedding_fidelity(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn fidelity_threshold_selection_grows_k() {
        // Two tight, nearly-orthogonal directions: k = 1 cannot reach a high
        // threshold, k = 2 can.
        let mut samples = Vec::new();
        for i in 0..10 {
            let eps = i as f64 * 0.001;
            samples.push(vec![1.0, eps]);
            samples.push(vec![eps, 1.0]);
        }
        let model = fit_with_fidelity_threshold(&samples, 0.95, 8, 3).unwrap();
        assert!(model.num_clusters() >= 2);
        let min_f = samples
            .iter()
            .zip(model.assignments().iter())
            .map(|(s, &a)| embedding_fidelity(s, &model.centroids()[a]))
            .fold(f64::INFINITY, f64::min);
        assert!(min_f >= 0.95);
    }

    #[test]
    fn fidelity_threshold_validates_inputs() {
        let samples = blobs();
        assert!(fit_with_fidelity_threshold(&samples, 0.0, 4, 1).is_err());
        assert!(fit_with_fidelity_threshold(&samples, 1.5, 4, 1).is_err());
        assert!(fit_with_fidelity_threshold(&samples, 0.9, 0, 1).is_err());
    }
}

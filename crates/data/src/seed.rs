//! Scheduling-invariant seed derivation.

/// The SplitMix64 finaliser: a bijective avalanche over a 64-bit state.
///
/// Every component that derives an independent RNG stream from a base seed
/// plus structural coordinates (batch index, class, sample index, restart)
/// folds its coordinates into `state` and finalises with this one function —
/// never with thread or scheduling identifiers — which is what keeps
/// parallel training bit-identical to sequential runs.
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 64-bit golden-ratio increment conventionally used to decorrelate
/// nearby integer coordinates before [`splitmix64`].
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finaliser_avalanches_and_is_deterministic() {
        assert_eq!(splitmix64(42), splitmix64(42));
        // Neighbouring states map far apart.
        let a = splitmix64(1);
        let b = splitmix64(2);
        assert_ne!(a, b);
        assert!((a ^ b).count_ones() > 10, "weak avalanche: {a:x} vs {b:x}");
        // Golden-gamma salting decorrelates small indices.
        let s1 = splitmix64(7 ^ 1u64.wrapping_mul(GOLDEN_GAMMA));
        let s2 = splitmix64(7 ^ 2u64.wrapping_mul(GOLDEN_GAMMA));
        assert_ne!(s1, s2);
    }
}

//! Error types for the classical-data substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by dataset generation, PCA, and clustering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// The dataset or sample collection was empty.
    EmptyDataset,
    /// Two samples (or a sample and a model) had different feature counts.
    DimensionMismatch {
        /// Expected feature count.
        expected: usize,
        /// Found feature count.
        found: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// More principal components were requested than the data supports: the
    /// centered sample matrix has fewer non-negligible directions of variance
    /// (e.g. zero-variance features, duplicated samples, or fewer samples
    /// than components).
    RankDeficient {
        /// Number of components requested.
        requested: usize,
        /// Effective rank of the centered data.
        effective: usize,
    },
    /// An ingestion source (file, stream) failed or produced malformed data.
    Io(String),
    /// An underlying linear-algebra routine failed.
    Linalg(enq_linalg::LinalgError),
    /// A streaming pass was cancelled cooperatively (see
    /// `enq_parallel::CancelToken`): not a data failure — the consumer asked
    /// the pass to wind down early.
    Cancelled,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EmptyDataset => write!(f, "dataset contains no samples"),
            DataError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, found {found}"
                )
            }
            DataError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DataError::RankDeficient {
                requested,
                effective,
            } => write!(
                f,
                "requested {requested} principal components but the centered data \
                 has effective rank {effective}"
            ),
            DataError::Io(msg) => write!(f, "ingestion error: {msg}"),
            DataError::Linalg(e) => write!(f, "linear algebra error: {e}"),
            DataError::Cancelled => write!(f, "the streaming pass was cancelled"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<enq_linalg::LinalgError> for DataError {
    fn from(e: enq_linalg::LinalgError) -> Self {
        DataError::Linalg(e)
    }
}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DataError::EmptyDataset.to_string().contains("no samples"));
        assert!(DataError::DimensionMismatch {
            expected: 4,
            found: 2
        }
        .to_string()
        .contains("expected 4"));
        assert!(DataError::RankDeficient {
            requested: 16,
            effective: 15
        }
        .to_string()
        .contains("effective rank 15"));
        assert!(DataError::Io("missing file".to_string())
            .to_string()
            .contains("missing file"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}

//! Error types for the classical-data substrate.

use std::error::Error;
use std::fmt;

/// Errors returned by dataset generation, PCA, and clustering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DataError {
    /// The dataset or sample collection was empty.
    EmptyDataset,
    /// Two samples (or a sample and a model) had different feature counts.
    DimensionMismatch {
        /// Expected feature count.
        expected: usize,
        /// Found feature count.
        found: usize,
    },
    /// A parameter was outside its valid range.
    InvalidParameter(String),
    /// An underlying linear-algebra routine failed.
    Linalg(enq_linalg::LinalgError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::EmptyDataset => write!(f, "dataset contains no samples"),
            DataError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "feature dimension mismatch: expected {expected}, found {found}"
                )
            }
            DataError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
            DataError::Linalg(e) => write!(f, "linear algebra error: {e}"),
        }
    }
}

impl Error for DataError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DataError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<enq_linalg::LinalgError> for DataError {
    fn from(e: enq_linalg::LinalgError) -> Self {
        DataError::Linalg(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DataError::EmptyDataset.to_string().contains("no samples"));
        assert!(DataError::DimensionMismatch {
            expected: 4,
            found: 2
        }
        .to_string()
        .contains("expected 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}

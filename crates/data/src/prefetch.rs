//! Double-buffered chunk prefetching for [`SampleSource`] readers.
//!
//! Every streaming fit in this workspace is a loop of the form *read one
//! chunk, then crunch it*: with a synchronous reader the compute phases sit
//! idle while the next chunk is rendered, parsed, or read from disk. The
//! fit-throughput benchmark shows that ingestion is a large share of
//! streaming wall-clock on generator-backed sources, so [`ChunkPrefetcher`]
//! moves the reader onto its own thread: while the consumer crunches chunk
//! `N`, the reader fills chunk `N + 1` (bounded by a backpressure `depth`, so
//! at most `depth + 1` chunks are ever resident).
//!
//! The prefetched loop is **bit-identical** to the synchronous
//! [`for_each_chunk`] loop: chunks arrive in source order, the consumer
//! callback runs on the calling thread, and sources are deterministic by
//! contract — the only difference is *when* the reader runs, never *what* it
//! reads. Reader errors are propagated to the caller exactly like synchronous
//! read errors; a consumer error cancels the reader at its next hand-off.

use crate::error::DataError;
use crate::stream::{for_each_chunk, SampleChunk, SampleSource};
use std::num::NonZeroUsize;

/// How a streaming pass drives its [`SampleSource`].
///
/// Both modes produce bit-identical fits (the chunk sequence is the same);
/// they differ only in whether ingestion overlaps compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IngestMode {
    /// Read each chunk on the calling thread, between compute steps (the
    /// pre-pipelined behaviour; useful as a determinism baseline and on
    /// single-core hosts where overlap cannot pay for the hand-off).
    Synchronous,
    /// Double-buffer the source with a [`ChunkPrefetcher`]: a reader thread
    /// fills chunk `N + 1` while the caller consumes chunk `N`.
    #[default]
    Prefetched,
}

/// Default number of filled chunks allowed in flight (classic double
/// buffering: one being read, one ready).
pub const DEFAULT_PREFETCH_DEPTH: usize = 2;

/// A double-buffered reader over any [`SampleSource`].
///
/// While the consumer crunches chunk `N` on the calling thread, a reader
/// thread fills chunk `N + 1` (bounded backpressure, errors propagated from
/// both sides); chunks arrive in source order, so a prefetched pass is
/// bit-identical to a synchronous [`for_each_chunk`] pass.
///
/// # Examples
///
/// ```
/// use enq_data::{ChunkPrefetcher, Dataset, InMemorySource};
///
/// let data = Dataset::new(
///     "d",
///     vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
///     vec![0, 1, 0],
/// )?;
/// let mut source = InMemorySource::new(&data);
/// let mut seen = 0usize;
/// ChunkPrefetcher::new(2)?.run(&mut source, |chunk| {
///     seen += chunk.len();
///     Ok(())
/// })?;
/// assert_eq!(seen, 3);
/// # Ok::<(), enq_data::DataError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPrefetcher {
    chunk_size: usize,
    depth: NonZeroUsize,
}

impl ChunkPrefetcher {
    /// Creates a prefetcher reading `chunk_size` samples per chunk with the
    /// default in-flight depth ([`DEFAULT_PREFETCH_DEPTH`]).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] when `chunk_size` is zero.
    pub fn new(chunk_size: usize) -> Result<Self, DataError> {
        Self::with_depth(chunk_size, DEFAULT_PREFETCH_DEPTH)
    }

    /// [`ChunkPrefetcher::new`] with an explicit backpressure depth: at most
    /// `depth` filled chunks wait for the consumer, so resident memory is
    /// bounded by `(depth + 1) × chunk_size` samples.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] when `chunk_size` or `depth`
    /// is zero.
    pub fn with_depth(chunk_size: usize, depth: usize) -> Result<Self, DataError> {
        if chunk_size == 0 {
            return Err(DataError::InvalidParameter(
                "chunk_size must be positive".to_string(),
            ));
        }
        let depth = NonZeroUsize::new(depth).ok_or_else(|| {
            DataError::InvalidParameter("prefetch depth must be positive".to_string())
        })?;
        Ok(Self { chunk_size, depth })
    }

    /// Samples requested per chunk.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Maximum filled chunks in flight.
    pub fn depth(&self) -> usize {
        self.depth.get()
    }

    /// Runs one pass over the source (from its current cursor), invoking `f`
    /// for every chunk **in source order on the calling thread** while the
    /// reader thread fills the next chunk.
    ///
    /// # Errors
    ///
    /// Propagates source read errors and callback errors (whichever strikes
    /// first); the other side is cancelled at its next chunk hand-off.
    pub fn run<F>(&self, source: &mut dyn SampleSource, f: F) -> Result<(), DataError>
    where
        F: FnMut(&SampleChunk) -> Result<(), DataError>,
    {
        let chunk_size = self.chunk_size;
        enq_parallel::double_buffered(
            self.depth,
            move |chunk: &mut SampleChunk| Ok(source.next_chunk(chunk_size, chunk)? > 0),
            f,
        )
    }
}

/// Runs `f` over every chunk of one pass using the requested [`IngestMode`]
/// — the mode-dispatching sibling of [`for_each_chunk`].
///
/// # Errors
///
/// Propagates source and callback errors; rejects a zero `chunk_size`.
pub fn drive_chunks<F>(
    source: &mut dyn SampleSource,
    chunk_size: usize,
    mode: IngestMode,
    f: F,
) -> Result<(), DataError>
where
    F: FnMut(&SampleChunk) -> Result<(), DataError>,
{
    match mode {
        IngestMode::Synchronous => for_each_chunk(source, chunk_size, f),
        IngestMode::Prefetched => ChunkPrefetcher::new(chunk_size)?.run(source, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::stream::InMemorySource;

    fn toy_dataset(n: usize) -> Dataset {
        Dataset::new(
            "toy",
            (0..n)
                .map(|i| vec![i as f64, (i * 2) as f64, -(i as f64) * 0.5])
                .collect(),
            (0..n).map(|i| i % 4).collect(),
        )
        .unwrap()
    }

    #[test]
    fn prefetched_pass_matches_synchronous_pass_exactly() {
        let data = toy_dataset(53);
        for chunk_size in [1, 7, 16, 64] {
            let collect = |mode: IngestMode| {
                let mut source = InMemorySource::new(&data);
                let mut samples: Vec<Vec<f64>> = Vec::new();
                let mut labels: Vec<usize> = Vec::new();
                let mut chunk_lens: Vec<usize> = Vec::new();
                drive_chunks(&mut source, chunk_size, mode, |chunk| {
                    chunk_lens.push(chunk.len());
                    samples.extend_from_slice(chunk.samples());
                    labels.extend_from_slice(chunk.labels());
                    Ok(())
                })
                .unwrap();
                (samples, labels, chunk_lens)
            };
            let sync = collect(IngestMode::Synchronous);
            let pre = collect(IngestMode::Prefetched);
            assert_eq!(sync, pre, "chunk size {chunk_size} diverged");
            assert_eq!(sync.0.len(), 53);
        }
    }

    #[test]
    fn reader_errors_propagate() {
        let data = toy_dataset(10);
        let mut source = InMemorySource::new(&data);
        // Exhaust the source, then ask the prefetcher to run with a zero
        // chunk size *via the source contract*: next_chunk(0) errors.
        let err = ChunkPrefetcher::with_depth(0, 2);
        assert!(err.is_err());
        let err = ChunkPrefetcher::with_depth(4, 0);
        assert!(err.is_err());
        // Consumer errors cancel the pass and surface.
        let err = ChunkPrefetcher::new(4)
            .unwrap()
            .run(&mut source, |_| {
                Err(DataError::InvalidParameter("stop".to_string()))
            })
            .unwrap_err();
        assert!(matches!(err, DataError::InvalidParameter(_)));
    }

    #[test]
    fn prefetcher_is_reusable_across_passes() {
        let data = toy_dataset(20);
        let mut source = InMemorySource::new(&data);
        let prefetcher = ChunkPrefetcher::new(6).unwrap();
        assert_eq!(prefetcher.chunk_size(), 6);
        assert_eq!(prefetcher.depth(), DEFAULT_PREFETCH_DEPTH);
        for _ in 0..3 {
            source.reset().unwrap();
            let mut seen = 0usize;
            prefetcher
                .run(&mut source, |chunk| {
                    seen += chunk.len();
                    Ok(())
                })
                .unwrap();
            assert_eq!(seen, 20);
        }
    }
}

//! Principal component analysis.
//!
//! The paper reduces every image to `2^n` features with PCA before
//! normalising and embedding it. Covariance matrices of the raw images are
//! large (784×784 or 3072×3072), so the implementation uses a randomized
//! range finder with power iterations (Halko et al.) and never materialises
//! the full covariance matrix; the small projected problem is solved exactly
//! with the symmetric Jacobi eigensolver from `enq-linalg`.

use crate::error::DataError;
use enq_linalg::{symmetric_eigen, RMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted PCA model (mean vector + orthonormal principal components).
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    mean: Vec<f64>,
    /// `components[c]` is the `c`-th principal axis (length = feature dim).
    components: Vec<Vec<f64>>,
    explained_variance: Vec<f64>,
}

/// Relative variance threshold below which a principal direction is treated
/// as numerically nonexistent: eigenvalues under `λ_max · RANK_REL_TOL` are
/// rank-deficiency artefacts of centering (fewer samples than components) or
/// constant features, not real structure.
pub(crate) const RANK_REL_TOL: f64 = 1e-12;

impl Pca {
    /// Assembles a model from already-validated parts (used by the
    /// incremental fit; invariants — orthonormal components of length
    /// `mean.len()`, descending variances — are the caller's responsibility).
    pub(crate) fn from_parts(
        mean: Vec<f64>,
        components: Vec<Vec<f64>>,
        explained_variance: Vec<f64>,
    ) -> Self {
        Self {
            mean,
            components,
            explained_variance,
        }
    }

    /// Assembles a model from externally supplied parts, validating shapes
    /// only — the decoding half of model persistence (`enq_store`).
    ///
    /// Values are adopted **verbatim**: nothing is renormalised or
    /// re-orthogonalised, so a fitted model round-trips through
    /// serialisation bit-for-bit. Orthonormal components and descending
    /// variances remain the caller's responsibility (a persisted artifact
    /// inherits them from the fit that produced it; its integrity hash
    /// guards against corruption in between).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] for an empty mean or an
    /// empty component set, and [`DataError::DimensionMismatch`] when a
    /// component's length differs from the mean's or the variance count
    /// differs from the component count.
    pub fn from_raw_parts(
        mean: Vec<f64>,
        components: Vec<Vec<f64>>,
        explained_variance: Vec<f64>,
    ) -> Result<Self, DataError> {
        if mean.is_empty() {
            return Err(DataError::InvalidParameter(
                "PCA mean must be non-empty".to_string(),
            ));
        }
        if components.is_empty() {
            return Err(DataError::InvalidParameter(
                "PCA needs at least one component".to_string(),
            ));
        }
        for c in &components {
            if c.len() != mean.len() {
                return Err(DataError::DimensionMismatch {
                    expected: mean.len(),
                    found: c.len(),
                });
            }
        }
        if explained_variance.len() != components.len() {
            return Err(DataError::DimensionMismatch {
                expected: components.len(),
                found: explained_variance.len(),
            });
        }
        Ok(Self::from_parts(mean, components, explained_variance))
    }

    /// Fits a PCA model with exactly `num_components` components.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] for no samples,
    /// [`DataError::DimensionMismatch`] for ragged samples,
    /// [`DataError::InvalidParameter`] if `num_components` is zero or larger
    /// than the feature dimension, and [`DataError::RankDeficient`] when the
    /// centered data has fewer non-negligible directions of variance than
    /// requested (zero-variance features, duplicated samples, or fewer
    /// samples than components) — previously such fits silently emitted
    /// degenerate, unnormalised trailing components. Callers that can accept
    /// fewer components should use [`Pca::fit_truncated`].
    pub fn fit(samples: &[Vec<f64>], num_components: usize) -> Result<Self, DataError> {
        let pca = Self::fit_truncated(samples, num_components)?;
        if pca.num_components() < num_components {
            return Err(DataError::RankDeficient {
                requested: num_components,
                effective: pca.num_components(),
            });
        }
        Ok(pca)
    }

    /// Fits a PCA model with *up to* `max_components` components, truncating
    /// at the effective rank of the centered data instead of erroring.
    ///
    /// # Errors
    ///
    /// Same as [`Pca::fit`] except rank deficiency, which truncates.
    pub fn fit_truncated(samples: &[Vec<f64>], num_components: usize) -> Result<Self, DataError> {
        if samples.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let dim = samples[0].len();
        for s in samples {
            if s.len() != dim {
                return Err(DataError::DimensionMismatch {
                    expected: dim,
                    found: s.len(),
                });
            }
        }
        if num_components == 0 || num_components > dim {
            return Err(DataError::InvalidParameter(format!(
                "cannot extract {num_components} components from {dim}-dimensional data"
            )));
        }
        let n = samples.len();
        let mut mean = vec![0.0; dim];
        for s in samples {
            for (m, v) in mean.iter_mut().zip(s.iter()) {
                *m += v / n as f64;
            }
        }

        let oversample = 8.min(dim - num_components);
        let sketch = num_components + oversample;
        let denom = (n as f64 - 1.0).max(1.0);

        // Deterministic pseudo-random start subspace (d × sketch), stored as
        // columns.
        let mut rng = StdRng::seed_from_u64(0x5043_4100 ^ (dim as u64) ^ ((n as u64) << 20));
        let mut q: Vec<Vec<f64>> = (0..sketch)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        q = orthonormalize(q);

        // Two rounds of power iteration: Q ← orth(Cov · Q), where
        // Cov · Q = Xcᵀ (Xc Q) / (n−1) is computed without forming Cov.
        // Rank-deficient data (fewer samples than the sketch, constant
        // features) collapses Cov·Q into a lower-dimensional span;
        // `orthonormalize` *drops* the dependent columns, so the sketch
        // shrinks to the numerical rank instead of carrying amplified noise
        // directions that used to corrupt eigenvalues and component norms.
        for _ in 0..2 {
            let projected = apply_covariance(samples, &mean, &q, denom);
            q = orthonormalize(projected);
        }
        if q.is_empty() {
            // Zero-variance data: no principal direction exists at all.
            return Ok(Self {
                mean,
                components: Vec::new(),
                explained_variance: Vec::new(),
            });
        }
        let sketch = q.len();

        // Rayleigh–Ritz on the sketch subspace: B = Qᵀ Cov Q = ZᵀZ/(n−1) with
        // Z = Xc Q.
        let z = centered_product(samples, &mean, &q); // n × sketch
        let mut b = RMatrix::zeros(sketch, sketch);
        for i in 0..sketch {
            for j in i..sketch {
                let mut acc = 0.0;
                for row in &z {
                    acc += row[i] * row[j];
                }
                acc /= denom;
                b[(i, j)] = acc;
                b[(j, i)] = acc;
            }
        }
        let eig = symmetric_eigen(&b)?;

        // Effective rank: eigenvalues below `λ_max · RANK_REL_TOL` are noise
        // directions from a rank-deficient scatter, not real variance; the
        // q-columns backing them are numerically meaningless, so emitting
        // them would hand callers degenerate axes.
        let lambda_max = eig.eigenvalues.first().copied().unwrap_or(0.0).max(0.0);
        let rank_floor = lambda_max * RANK_REL_TOL;
        let kept = (0..num_components.min(sketch))
            .take_while(|&c| {
                let lambda = eig.eigenvalues[c];
                lambda.is_finite() && lambda > rank_floor && lambda > 0.0
            })
            .count();

        // components[c] = Σ_s V[s][c] · q[s], for the top `kept`.
        let mut components = Vec::with_capacity(kept);
        let mut explained_variance = Vec::with_capacity(kept);
        for c in 0..kept {
            let mut axis = vec![0.0; dim];
            for (s, q_col) in q.iter().enumerate() {
                let w = eig.eigenvectors[(s, c)];
                for (a, v) in axis.iter_mut().zip(q_col.iter()) {
                    *a += w * v;
                }
            }
            components.push(axis);
            explained_variance.push(eig.eigenvalues[c].max(0.0));
        }
        Ok(Self {
            mean,
            components,
            explained_variance,
        })
    }

    /// Returns the number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Returns the feature dimension the model was fitted on.
    pub fn input_dim(&self) -> usize {
        self.mean.len()
    }

    /// Returns the per-component explained variance, in descending order.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Returns the mean vector subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Returns the principal axes.
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }

    /// Projects a sample onto the principal components.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] if the sample has the wrong
    /// length.
    pub fn transform(&self, sample: &[f64]) -> Result<Vec<f64>, DataError> {
        if sample.len() != self.mean.len() {
            return Err(DataError::DimensionMismatch {
                expected: self.mean.len(),
                found: sample.len(),
            });
        }
        // The centered dot product dispatches through `enq_simd` with one
        // canonical lane-structured summation order, so the projection is
        // bit-identical on every backend (scalar and vector alike).
        Ok(self
            .components
            .iter()
            .map(|axis| enq_simd::dot_centered(axis, sample, &self.mean))
            .collect())
    }

    /// Projects every sample of a collection.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] on the first bad sample.
    pub fn transform_all(&self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, DataError> {
        samples.iter().map(|s| self.transform(s)).collect()
    }

    /// Reconstructs an approximation of the original sample from its
    /// projection (used in tests and diagnostics).
    pub fn inverse_transform(&self, projected: &[f64]) -> Vec<f64> {
        let mut out = self.mean.clone();
        for (w, axis) in projected.iter().zip(self.components.iter()) {
            for (o, a) in out.iter_mut().zip(axis.iter()) {
                *o += w * a;
            }
        }
        out
    }
}

/// Computes `Xc · Q` where `Xc` is the centered sample matrix (`n × d`) and
/// `Q` is given as columns of length `d`; the result is `n × |Q|`.
fn centered_product(samples: &[Vec<f64>], mean: &[f64], q: &[Vec<f64>]) -> Vec<Vec<f64>> {
    samples
        .iter()
        .map(|s| {
            q.iter()
                .map(|col| {
                    col.iter()
                        .zip(s.iter().zip(mean.iter()))
                        .map(|(c, (x, m))| c * (x - m))
                        .sum()
                })
                .collect()
        })
        .collect()
}

/// Computes `Cov · Q = Xcᵀ (Xc Q) / denom` column by column.
fn apply_covariance(
    samples: &[Vec<f64>],
    mean: &[f64],
    q: &[Vec<f64>],
    denom: f64,
) -> Vec<Vec<f64>> {
    let dim = mean.len();
    let z = centered_product(samples, mean, q); // n × sketch
    let sketch = q.len();
    let mut out = vec![vec![0.0; dim]; sketch];
    for (row, s) in z.iter().zip(samples.iter()) {
        for (col_idx, out_col) in out.iter_mut().enumerate() {
            let w = row[col_idx] / denom;
            if w == 0.0 {
                continue;
            }
            for ((o, x), m) in out_col.iter_mut().zip(s.iter()).zip(mean.iter()) {
                *o += w * (x - m);
            }
        }
    }
    out
}

/// Orthonormalises a set of columns (each of length `d`) with modified
/// Gram-Schmidt, **dropping** columns that are numerically dependent on the
/// ones already kept: a residual below `1e-10` of the column's original norm
/// carries no new direction, only amplified rounding noise. The returned set
/// therefore spans the numerical range of the input and is orthonormal to
/// working precision (each survivor is orthogonalised twice — the classic
/// "twice is enough" re-orthogonalisation).
fn orthonormalize(columns: Vec<Vec<f64>>) -> Vec<Vec<f64>> {
    let mut kept: Vec<Vec<f64>> = Vec::with_capacity(columns.len());
    for mut col in columns {
        let original: f64 = col.iter().map(|v| v * v).sum::<f64>().sqrt();
        if !(original.is_finite() && original > 0.0) {
            continue;
        }
        for _ in 0..2 {
            for prev in &kept {
                let dot: f64 = col.iter().zip(prev.iter()).map(|(a, b)| a * b).sum();
                for (v, p) in col.iter_mut().zip(prev.iter()) {
                    *v -= dot * p;
                }
            }
        }
        let norm: f64 = col.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > original * 1e-10 {
            for v in col.iter_mut() {
                *v /= norm;
            }
            kept.push(col);
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds samples lying (mostly) in a 2-D subspace of a 10-D space.
    fn low_rank_samples(n: usize, noise: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let basis1: Vec<f64> = (0..10).map(|i| ((i as f64) * 0.7).sin()).collect();
        let basis2: Vec<f64> = (0..10).map(|i| ((i as f64) * 1.3).cos()).collect();
        (0..n)
            .map(|_| {
                let a: f64 = rng.gen_range(-2.0..2.0);
                let b: f64 = rng.gen_range(-1.0..1.0);
                (0..10)
                    .map(|i| a * basis1[i] + b * basis2[i] + rng.gen_range(-noise..noise) + 3.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fit_validates_input() {
        assert!(Pca::fit(&[], 2).is_err());
        assert!(Pca::fit(&[vec![1.0, 2.0]], 0).is_err());
        assert!(Pca::fit(&[vec![1.0, 2.0]], 3).is_err());
        assert!(Pca::fit(&[vec![1.0, 2.0], vec![1.0]], 1).is_err());
    }

    #[test]
    fn captures_low_rank_structure() {
        let samples = low_rank_samples(80, 0.01, 3);
        let pca = Pca::fit(&samples, 2).unwrap();
        // Reconstruction from 2 components should be nearly exact.
        for s in samples.iter().take(10) {
            let projected = pca.transform(s).unwrap();
            let reconstructed = pca.inverse_transform(&projected);
            let err: f64 = s
                .iter()
                .zip(reconstructed.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(err < 0.1, "reconstruction error {err}");
        }
    }

    #[test]
    fn explained_variance_is_descending() {
        let samples = low_rank_samples(60, 0.3, 5);
        let pca = Pca::fit(&samples, 4).unwrap();
        let ev = pca.explained_variance();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        assert!(
            ev[0] > ev[2],
            "dominant directions should carry more variance"
        );
    }

    #[test]
    fn components_are_orthonormal() {
        let samples = low_rank_samples(60, 0.5, 6);
        let pca = Pca::fit(&samples, 3).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = pca.components()[i]
                    .iter()
                    .zip(pca.components()[j].iter())
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-6, "({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn transform_centers_the_data() {
        let samples = low_rank_samples(50, 0.2, 8);
        let pca = Pca::fit(&samples, 2).unwrap();
        // The mean of all projections should be (numerically) zero.
        let projections = pca.transform_all(&samples).unwrap();
        for c in 0..2 {
            let mean: f64 = projections.iter().map(|p| p[c]).sum::<f64>() / samples.len() as f64;
            assert!(mean.abs() < 1e-8);
        }
    }

    #[test]
    fn rank_deficient_fit_is_an_error_not_garbage() {
        // Zero variance: every sample identical. No principal direction
        // exists, so requesting even one component must fail loudly.
        let constant = vec![vec![3.0, 1.0, 4.0]; 12];
        assert!(matches!(
            Pca::fit(&constant, 1),
            Err(DataError::RankDeficient {
                requested: 1,
                effective: 0
            })
        ));

        // Fewer samples than components: 3 centered samples span at most a
        // 2-dimensional subspace of the 10-dimensional feature space.
        let mut rng = StdRng::seed_from_u64(77);
        let three: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        match Pca::fit(&three, 5) {
            Err(DataError::RankDeficient {
                requested,
                effective,
            }) => {
                assert_eq!(requested, 5);
                assert!(effective <= 2, "effective rank {effective} > n - 1");
            }
            other => panic!("expected RankDeficient, got {other:?}"),
        }

        // Within-rank requests on the same data still succeed, and every
        // emitted component is unit-norm.
        let ok = Pca::fit(&three, 2).unwrap();
        for axis in ok.components() {
            let norm: f64 = axis.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6, "component norm {norm}");
        }
    }

    #[test]
    fn fit_truncated_clamps_to_effective_rank() {
        let mut rng = StdRng::seed_from_u64(78);
        let three: Vec<Vec<f64>> = (0..3)
            .map(|_| (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let pca = Pca::fit_truncated(&three, 8).unwrap();
        assert!(pca.num_components() <= 2);
        assert!(pca.num_components() >= 1);
        for axis in pca.components() {
            let norm: f64 = axis.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6, "component norm {norm}");
        }
        // Projections still work at the truncated width.
        assert_eq!(
            pca.transform(&three[0]).unwrap().len(),
            pca.num_components()
        );
    }

    #[test]
    fn transform_rejects_wrong_dimension() {
        let samples = low_rank_samples(20, 0.2, 9);
        let pca = Pca::fit(&samples, 2).unwrap();
        assert!(pca.transform(&[1.0, 2.0]).is_err());
        assert_eq!(pca.num_components(), 2);
        assert_eq!(pca.input_dim(), 10);
    }
}

//! Principal component analysis.
//!
//! The paper reduces every image to `2^n` features with PCA before
//! normalising and embedding it. Covariance matrices of the raw images are
//! large (784×784 or 3072×3072), so the implementation uses a randomized
//! range finder with power iterations (Halko et al.) and never materialises
//! the full covariance matrix; the small projected problem is solved exactly
//! with the symmetric Jacobi eigensolver from `enq-linalg`.

use crate::error::DataError;
use enq_linalg::{symmetric_eigen, RMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fitted PCA model (mean vector + orthonormal principal components).
#[derive(Debug, Clone, PartialEq)]
pub struct Pca {
    mean: Vec<f64>,
    /// `components[c]` is the `c`-th principal axis (length = feature dim).
    components: Vec<Vec<f64>>,
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fits a PCA model with `num_components` components.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] for no samples,
    /// [`DataError::DimensionMismatch`] for ragged samples, and
    /// [`DataError::InvalidParameter`] if `num_components` is zero or larger
    /// than the feature dimension.
    pub fn fit(samples: &[Vec<f64>], num_components: usize) -> Result<Self, DataError> {
        if samples.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let dim = samples[0].len();
        for s in samples {
            if s.len() != dim {
                return Err(DataError::DimensionMismatch {
                    expected: dim,
                    found: s.len(),
                });
            }
        }
        if num_components == 0 || num_components > dim {
            return Err(DataError::InvalidParameter(format!(
                "cannot extract {num_components} components from {dim}-dimensional data"
            )));
        }
        let n = samples.len();
        let mut mean = vec![0.0; dim];
        for s in samples {
            for (m, v) in mean.iter_mut().zip(s.iter()) {
                *m += v / n as f64;
            }
        }

        let oversample = 8.min(dim - num_components);
        let sketch = num_components + oversample;
        let denom = (n as f64 - 1.0).max(1.0);

        // Deterministic pseudo-random start subspace (d × sketch), stored as
        // columns.
        let mut rng = StdRng::seed_from_u64(0x5043_4100 ^ (dim as u64) ^ ((n as u64) << 20));
        let mut q: Vec<Vec<f64>> = (0..sketch)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        orthonormalize(&mut q);

        // Two rounds of power iteration: Q ← orth(Cov · Q), where
        // Cov · Q = Xcᵀ (Xc Q) / (n−1) is computed without forming Cov.
        for _ in 0..2 {
            let projected = apply_covariance(samples, &mean, &q, denom);
            q = projected;
            orthonormalize(&mut q);
        }

        // Rayleigh–Ritz on the sketch subspace: B = Qᵀ Cov Q = ZᵀZ/(n−1) with
        // Z = Xc Q.
        let z = centered_product(samples, &mean, &q); // n × sketch
        let mut b = RMatrix::zeros(sketch, sketch);
        for i in 0..sketch {
            for j in i..sketch {
                let mut acc = 0.0;
                for row in &z {
                    acc += row[i] * row[j];
                }
                acc /= denom;
                b[(i, j)] = acc;
                b[(j, i)] = acc;
            }
        }
        let eig = symmetric_eigen(&b)?;

        // components[c] = Σ_s V[s][c] · q[s], for the top `num_components`.
        let mut components = Vec::with_capacity(num_components);
        let mut explained_variance = Vec::with_capacity(num_components);
        for c in 0..num_components {
            let mut axis = vec![0.0; dim];
            for (s, q_col) in q.iter().enumerate() {
                let w = eig.eigenvectors[(s, c)];
                for (a, v) in axis.iter_mut().zip(q_col.iter()) {
                    *a += w * v;
                }
            }
            components.push(axis);
            explained_variance.push(eig.eigenvalues[c].max(0.0));
        }
        Ok(Self {
            mean,
            components,
            explained_variance,
        })
    }

    /// Returns the number of components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Returns the feature dimension the model was fitted on.
    pub fn input_dim(&self) -> usize {
        self.mean.len()
    }

    /// Returns the per-component explained variance, in descending order.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Returns the mean vector subtracted before projection.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Returns the principal axes.
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }

    /// Projects a sample onto the principal components.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] if the sample has the wrong
    /// length.
    pub fn transform(&self, sample: &[f64]) -> Result<Vec<f64>, DataError> {
        if sample.len() != self.mean.len() {
            return Err(DataError::DimensionMismatch {
                expected: self.mean.len(),
                found: sample.len(),
            });
        }
        Ok(self
            .components
            .iter()
            .map(|axis| {
                axis.iter()
                    .zip(sample.iter().zip(self.mean.iter()))
                    .map(|(a, (x, m))| a * (x - m))
                    .sum()
            })
            .collect())
    }

    /// Projects every sample of a collection.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] on the first bad sample.
    pub fn transform_all(&self, samples: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, DataError> {
        samples.iter().map(|s| self.transform(s)).collect()
    }

    /// Reconstructs an approximation of the original sample from its
    /// projection (used in tests and diagnostics).
    pub fn inverse_transform(&self, projected: &[f64]) -> Vec<f64> {
        let mut out = self.mean.clone();
        for (w, axis) in projected.iter().zip(self.components.iter()) {
            for (o, a) in out.iter_mut().zip(axis.iter()) {
                *o += w * a;
            }
        }
        out
    }
}

/// Computes `Xc · Q` where `Xc` is the centered sample matrix (`n × d`) and
/// `Q` is given as columns of length `d`; the result is `n × |Q|`.
fn centered_product(samples: &[Vec<f64>], mean: &[f64], q: &[Vec<f64>]) -> Vec<Vec<f64>> {
    samples
        .iter()
        .map(|s| {
            q.iter()
                .map(|col| {
                    col.iter()
                        .zip(s.iter().zip(mean.iter()))
                        .map(|(c, (x, m))| c * (x - m))
                        .sum()
                })
                .collect()
        })
        .collect()
}

/// Computes `Cov · Q = Xcᵀ (Xc Q) / denom` column by column.
fn apply_covariance(
    samples: &[Vec<f64>],
    mean: &[f64],
    q: &[Vec<f64>],
    denom: f64,
) -> Vec<Vec<f64>> {
    let dim = mean.len();
    let z = centered_product(samples, mean, q); // n × sketch
    let sketch = q.len();
    let mut out = vec![vec![0.0; dim]; sketch];
    for (row, s) in z.iter().zip(samples.iter()) {
        for (col_idx, out_col) in out.iter_mut().enumerate() {
            let w = row[col_idx] / denom;
            if w == 0.0 {
                continue;
            }
            for ((o, x), m) in out_col.iter_mut().zip(s.iter()).zip(mean.iter()) {
                *o += w * (x - m);
            }
        }
    }
    out
}

/// Orthonormalises a set of columns (each of length `d`) with modified
/// Gram-Schmidt.
fn orthonormalize(columns: &mut [Vec<f64>]) {
    for j in 0..columns.len() {
        for prev in 0..j {
            let dot: f64 = columns[j]
                .iter()
                .zip(columns[prev].iter())
                .map(|(a, b)| a * b)
                .sum();
            let prev_col = columns[prev].clone();
            for (v, p) in columns[j].iter_mut().zip(prev_col.iter()) {
                *v -= dot * p;
            }
        }
        let norm: f64 = columns[j].iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 1e-14 {
            for v in columns[j].iter_mut() {
                *v /= norm;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds samples lying (mostly) in a 2-D subspace of a 10-D space.
    fn low_rank_samples(n: usize, noise: f64, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let basis1: Vec<f64> = (0..10).map(|i| ((i as f64) * 0.7).sin()).collect();
        let basis2: Vec<f64> = (0..10).map(|i| ((i as f64) * 1.3).cos()).collect();
        (0..n)
            .map(|_| {
                let a: f64 = rng.gen_range(-2.0..2.0);
                let b: f64 = rng.gen_range(-1.0..1.0);
                (0..10)
                    .map(|i| a * basis1[i] + b * basis2[i] + rng.gen_range(-noise..noise) + 3.0)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn fit_validates_input() {
        assert!(Pca::fit(&[], 2).is_err());
        assert!(Pca::fit(&[vec![1.0, 2.0]], 0).is_err());
        assert!(Pca::fit(&[vec![1.0, 2.0]], 3).is_err());
        assert!(Pca::fit(&[vec![1.0, 2.0], vec![1.0]], 1).is_err());
    }

    #[test]
    fn captures_low_rank_structure() {
        let samples = low_rank_samples(80, 0.01, 3);
        let pca = Pca::fit(&samples, 2).unwrap();
        // Reconstruction from 2 components should be nearly exact.
        for s in samples.iter().take(10) {
            let projected = pca.transform(s).unwrap();
            let reconstructed = pca.inverse_transform(&projected);
            let err: f64 = s
                .iter()
                .zip(reconstructed.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt();
            assert!(err < 0.1, "reconstruction error {err}");
        }
    }

    #[test]
    fn explained_variance_is_descending() {
        let samples = low_rank_samples(60, 0.3, 5);
        let pca = Pca::fit(&samples, 4).unwrap();
        let ev = pca.explained_variance();
        for w in ev.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
        assert!(
            ev[0] > ev[2],
            "dominant directions should carry more variance"
        );
    }

    #[test]
    fn components_are_orthonormal() {
        let samples = low_rank_samples(60, 0.5, 6);
        let pca = Pca::fit(&samples, 3).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let dot: f64 = pca.components()[i]
                    .iter()
                    .zip(pca.components()[j].iter())
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-6, "({i},{j}) = {dot}");
            }
        }
    }

    #[test]
    fn transform_centers_the_data() {
        let samples = low_rank_samples(50, 0.2, 8);
        let pca = Pca::fit(&samples, 2).unwrap();
        // The mean of all projections should be (numerically) zero.
        let projections = pca.transform_all(&samples).unwrap();
        for c in 0..2 {
            let mean: f64 = projections.iter().map(|p| p[c]).sum::<f64>() / samples.len() as f64;
            assert!(mean.abs() < 1e-8);
        }
    }

    #[test]
    fn transform_rejects_wrong_dimension() {
        let samples = low_rank_samples(20, 0.2, 9);
        let pca = Pca::fit(&samples, 2).unwrap();
        assert!(pca.transform(&[1.0, 2.0]).is_err());
        assert_eq!(pca.num_components(), 2);
        assert_eq!(pca.input_dim(), 10);
    }
}

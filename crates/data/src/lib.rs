//! # enq-data
//!
//! The classical-data substrate of the EnQode reproduction:
//!
//! * [`generate_synthetic`] — deterministic surrogates for MNIST,
//!   Fashion-MNIST, and CIFAR-10 (the pipeline only consumes PCA-reduced,
//!   normalised features, so class-structured synthetic images preserve the
//!   behaviour the paper measures),
//! * [`Pca`] / [`FeaturePipeline`] — PCA to `2^n` features followed by L2
//!   normalisation, as in the paper's methodology,
//! * [`kmeans`] / [`fit_with_fidelity_threshold`] — k-means clustering with
//!   the paper's "minimum 0.95 embedding fidelity" rule for choosing `k`,
//! * [`SampleSource`] and its readers ([`InMemorySource`],
//!   [`SyntheticSource`], [`CsvSource`], [`BinarySource`] — mmap-backed on
//!   Unix) — chunked out-of-core ingestion feeding,
//! * [`ChunkPrefetcher`] / [`IngestMode`] — double-buffered ingestion: a
//!   reader thread fills chunk `N + 1` while compute consumes chunk `N`,
//!   bit-identical to the synchronous loop,
//! * [`minibatch_kmeans`] / [`IncrementalPca`] /
//!   [`FeaturePipeline::fit_streaming`] — bounded-memory streaming fits that
//!   train with `O(chunk × dim)` resident samples instead of `O(N × dim)`,
//!   bit-reproducible for a fixed seed and chunk size across thread counts.
//!
//! ## Example
//!
//! ```
//! use enq_data::{
//!     fit_with_fidelity_threshold, generate_synthetic, DatasetKind, FeaturePipeline,
//!     SyntheticConfig,
//! };
//!
//! let raw = generate_synthetic(
//!     DatasetKind::MnistLike,
//!     &SyntheticConfig { classes: 2, samples_per_class: 15, seed: 1 },
//! )?;
//! let pipeline = FeaturePipeline::fit(&raw, 16)?;
//! let features = pipeline.apply_dataset(&raw)?;
//! let clusters = fit_with_fidelity_threshold(features.samples(), 0.95, 16, 1)?;
//! assert!(clusters.num_clusters() >= 1);
//! # Ok::<(), enq_data::DataError>(())
//! ```

#![warn(missing_docs)]

mod dataset;
mod error;
mod incremental;
mod kmeans;
mod minibatch;
mod multi;
mod pca;
mod prefetch;
mod preprocess;
pub mod seed;
mod stream;
mod synthetic;

pub use dataset::{Dataset, DatasetKind};
pub use error::DataError;
pub use incremental::IncrementalPca;
pub use kmeans::{
    embedding_fidelity, fit_with_fidelity_threshold, kmeans, KMeansConfig, KMeansModel,
};
pub use minibatch::{
    inertia_of, minibatch_kmeans, minibatch_kmeans_with_threads, MiniBatchKMeans,
    MiniBatchKMeansConfig, MiniBatchKMeansModel,
};
pub use multi::{ChainedSource, ShardedSource};
pub use pca::Pca;
pub use prefetch::{drive_chunks, ChunkPrefetcher, IngestMode, DEFAULT_PREFETCH_DEPTH};
pub use preprocess::{l2_normalize, FeaturePipeline, TransformedSource};
pub use stream::{
    compact_to_shard, for_each_chunk, materialize, write_binary_dataset, BinaryDatasetWriter,
    BinarySource, CsvSource, InMemorySource, SampleChunk, SampleSource,
};
pub use synthetic::{generate_synthetic, SyntheticConfig, SyntheticSource};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn l2_normalize_always_unit_norm(
            v in proptest::collection::vec(-5.0..5.0f64, 4..32)
        ) {
            prop_assume!(v.iter().map(|x| x * x).sum::<f64>() > 1e-6);
            let n = l2_normalize(&v).unwrap();
            let norm: f64 = n.iter().map(|x| x * x).sum();
            prop_assert!((norm - 1.0).abs() < 1e-9);
        }

        #[test]
        fn embedding_fidelity_is_bounded(
            a in proptest::collection::vec(-5.0..5.0f64, 8),
            b in proptest::collection::vec(-5.0..5.0f64, 8),
        ) {
            let f = embedding_fidelity(&a, &b);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&f));
        }

        #[test]
        fn kmeans_assignments_are_in_range(
            points in proptest::collection::vec(
                proptest::collection::vec(-10.0..10.0f64, 3), 8..24
            ),
            k in 1usize..4,
        ) {
            let model = kmeans(
                &points,
                &KMeansConfig { k, ..Default::default() },
            ).unwrap();
            prop_assert_eq!(model.assignments().len(), points.len());
            for &a in model.assignments() {
                prop_assert!(a < k);
            }
            // Every sample is assigned to its true nearest centroid.
            for (s, &a) in points.iter().zip(model.assignments()) {
                let (nearest, _) = model.nearest_centroid(s).unwrap();
                prop_assert_eq!(nearest, a);
            }
        }

        #[test]
        fn kmeans_inertia_never_increases_with_k(
            points in proptest::collection::vec(
                proptest::collection::vec(-10.0..10.0f64, 2), 12..24
            ),
        ) {
            let one = kmeans(&points, &KMeansConfig { k: 1, ..Default::default() }).unwrap();
            let many = kmeans(&points, &KMeansConfig { k: 4, ..Default::default() }).unwrap();
            prop_assert!(many.inertia() <= one.inertia() + 1e-6);
        }
    }
}

//! Multi-source combinators: training over partitioned on-disk corpora.
//!
//! Production traffic accumulates as **shards** — one binary file per day,
//! per ingestion node, or per spill of a serving process's traffic buffer —
//! and the streaming fits want to see them as *one* deterministic sample
//! stream. Two combinators compose arbitrary [`SampleSource`]s into one:
//!
//! * [`ChainedSource`] — plain concatenation: shard 0 in full, then shard 1,
//!   … Chunks freely straddle shard boundaries, so the chunk sequence is
//!   **bit-identical to a single source holding the concatenated samples**
//!   for every chunk size (the equivalence the lifecycle proptests pin).
//! * [`ShardedSource`] — deterministic block-round-robin interleave: `block`
//!   samples from shard 0, `block` from shard 1, …, wrapping until every
//!   shard is exhausted (shards that run dry simply drop out of the
//!   rotation). Interleaving decorrelates time-ordered shards (e.g. one
//!   shard per day of traffic) so multi-pass mini-batch fits do not see one
//!   distribution for the first half of every pass and another for the
//!   second.
//!
//! Both combinators define their sample sequence independently of the chunk
//! size they are driven at — the sequence depends only on the shard order,
//! the block size, and each shard's own (deterministic, chunk-size-invariant
//! by the [`SampleSource`] contract) sample order. They therefore compose
//! with [`crate::ChunkPrefetcher`] exactly like any single source: a
//! prefetched pass is bit-identical to a synchronous one, and per-shard
//! open/seek latency hides behind compute.

use crate::error::DataError;
use crate::stream::{SampleChunk, SampleSource};

/// Validates a shard list and returns the common feature dimension.
fn common_dim(shards: &[Box<dyn SampleSource + '_>]) -> Result<usize, DataError> {
    let first = shards.first().ok_or(DataError::EmptyDataset)?;
    let dim = first.feature_dim();
    for shard in shards.iter().skip(1) {
        if shard.feature_dim() != dim {
            return Err(DataError::DimensionMismatch {
                expected: dim,
                found: shard.feature_dim(),
            });
        }
    }
    Ok(dim)
}

/// Sum of the shard length hints (`None` if any shard cannot say).
fn summed_hint(shards: &[Box<dyn SampleSource + '_>]) -> Option<usize> {
    shards.iter().map(|s| s.len_hint()).sum()
}

/// Sequential concatenation of several [`SampleSource`]s.
///
/// The sample sequence is shard 0's samples, then shard 1's, and so on; a
/// chunk that exhausts one shard keeps filling from the next, so chunking is
/// bit-identical to chunking one source that held all samples back to back.
///
/// # Examples
///
/// ```
/// use enq_data::{ChainedSource, Dataset, InMemorySource, SampleSource};
///
/// let a = Dataset::new("a", vec![vec![1.0], vec![2.0]], vec![0, 0])?;
/// let b = Dataset::new("b", vec![vec![3.0]], vec![1])?;
/// let mut chained = ChainedSource::new(vec![
///     Box::new(InMemorySource::new(&a)),
///     Box::new(InMemorySource::new(&b)),
/// ])?;
/// assert_eq!(chained.len_hint(), Some(3));
/// let all = enq_data::materialize(&mut chained, "all")?;
/// assert_eq!(all.samples(), &[vec![1.0], vec![2.0], vec![3.0]]);
/// # Ok::<(), enq_data::DataError>(())
/// ```
pub struct ChainedSource<'s> {
    shards: Vec<Box<dyn SampleSource + 's>>,
    current: usize,
    feature_dim: usize,
    scratch: SampleChunk,
}

impl<'s> ChainedSource<'s> {
    /// Chains the shards in order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] for an empty shard list and
    /// [`DataError::DimensionMismatch`] when the shards disagree on the
    /// feature dimension.
    pub fn new(shards: Vec<Box<dyn SampleSource + 's>>) -> Result<Self, DataError> {
        let feature_dim = common_dim(&shards)?;
        Ok(Self {
            shards,
            current: 0,
            feature_dim,
            scratch: SampleChunk::new(),
        })
    }

    /// Number of underlying shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }
}

impl std::fmt::Debug for ChainedSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainedSource")
            .field("shards", &self.shards.len())
            .field("current", &self.current)
            .field("feature_dim", &self.feature_dim)
            .finish_non_exhaustive()
    }
}

impl SampleSource for ChainedSource<'_> {
    fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn len_hint(&self) -> Option<usize> {
        summed_hint(&self.shards)
    }

    fn reset(&mut self) -> Result<(), DataError> {
        for shard in &mut self.shards {
            shard.reset()?;
        }
        self.current = 0;
        Ok(())
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        if max_samples == 0 {
            return Err(DataError::InvalidParameter(
                "max_samples must be positive".to_string(),
            ));
        }
        chunk.clear();
        while chunk.len() < max_samples && self.current < self.shards.len() {
            let want = max_samples - chunk.len();
            let n = self.shards[self.current].next_chunk(want, &mut self.scratch)?;
            if n == 0 {
                self.current += 1;
                continue;
            }
            self.scratch.drain_into(chunk);
        }
        Ok(chunk.len())
    }
}

/// Deterministic block-round-robin interleave of several [`SampleSource`]s.
///
/// The sample sequence takes [`block`](ShardedSource::block) samples from
/// shard 0, then `block` from shard 1, …, wrapping around until every shard
/// is exhausted; a shard that runs dry mid-rotation drops out and the
/// remaining shards keep rotating. The sequence depends only on the shard
/// order and `block` — never on the chunk size the combinator is driven at —
/// so chunking is bit-identical to chunking one source holding the
/// interleaved samples.
///
/// # Examples
///
/// ```
/// use enq_data::{Dataset, InMemorySource, SampleSource, ShardedSource};
///
/// let a = Dataset::new("a", vec![vec![1.0], vec![2.0], vec![3.0]], vec![0, 0, 0])?;
/// let b = Dataset::new("b", vec![vec![9.0]], vec![1])?;
/// let mut sharded = ShardedSource::new(
///     vec![
///         Box::new(InMemorySource::new(&a)),
///         Box::new(InMemorySource::new(&b)),
///     ],
///     1,
/// )?;
/// let all = enq_data::materialize(&mut sharded, "interleaved")?;
/// // Round-robin 1-blocks: a, b, a (b exhausted), a.
/// assert_eq!(all.samples(), &[vec![1.0], vec![9.0], vec![2.0], vec![3.0]]);
/// # Ok::<(), enq_data::DataError>(())
/// ```
pub struct ShardedSource<'s> {
    shards: Vec<Box<dyn SampleSource + 's>>,
    block: usize,
    /// Shard the rotation currently draws from.
    cursor: usize,
    /// Samples still owed by the current block of the current shard.
    block_remaining: usize,
    exhausted: Vec<bool>,
    live: usize,
    feature_dim: usize,
    scratch: SampleChunk,
}

impl<'s> ShardedSource<'s> {
    /// Interleaves the shards in `block`-sample runs.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] for an empty shard list,
    /// [`DataError::DimensionMismatch`] when the shards disagree on the
    /// feature dimension, and [`DataError::InvalidParameter`] for a zero
    /// `block`.
    pub fn new(shards: Vec<Box<dyn SampleSource + 's>>, block: usize) -> Result<Self, DataError> {
        if block == 0 {
            return Err(DataError::InvalidParameter(
                "interleave block must be positive".to_string(),
            ));
        }
        let feature_dim = common_dim(&shards)?;
        let live = shards.len();
        let exhausted = vec![false; shards.len()];
        Ok(Self {
            shards,
            block,
            cursor: 0,
            block_remaining: block,
            exhausted,
            live,
            feature_dim,
            scratch: SampleChunk::new(),
        })
    }

    /// Number of underlying shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Samples taken from a shard per rotation turn.
    pub fn block(&self) -> usize {
        self.block
    }

    /// Moves the rotation to the next shard with a fresh block.
    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.shards.len();
        self.block_remaining = self.block;
    }
}

impl std::fmt::Debug for ShardedSource<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSource")
            .field("shards", &self.shards.len())
            .field("block", &self.block)
            .field("cursor", &self.cursor)
            .field("live", &self.live)
            .field("feature_dim", &self.feature_dim)
            .finish_non_exhaustive()
    }
}

impl SampleSource for ShardedSource<'_> {
    fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    fn len_hint(&self) -> Option<usize> {
        summed_hint(&self.shards)
    }

    fn reset(&mut self) -> Result<(), DataError> {
        for shard in &mut self.shards {
            shard.reset()?;
        }
        self.cursor = 0;
        self.block_remaining = self.block;
        self.exhausted.fill(false);
        self.live = self.shards.len();
        Ok(())
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        if max_samples == 0 {
            return Err(DataError::InvalidParameter(
                "max_samples must be positive".to_string(),
            ));
        }
        chunk.clear();
        while chunk.len() < max_samples && self.live > 0 {
            if self.exhausted[self.cursor] {
                self.advance();
                continue;
            }
            // Never over-draw the block: a chunk boundary mid-block leaves
            // `block_remaining` owed by the same shard, so the interleaved
            // sequence is independent of the chunk size.
            let want = self.block_remaining.min(max_samples - chunk.len());
            let n = self.shards[self.cursor].next_chunk(want, &mut self.scratch)?;
            if n == 0 {
                self.exhausted[self.cursor] = true;
                self.live -= 1;
                self.advance();
                continue;
            }
            self.scratch.drain_into(chunk);
            self.block_remaining -= n;
            if self.block_remaining == 0 {
                self.advance();
            }
        }
        Ok(chunk.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::prefetch::{drive_chunks, IngestMode};
    use crate::stream::{materialize, InMemorySource};

    fn shard(tag: f64, n: usize) -> Dataset {
        Dataset::new(
            format!("shard{tag}"),
            (0..n).map(|i| vec![tag, i as f64]).collect(),
            (0..n).map(|i| i % 2).collect(),
        )
        .unwrap()
    }

    fn boxed<'a>(datasets: &'a [Dataset]) -> Vec<Box<dyn SampleSource + 'a>> {
        datasets
            .iter()
            .map(|d| Box::new(InMemorySource::new(d)) as Box<dyn SampleSource + 'a>)
            .collect()
    }

    #[test]
    fn chained_source_concatenates_and_straddles_boundaries() {
        let datasets = vec![shard(1.0, 3), shard(2.0, 5), shard(3.0, 2)];
        let mut chained = ChainedSource::new(boxed(&datasets)).unwrap();
        assert_eq!(chained.num_shards(), 3);
        assert_eq!(chained.len_hint(), Some(10));
        assert_eq!(chained.feature_dim(), 2);
        // A chunk of 4 crosses the 3-sample boundary of shard 0.
        let mut chunk = SampleChunk::new();
        assert_eq!(chained.next_chunk(4, &mut chunk).unwrap(), 4);
        assert_eq!(chunk.samples()[2], vec![1.0, 2.0]);
        assert_eq!(chunk.samples()[3], vec![2.0, 0.0]);
        chained.reset().unwrap();
        let all = materialize(&mut chained, "all").unwrap();
        let expected: Vec<Vec<f64>> = datasets.iter().flat_map(|d| d.samples().to_vec()).collect();
        assert_eq!(all.samples(), &expected[..]);
    }

    #[test]
    fn sharded_source_interleaves_deterministically() {
        let datasets = vec![shard(1.0, 4), shard(2.0, 2)];
        let mut sharded = ShardedSource::new(boxed(&datasets), 2).unwrap();
        assert_eq!(sharded.block(), 2);
        let all = materialize(&mut sharded, "interleaved").unwrap();
        // Blocks of 2: a0 a1, b0 b1, a2 a3 (b exhausted).
        let expected = [
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![2.0, 0.0],
            vec![2.0, 1.0],
            vec![1.0, 2.0],
            vec![1.0, 3.0],
        ];
        assert_eq!(all.samples(), &expected[..]);
        assert_eq!(all.labels(), &[0, 1, 0, 1, 0, 1]);
    }

    #[test]
    fn interleaved_sequence_is_chunk_size_invariant() {
        let datasets = vec![shard(1.0, 7), shard(2.0, 3), shard(3.0, 5)];
        let reference = {
            let mut s = ShardedSource::new(boxed(&datasets), 2).unwrap();
            materialize(&mut s, "ref").unwrap()
        };
        for chunk_size in [1, 2, 3, 5, 64] {
            let mut s = ShardedSource::new(boxed(&datasets), 2).unwrap();
            let mut samples = Vec::new();
            let mut labels = Vec::new();
            drive_chunks(&mut s, chunk_size, IngestMode::Synchronous, |chunk| {
                samples.extend_from_slice(chunk.samples());
                labels.extend_from_slice(chunk.labels());
                Ok(())
            })
            .unwrap();
            assert_eq!(samples, reference.samples(), "chunk size {chunk_size}");
            assert_eq!(labels, reference.labels(), "chunk size {chunk_size}");
            // A second pass after reset replays the identical sequence.
            s.reset().unwrap();
            let again = materialize(&mut s, "again").unwrap();
            assert_eq!(again.samples(), reference.samples());
        }
    }

    #[test]
    fn combinators_compose_with_the_prefetcher() {
        let datasets = vec![shard(1.0, 6), shard(2.0, 4)];
        let collect = |mode: IngestMode| {
            let mut s = ShardedSource::new(boxed(&datasets), 3).unwrap();
            let mut samples = Vec::new();
            drive_chunks(&mut s, 4, mode, |chunk| {
                samples.extend_from_slice(chunk.samples());
                Ok(())
            })
            .unwrap();
            samples
        };
        assert_eq!(
            collect(IngestMode::Synchronous),
            collect(IngestMode::Prefetched)
        );
    }

    #[test]
    fn invalid_shard_lists_are_rejected() {
        assert!(matches!(
            ChainedSource::new(Vec::new()),
            Err(DataError::EmptyDataset)
        ));
        assert!(matches!(
            ShardedSource::new(Vec::new(), 1),
            Err(DataError::EmptyDataset)
        ));
        let narrow = Dataset::new("n", vec![vec![1.0]], vec![0]).unwrap();
        let wide = Dataset::new("w", vec![vec![1.0, 2.0]], vec![0]).unwrap();
        let mismatched: Vec<Box<dyn SampleSource + '_>> = vec![
            Box::new(InMemorySource::new(&narrow)),
            Box::new(InMemorySource::new(&wide)),
        ];
        assert!(matches!(
            ChainedSource::new(mismatched),
            Err(DataError::DimensionMismatch {
                expected: 1,
                found: 2
            })
        ));
        let one = Dataset::new("o", vec![vec![1.0]], vec![0]).unwrap();
        assert!(matches!(
            ShardedSource::new(vec![Box::new(InMemorySource::new(&one))], 0),
            Err(DataError::InvalidParameter(_))
        ));
        let mut ok = ChainedSource::new(vec![Box::new(InMemorySource::new(&one))]).unwrap();
        let mut chunk = SampleChunk::new();
        assert!(ok.next_chunk(0, &mut chunk).is_err());
    }
}

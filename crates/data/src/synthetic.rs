//! Deterministic synthetic surrogates for the paper's image datasets.
//!
//! The paper evaluates on MNIST, Fashion-MNIST, and CIFAR-10. The EnQode
//! pipeline never looks at raw pixels directly — every sample is reduced with
//! PCA and L2-normalised before being embedded — so what matters for
//! reproducing the figures is that samples (a) have the right raw
//! dimensionality, (b) fall into well-separated classes with intra-class
//! variation, and (c) produce dense, sample-dependent feature vectors. The
//! generators here build class templates from smooth 2-D Gaussian bumps
//! (strokes/objects) plus per-sample jitter and pixel noise, which satisfies
//! all three properties while remaining fully deterministic given a seed.

use crate::dataset::{Dataset, DatasetKind};
use crate::error::DataError;
use crate::stream::{SampleChunk, SampleSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic dataset generators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of classes to sample (the paper uses 5 per dataset).
    pub classes: usize,
    /// Number of samples per class (the paper uses 500).
    pub samples_per_class: usize,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            classes: 5,
            samples_per_class: 500,
            seed: 7,
        }
    }
}

/// One smooth 2-D Gaussian bump of a class template.
#[derive(Debug, Clone, Copy)]
struct Bump {
    row: f64,
    col: f64,
    sigma: f64,
    amplitude: f64,
    channel: usize,
}

/// Generates a synthetic surrogate dataset of the given kind.
///
/// # Errors
///
/// Returns [`DataError::InvalidParameter`] if `classes` or
/// `samples_per_class` is zero.
///
/// # Examples
///
/// ```
/// use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
///
/// let config = SyntheticConfig { classes: 2, samples_per_class: 10, seed: 1 };
/// let data = generate_synthetic(DatasetKind::MnistLike, &config)?;
/// assert_eq!(data.len(), 20);
/// assert_eq!(data.feature_dim(), 784);
/// # Ok::<(), enq_data::DataError>(())
/// ```
pub fn generate_synthetic(
    kind: DatasetKind,
    config: &SyntheticConfig,
) -> Result<Dataset, DataError> {
    if config.classes == 0 || config.samples_per_class == 0 {
        return Err(DataError::InvalidParameter(
            "classes and samples_per_class must be positive".to_string(),
        ));
    }
    let (side, channels) = match kind {
        DatasetKind::MnistLike | DatasetKind::FashionMnistLike => (28usize, 1usize),
        DatasetKind::CifarLike => (32usize, 3usize),
    };
    let mut rng = StdRng::seed_from_u64(config.seed ^ kind_tag(kind));

    let mut samples = Vec::with_capacity(config.classes * config.samples_per_class);
    let mut labels = Vec::with_capacity(config.classes * config.samples_per_class);

    for class in 0..config.classes {
        let template = class_template(kind, class, side, &mut rng);
        for _ in 0..config.samples_per_class {
            let sample = render_sample(&template, side, channels, kind, &mut rng);
            samples.push(sample);
            labels.push(class);
        }
    }
    Dataset::new(kind.name(), samples, labels)
}

fn kind_tag(kind: DatasetKind) -> u64 {
    match kind {
        DatasetKind::MnistLike => 0x4d4e495354,
        DatasetKind::FashionMnistLike => 0x464d4e495354,
        DatasetKind::CifarLike => 0x4349464152,
    }
}

/// Builds the per-class arrangement of Gaussian bumps.
fn class_template(kind: DatasetKind, class: usize, side: usize, rng: &mut StdRng) -> Vec<Bump> {
    let (num_bumps, sigma_range, amplitude_range) = match kind {
        // Digits: a handful of thin strokes.
        DatasetKind::MnistLike => (5 + class % 3, (1.5, 3.0), (0.7, 1.0)),
        // Clothing: larger, blockier shapes.
        DatasetKind::FashionMnistLike => (3 + class % 2, (3.5, 6.5), (0.5, 0.9)),
        // Natural images: many soft colour patches.
        DatasetKind::CifarLike => (8 + class % 4, (2.5, 7.0), (0.3, 0.8)),
    };
    let channels = if kind == DatasetKind::CifarLike { 3 } else { 1 };
    let mut bumps = Vec::with_capacity(num_bumps);
    for b in 0..num_bumps {
        // Positions depend on the class so classes are geometrically distinct,
        // with a deterministic pseudo-random component.
        let angle = (class as f64 * 2.39996 + b as f64 * 1.1) % std::f64::consts::TAU;
        let radius = side as f64 * (0.15 + 0.2 * ((b * 7 + class * 3) % 5) as f64 / 5.0);
        let row = side as f64 / 2.0 + radius * angle.sin();
        let col = side as f64 / 2.0 + radius * angle.cos();
        bumps.push(Bump {
            row,
            col,
            sigma: rng.gen_range(sigma_range.0..sigma_range.1),
            amplitude: rng.gen_range(amplitude_range.0..amplitude_range.1),
            channel: b % channels,
        });
    }
    bumps
}

/// Renders one sample: the class template with jittered bump positions and
/// amplitudes, plus pixel noise, clamped to `[0, 1]`.
fn render_sample(
    template: &[Bump],
    side: usize,
    channels: usize,
    kind: DatasetKind,
    rng: &mut StdRng,
) -> Vec<f64> {
    let jitter = match kind {
        DatasetKind::MnistLike => 1.2,
        DatasetKind::FashionMnistLike => 0.8,
        DatasetKind::CifarLike => 1.6,
    };
    let noise_level = match kind {
        DatasetKind::MnistLike => 0.02,
        DatasetKind::FashionMnistLike => 0.04,
        DatasetKind::CifarLike => 0.08,
    };
    let jittered: Vec<Bump> = template
        .iter()
        .map(|b| Bump {
            row: b.row + rng.gen_range(-jitter..jitter),
            col: b.col + rng.gen_range(-jitter..jitter),
            sigma: b.sigma * rng.gen_range(0.9..1.1),
            amplitude: b.amplitude * rng.gen_range(0.85..1.15),
            channel: b.channel,
        })
        .collect();

    let mut pixels = vec![0.0f64; side * side * channels];
    for r in 0..side {
        for c in 0..side {
            for ch in 0..channels {
                let mut value = 0.0;
                for b in &jittered {
                    if channels > 1 && b.channel != ch {
                        // Colour bumps bleed slightly into other channels.
                        let dr = r as f64 - b.row;
                        let dc = c as f64 - b.col;
                        let d2 = dr * dr + dc * dc;
                        value += 0.25 * b.amplitude * (-d2 / (2.0 * b.sigma * b.sigma)).exp();
                        continue;
                    }
                    let dr = r as f64 - b.row;
                    let dc = c as f64 - b.col;
                    let d2 = dr * dr + dc * dc;
                    value += b.amplitude * (-d2 / (2.0 * b.sigma * b.sigma)).exp();
                }
                value += rng.gen_range(-noise_level..noise_level);
                pixels[(r * side + c) * channels + ch] = value.clamp(0.0, 1.0);
            }
        }
    }
    pixels
}

/// Derives an independent per-sample RNG seed (module tag + class/index
/// salting, [`crate::seed::splitmix64`] finaliser).
fn sample_seed(base: u64, class: usize, index: usize) -> u64 {
    crate::seed::splitmix64(
        base ^ 0x53_59_4E_54
            ^ ((class as u64).wrapping_shl(40))
            ^ (index as u64).wrapping_mul(crate::seed::GOLDEN_GAMMA),
    )
}

/// A [`SampleSource`] that *generates* surrogate image samples on demand
/// instead of materialising them: resident memory is one chunk plus the
/// per-class templates, so arbitrarily large synthetic training sets stream
/// through the out-of-core fits in `O(chunk × dim)`.
///
/// Unlike [`generate_synthetic`] (class-major order, one sequential RNG),
/// samples are emitted class-interleaved (sample `i` belongs to class
/// `i % classes`) — the natural order for mini-batch training — and every
/// sample is rendered from an RNG seeded by `(seed, class, index)`, so the
/// stream is identical for every chunk size and across passes. The rendered
/// distribution family (class templates of Gaussian bumps, per-sample
/// jitter and noise) is the same as [`generate_synthetic`]'s.
#[derive(Debug, Clone)]
pub struct SyntheticSource {
    kind: DatasetKind,
    config: SyntheticConfig,
    side: usize,
    channels: usize,
    templates: Vec<Vec<Bump>>,
    cursor: usize,
}

impl SyntheticSource {
    /// Creates a streaming generator for `classes × samples_per_class`
    /// samples of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if `classes` or
    /// `samples_per_class` is zero.
    pub fn new(kind: DatasetKind, config: &SyntheticConfig) -> Result<Self, DataError> {
        if config.classes == 0 || config.samples_per_class == 0 {
            return Err(DataError::InvalidParameter(
                "classes and samples_per_class must be positive".to_string(),
            ));
        }
        let (side, channels) = match kind {
            DatasetKind::MnistLike | DatasetKind::FashionMnistLike => (28usize, 1usize),
            DatasetKind::CifarLike => (32usize, 3usize),
        };
        let templates = (0..config.classes)
            .map(|class| {
                let mut rng =
                    StdRng::seed_from_u64(sample_seed(config.seed ^ kind_tag(kind), class, 0));
                class_template(kind, class, side, &mut rng)
            })
            .collect();
        Ok(Self {
            kind,
            config: *config,
            side,
            channels,
            templates,
            cursor: 0,
        })
    }

    /// Total number of samples one pass yields.
    pub fn total_samples(&self) -> usize {
        self.config.classes * self.config.samples_per_class
    }

    fn render(&self, index: usize) -> (Vec<f64>, usize) {
        let class = index % self.config.classes;
        let within = index / self.config.classes;
        let mut rng = StdRng::seed_from_u64(sample_seed(
            self.config.seed ^ kind_tag(self.kind),
            class,
            within + 1,
        ));
        (
            render_sample(
                &self.templates[class],
                self.side,
                self.channels,
                self.kind,
                &mut rng,
            ),
            class,
        )
    }
}

impl SampleSource for SyntheticSource {
    fn feature_dim(&self) -> usize {
        self.kind.feature_dim()
    }

    fn len_hint(&self) -> Option<usize> {
        Some(self.total_samples())
    }

    fn reset(&mut self) -> Result<(), DataError> {
        self.cursor = 0;
        Ok(())
    }

    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        if max_samples == 0 {
            return Err(DataError::InvalidParameter(
                "max_samples must be positive".to_string(),
            ));
        }
        chunk.clear();
        let end = (self.cursor + max_samples).min(self.total_samples());
        for i in self.cursor..end {
            let (sample, label) = self.render(i);
            chunk.push(sample, label);
        }
        let n = end - self.cursor;
        self.cursor = end;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(kind: DatasetKind) -> Dataset {
        generate_synthetic(
            kind,
            &SyntheticConfig {
                classes: 3,
                samples_per_class: 8,
                seed: 42,
            },
        )
        .unwrap()
    }

    #[test]
    fn dimensions_match_dataset_kind() {
        assert_eq!(small(DatasetKind::MnistLike).feature_dim(), 784);
        assert_eq!(small(DatasetKind::FashionMnistLike).feature_dim(), 784);
        assert_eq!(small(DatasetKind::CifarLike).feature_dim(), 3072);
    }

    #[test]
    fn labels_cover_all_classes() {
        let d = small(DatasetKind::MnistLike);
        assert_eq!(d.len(), 24);
        assert_eq!(d.classes(), vec![0, 1, 2]);
        assert_eq!(d.indices_of_class(1).len(), 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig {
            classes: 2,
            samples_per_class: 3,
            seed: 9,
        };
        let a = generate_synthetic(DatasetKind::CifarLike, &cfg).unwrap();
        let b = generate_synthetic(DatasetKind::CifarLike, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 1,
                samples_per_class: 1,
                seed: 1,
            },
        )
        .unwrap();
        let b = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 1,
                samples_per_class: 1,
                seed: 2,
            },
        )
        .unwrap();
        assert_ne!(a.sample(0), b.sample(0));
    }

    #[test]
    fn pixels_are_in_unit_interval() {
        let d = small(DatasetKind::FashionMnistLike);
        for s in d.samples() {
            for &p in s {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn intra_class_samples_are_more_similar_than_inter_class() {
        let d = small(DatasetKind::MnistLike);
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
        };
        // Compare two samples of class 0 against a class-0/class-1 pair.
        let c0 = d.indices_of_class(0);
        let c1 = d.indices_of_class(1);
        let within = dist(d.sample(c0[0]), d.sample(c0[1]));
        let across = dist(d.sample(c0[0]), d.sample(c1[0]));
        assert!(
            within < across,
            "within-class distance {within} should be below across-class {across}"
        );
    }

    #[test]
    fn invalid_config_rejected() {
        assert!(generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 0,
                samples_per_class: 5,
                seed: 0
            }
        )
        .is_err());
        assert!(SyntheticSource::new(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 0,
                seed: 0
            }
        )
        .is_err());
    }

    #[test]
    fn synthetic_source_is_chunk_size_invariant() {
        let cfg = SyntheticConfig {
            classes: 3,
            samples_per_class: 7,
            seed: 13,
        };
        let collect = |chunk_size: usize| -> Dataset {
            let mut source = SyntheticSource::new(DatasetKind::MnistLike, &cfg).unwrap();
            let mut chunk = crate::stream::SampleChunk::new();
            let mut samples = Vec::new();
            let mut labels = Vec::new();
            while source.next_chunk(chunk_size, &mut chunk).unwrap() > 0 {
                samples.extend_from_slice(chunk.samples());
                labels.extend_from_slice(chunk.labels());
            }
            Dataset::new("s", samples, labels).unwrap()
        };
        let a = collect(1);
        let b = collect(5);
        let c = collect(64);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a.len(), 21);
        // Round-robin labels and a second pass after reset agree.
        assert_eq!(&a.labels()[..6], &[0, 1, 2, 0, 1, 2]);
        let mut source = SyntheticSource::new(DatasetKind::MnistLike, &cfg).unwrap();
        assert_eq!(source.len_hint(), Some(21));
        let first = crate::stream::materialize(&mut source, "p1").unwrap();
        let second = crate::stream::materialize(&mut source, "p2").unwrap();
        assert_eq!(first.samples(), second.samples());
        assert_eq!(first.samples(), a.samples());
    }

    #[test]
    fn synthetic_source_classes_are_separated() {
        let cfg = SyntheticConfig {
            classes: 2,
            samples_per_class: 6,
            seed: 3,
        };
        let mut source = SyntheticSource::new(DatasetKind::MnistLike, &cfg).unwrap();
        let data = crate::stream::materialize(&mut source, "sep").unwrap();
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()
        };
        let c0 = data.indices_of_class(0);
        let c1 = data.indices_of_class(1);
        let within = dist(data.sample(c0[0]), data.sample(c0[1]));
        let across = dist(data.sample(c0[0]), data.sample(c1[0]));
        assert!(
            within < across,
            "within-class {within} should be below across-class {across}"
        );
        for s in data.samples() {
            for &p in s {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }
}

//! Mini-batch k-means for out-of-core clustering (Sculley, WWW 2010 style).
//!
//! Full-batch Lloyd iterations need every sample resident; the mini-batch
//! variant consumes bounded chunks from a [`SampleSource`] and updates each
//! centroid with a per-centroid learning rate `1 / count`, so clustering
//! memory is `O(chunk × dim + k × dim)` no matter how large the source is.
//!
//! Determinism contract: for a fixed `(seed, chunk feeding sequence)` the fit
//! is **bit-reproducible across thread counts**. Three mechanisms enforce it:
//!
//! * per-batch RNGs are derived from `(seed, batch_index)` — never from
//!   scheduling,
//! * nearest-centroid assignment runs over fixed 64-sample shards
//!   ([`enq_parallel::par_chunk_map`]) whose boundaries depend only on the
//!   batch length, with results reduced in shard order,
//! * the SGD centroid updates themselves are applied sequentially in the
//!   seeded shuffle order.
//!
//! After the SGD passes, optional *polish* passes run exact streaming Lloyd
//! steps (one pass per iteration, `O(k × dim)` accumulators) to close the gap
//! to the full-batch optimum; the fit-throughput benchmark gates the
//! remaining inertia gap at ≤ 1.05× full-batch Lloyd.

use crate::error::DataError;
use crate::kmeans::{kmeans_plus_plus_init, squared_distance, KMeansConfig};
use crate::prefetch::{drive_chunks, IngestMode};
use crate::stream::SampleSource;
use enq_parallel::par_chunk_map;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;

/// Fixed shard length for parallel assignment/accumulation. Shard boundaries
/// must not depend on the worker count, or reductions would stop being
/// thread-count invariant.
const ASSIGN_SHARD: usize = 64;

/// Configuration of a streaming mini-batch k-means fit.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniBatchKMeansConfig {
    /// Number of clusters.
    pub k: usize,
    /// Samples requested per chunk when driving a [`SampleSource`].
    pub chunk_size: usize,
    /// Number of SGD passes over the source.
    pub passes: usize,
    /// Samples buffered for the k-means++ initialisation; `0` means
    /// `max(4·k, chunk_size)`. Bounded — this is the only buffer that can
    /// exceed one chunk.
    pub init_size: usize,
    /// Maximum exact streaming-Lloyd refinement passes run after SGD (each is
    /// one extra pass over the source; stops early once centroid movement
    /// falls below `tolerance`).
    pub polish_passes: usize,
    /// Convergence threshold on total squared centroid movement for the
    /// polish passes.
    pub tolerance: f64,
    /// Seed for initialisation and per-batch shuffling.
    pub seed: u64,
    /// How source passes are driven: synchronous reads or double-buffered
    /// prefetch ([`IngestMode::Prefetched`] by default). Both modes are
    /// bit-identical; prefetch overlaps ingestion with the SGD/polish
    /// compute.
    pub ingest: IngestMode,
}

impl Default for MiniBatchKMeansConfig {
    fn default() -> Self {
        Self {
            k: 8,
            chunk_size: 256,
            passes: 3,
            init_size: 0,
            polish_passes: 2,
            tolerance: 1e-6,
            seed: 17,
            ingest: IngestMode::default(),
        }
    }
}

impl MiniBatchKMeansConfig {
    fn effective_init_size(&self) -> usize {
        if self.init_size == 0 {
            (4 * self.k).max(self.chunk_size)
        } else {
            self.init_size.max(self.k)
        }
    }

    fn validate(&self) -> Result<(), DataError> {
        if self.k == 0 {
            return Err(DataError::InvalidParameter(
                "k must be positive".to_string(),
            ));
        }
        if self.chunk_size == 0 {
            return Err(DataError::InvalidParameter(
                "chunk_size must be positive".to_string(),
            ));
        }
        if self.passes == 0 {
            return Err(DataError::InvalidParameter(
                "at least one SGD pass is required".to_string(),
            ));
        }
        Ok(())
    }
}

/// Derives an independent per-batch RNG seed (module tag + golden-gamma
/// salting, [`splitmix64`] finaliser).
fn mix_seed(base: u64, salt: u64) -> u64 {
    crate::seed::splitmix64(base ^ 0x4D42_4B4D ^ salt.wrapping_mul(crate::seed::GOLDEN_GAMMA))
}

/// Index and squared distance of the nearest centroid (strict `<`, so ties
/// keep the lowest index — the rule every clustering path here shares).
fn nearest(centroids: &[Vec<f64>], sample: &[f64]) -> (usize, f64) {
    let mut best = (0usize, f64::INFINITY);
    for (i, c) in centroids.iter().enumerate() {
        let d = squared_distance(sample, c);
        if d < best.1 {
            best = (i, d);
        }
    }
    best
}

/// Sum of squared distances from every sample to its nearest centroid —
/// the quantity the fit-throughput gate compares between the streaming and
/// full-batch fits.
pub fn inertia_of(centroids: &[Vec<f64>], samples: &[Vec<f64>]) -> f64 {
    samples.iter().map(|s| nearest(centroids, s).1).sum()
}

/// A fitted streaming k-means model.
#[derive(Debug, Clone, PartialEq)]
pub struct MiniBatchKMeansModel {
    centroids: Vec<Vec<f64>>,
    inertia: f64,
    samples_per_pass: usize,
    sgd_passes: usize,
    polish_passes: usize,
}

impl MiniBatchKMeansModel {
    /// The cluster centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.centroids.len()
    }

    /// Sum of squared sample-to-nearest-centroid distances over the source
    /// (measured in a dedicated final pass).
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Samples consumed per pass over the source.
    pub fn samples_per_pass(&self) -> usize {
        self.samples_per_pass
    }

    /// SGD passes run.
    pub fn sgd_passes(&self) -> usize {
        self.sgd_passes
    }

    /// Streaming-Lloyd polish passes actually run (early stop on
    /// convergence).
    pub fn polish_passes(&self) -> usize {
        self.polish_passes
    }

    /// Nearest centroid index and squared distance for a new sample.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] for a sample of the wrong
    /// length.
    pub fn nearest_centroid(&self, sample: &[f64]) -> Result<(usize, f64), DataError> {
        let dim = self.centroids[0].len();
        if sample.len() != dim {
            return Err(DataError::DimensionMismatch {
                expected: dim,
                found: sample.len(),
            });
        }
        Ok(nearest(&self.centroids, sample))
    }
}

/// Per-shard partial result of a polish / inertia accumulation pass.
struct ShardPartial {
    sums: Vec<Vec<f64>>,
    counts: Vec<u64>,
    inertia: f64,
}

/// The incremental mini-batch k-means accumulator.
///
/// [`minibatch_kmeans`] drives it from a [`SampleSource`]; callers that
/// partition chunks themselves (the per-class streaming pipeline build in
/// `enqode`) feed it directly: [`MiniBatchKMeans::feed`] per mini-batch,
/// [`MiniBatchKMeans::end_pass`] per pass, then optionally
/// `begin_polish`/`feed_polish`/`end_polish` rounds, and finally
/// [`MiniBatchKMeans::into_centroids`].
#[derive(Debug)]
pub struct MiniBatchKMeans {
    config: MiniBatchKMeansConfig,
    dim: usize,
    threads: NonZeroUsize,
    /// Samples buffered until the k-means++ initialisation can run.
    init_buffer: Vec<Vec<f64>>,
    centroids: Option<Vec<Vec<f64>>>,
    /// Per-centroid SGD update counts (the learning rate is `1 / count`).
    counts: Vec<u64>,
    /// Members assigned to each centroid during the current pass.
    pass_members: Vec<u64>,
    /// Up to `k` most distant (dist², sample) pairs seen this pass, sorted
    /// descending — reseed candidates for empty clusters.
    farthest: Vec<(f64, Vec<f64>)>,
    batch_counter: u64,
    /// Polish-pass accumulators (present between `begin_polish` and
    /// `end_polish`).
    polish: Option<(Vec<Vec<f64>>, Vec<u64>, f64)>,
}

impl MiniBatchKMeans {
    /// Creates an accumulator for `dim`-dimensional samples.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] for a zero `k`, chunk size,
    /// pass count, or dimension.
    pub fn new(
        config: MiniBatchKMeansConfig,
        dim: usize,
        threads: NonZeroUsize,
    ) -> Result<Self, DataError> {
        config.validate()?;
        if dim == 0 {
            return Err(DataError::InvalidParameter(
                "feature dimension must be positive".to_string(),
            ));
        }
        let k = config.k;
        Ok(Self {
            config,
            dim,
            threads,
            init_buffer: Vec::new(),
            centroids: None,
            counts: vec![0; k],
            pass_members: vec![0; k],
            farthest: Vec::new(),
            batch_counter: 0,
            polish: None,
        })
    }

    /// Returns the current centroids (`None` until initialisation has run).
    pub fn centroids(&self) -> Option<&[Vec<f64>]> {
        self.centroids.as_deref()
    }

    /// Current number of clusters (grows when centroids are added via
    /// [`MiniBatchKMeans::add_centroid`]).
    pub fn num_clusters(&self) -> usize {
        self.config.k
    }

    /// Appends a new centroid — the streaming *split* primitive of the
    /// fidelity-threshold `k` search: the adaptive driver audits each
    /// cluster's representative fidelity and, for an offending cluster,
    /// plants a new centroid at its worst-explained member, then re-polishes.
    /// The new centroid starts with an SGD count of 1 so any further
    /// mini-batch updates adapt it quickly.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] before initialisation,
    /// [`DataError::InvalidParameter`] during a polish pass (the pass
    /// accumulators are sized to the old `k`), and
    /// [`DataError::DimensionMismatch`] for a centroid of the wrong length.
    pub fn add_centroid(&mut self, centroid: Vec<f64>) -> Result<(), DataError> {
        if centroid.len() != self.dim {
            return Err(DataError::DimensionMismatch {
                expected: self.dim,
                found: centroid.len(),
            });
        }
        if self.polish.is_some() {
            return Err(DataError::InvalidParameter(
                "cannot add a centroid during a polish pass".to_string(),
            ));
        }
        let centroids = self.centroids.as_mut().ok_or(DataError::EmptyDataset)?;
        centroids.push(centroid);
        self.counts.push(1);
        self.pass_members.push(0);
        self.config.k += 1;
        Ok(())
    }

    fn check_dims(&self, samples: &[Vec<f64>]) -> Result<(), DataError> {
        for s in samples {
            if s.len() != self.dim {
                return Err(DataError::DimensionMismatch {
                    expected: self.dim,
                    found: s.len(),
                });
            }
        }
        Ok(())
    }

    /// Feeds one mini-batch of samples (the SGD phase).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] for samples of the wrong
    /// length.
    pub fn feed(&mut self, samples: &[Vec<f64>]) -> Result<(), DataError> {
        self.check_dims(samples)?;
        if samples.is_empty() {
            return Ok(());
        }
        if self.centroids.is_none() {
            self.init_buffer.extend_from_slice(samples);
            if self.init_buffer.len() >= self.config.effective_init_size() {
                self.initialize_and_flush();
            }
            return Ok(());
        }
        self.sgd_batch(samples);
        Ok(())
    }

    /// Runs the k-means++ initialisation on the buffered samples, then
    /// processes the buffer as the first mini-batch.
    fn initialize_and_flush(&mut self) {
        let mut rng = StdRng::seed_from_u64(mix_seed(self.config.seed, 0));
        let k = self.config.k.min(self.init_buffer.len());
        let mut centroids = kmeans_plus_plus_init(&self.init_buffer, k, &mut rng);
        // Fewer buffered samples than k (tiny class/stream): duplicate the
        // buffer cyclically so the centroid count stays k; the SGD updates
        // and reseeding separate them afterwards.
        let mut i = 0usize;
        while centroids.len() < self.config.k {
            centroids.push(self.init_buffer[i % self.init_buffer.len()].clone());
            i += 1;
        }
        self.centroids = Some(centroids);
        let buffer = std::mem::take(&mut self.init_buffer);
        self.sgd_batch(&buffer);
    }

    /// One Sculley mini-batch step: frozen-centroid assignment, then
    /// sequential per-sample updates with rate `1 / count[c]` in seeded
    /// shuffle order.
    fn sgd_batch(&mut self, samples: &[Vec<f64>]) {
        self.batch_counter += 1;
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(mix_seed(self.config.seed, self.batch_counter));
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..i + 1);
            order.swap(i, j);
        }
        let assignments: Vec<(usize, f64)> = {
            // Assignment against the batch-start centroids, in parallel.
            let frozen = self.centroids.as_deref().expect("initialised before SGD");
            par_chunk_map(self.threads, samples, ASSIGN_SHARD, |_, shard| {
                shard.iter().map(|s| nearest(frozen, s)).collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
        };
        for &idx in &order {
            let (c, dist) = assignments[idx];
            self.counts[c] += 1;
            self.pass_members[c] += 1;
            let eta = 1.0 / self.counts[c] as f64;
            let centroid = &mut self.centroids.as_mut().expect("checked above")[c];
            for (cv, sv) in centroid.iter_mut().zip(samples[idx].iter()) {
                *cv += eta * (sv - *cv);
            }
            self.remember_farthest(dist, &samples[idx]);
        }
    }

    /// Keeps the up-to-`k` most distant samples of the pass as reseed
    /// candidates.
    fn remember_farthest(&mut self, dist: f64, sample: &[f64]) {
        let cap = self.config.k;
        if self.farthest.len() == cap && dist <= self.farthest[cap - 1].0 {
            return;
        }
        let pos = self
            .farthest
            .iter()
            .position(|(d, _)| dist > *d)
            .unwrap_or(self.farthest.len());
        self.farthest.insert(pos, (dist, sample.to_vec()));
        self.farthest.truncate(cap);
    }

    /// Ends one SGD pass: clusters that received no members are reseeded to
    /// the most distant samples observed during the pass (their learning
    /// rate is reset so they adapt quickly).
    pub fn end_pass(&mut self) {
        if let Some(centroids) = self.centroids.as_mut() {
            let mut candidates = std::mem::take(&mut self.farthest).into_iter();
            for (c, centroid) in centroids.iter_mut().enumerate() {
                if self.pass_members[c] == 0 {
                    if let Some((_, sample)) = candidates.next() {
                        *centroid = sample;
                        self.counts[c] = 1;
                    }
                }
            }
        }
        self.farthest.clear();
        self.pass_members = vec![0; self.config.k];
    }

    /// Forces initialisation when the stream ended before `init_size`
    /// samples arrived: the buffered samples are clustered directly with
    /// full-batch k-means++ + Lloyd (the buffer is small by construction).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] when no samples were ever fed.
    pub fn ensure_initialized(&mut self) -> Result<(), DataError> {
        if self.centroids.is_some() {
            return Ok(());
        }
        if self.init_buffer.is_empty() {
            return Err(DataError::EmptyDataset);
        }
        let buffer = std::mem::take(&mut self.init_buffer);
        let k = self.config.k.min(buffer.len());
        let model = crate::kmeans::kmeans(
            &buffer,
            &KMeansConfig {
                k,
                seed: mix_seed(self.config.seed, 0),
                ..KMeansConfig::default()
            },
        )?;
        let mut centroids = model.centroids().to_vec();
        let mut i = 0usize;
        while centroids.len() < self.config.k {
            centroids.push(buffer[i % buffer.len()].clone());
            i += 1;
        }
        for c in 0..k {
            self.counts[c] = model
                .assignments()
                .iter()
                .filter(|&&a| a == c)
                .count()
                .max(1) as u64;
        }
        self.centroids = Some(centroids);
        Ok(())
    }

    /// Starts an exact streaming-Lloyd refinement pass.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] if initialisation never ran.
    pub fn begin_polish(&mut self) -> Result<(), DataError> {
        self.ensure_initialized()?;
        self.polish = Some((
            vec![vec![0.0; self.dim]; self.config.k],
            vec![0; self.config.k],
            0.0,
        ));
        Ok(())
    }

    /// Accumulates one chunk into the current polish pass (parallel over
    /// fixed shards, reduced in shard order).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] outside a polish pass and
    /// dimension errors for bad samples.
    pub fn feed_polish(&mut self, samples: &[Vec<f64>]) -> Result<(), DataError> {
        self.check_dims(samples)?;
        // Validate the phase before any work: an active polish pass implies
        // `begin_polish` ran, which implies initialisation.
        if self.polish.is_none() {
            return Err(DataError::InvalidParameter(
                "feed_polish called outside a polish pass".to_string(),
            ));
        }
        let centroids = self
            .centroids
            .as_deref()
            .expect("begin_polish initialises centroids");
        let k = self.config.k;
        let dim = self.dim;
        let partials: Vec<ShardPartial> =
            par_chunk_map(self.threads, samples, ASSIGN_SHARD, |_, shard| {
                let mut partial = ShardPartial {
                    sums: vec![vec![0.0; dim]; k],
                    counts: vec![0; k],
                    inertia: 0.0,
                };
                for s in shard {
                    let (c, d) = nearest(centroids, s);
                    partial.counts[c] += 1;
                    partial.inertia += d;
                    for (acc, v) in partial.sums[c].iter_mut().zip(s.iter()) {
                        *acc += v;
                    }
                }
                partial
            });
        let (sums, counts, inertia) = self
            .polish
            .as_mut()
            .expect("phase validated at function entry");
        for partial in partials {
            for (global, local) in sums.iter_mut().zip(partial.sums) {
                for (g, l) in global.iter_mut().zip(local) {
                    *g += l;
                }
            }
            for (g, l) in counts.iter_mut().zip(partial.counts) {
                *g += l;
            }
            *inertia += partial.inertia;
        }
        Ok(())
    }

    /// Finishes a polish pass: recomputes centroids as member means (empty
    /// clusters keep their previous position) and returns `(total squared
    /// centroid movement, inertia against the pre-update centroids)`.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] outside a polish pass.
    pub fn end_polish(&mut self) -> Result<(f64, f64), DataError> {
        let (sums, counts, inertia) = self.polish.take().ok_or_else(|| {
            DataError::InvalidParameter("end_polish called outside a polish pass".to_string())
        })?;
        let centroids = self.centroids.as_mut().expect("polish requires centroids");
        let mut movement = 0.0;
        for ((centroid, sum), &count) in centroids.iter_mut().zip(sums.iter()).zip(counts.iter()) {
            if count == 0 {
                continue;
            }
            let mut dist = 0.0;
            for (cv, sv) in centroid.iter_mut().zip(sum.iter()) {
                let new = sv / count as f64;
                dist += (new - *cv) * (new - *cv);
                *cv = new;
            }
            movement += dist;
        }
        Ok((movement, inertia))
    }

    /// Computes the inertia of one chunk against the current centroids
    /// (assignment only, no updates).
    ///
    /// # Errors
    ///
    /// Returns dimension errors for bad samples and
    /// [`DataError::EmptyDataset`] before initialisation.
    pub fn chunk_inertia(&self, samples: &[Vec<f64>]) -> Result<f64, DataError> {
        self.check_dims(samples)?;
        let centroids = self.centroids.as_deref().ok_or(DataError::EmptyDataset)?;
        let partials = par_chunk_map(self.threads, samples, ASSIGN_SHARD, |_, shard| {
            inertia_of(centroids, shard)
        });
        Ok(partials.into_iter().sum())
    }

    /// Consumes the accumulator and returns the centroids.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] when no samples were ever fed.
    pub fn into_centroids(mut self) -> Result<Vec<Vec<f64>>, DataError> {
        self.ensure_initialized()?;
        Ok(self.centroids.expect("ensure_initialized sets centroids"))
    }
}

/// Fits mini-batch k-means over a [`SampleSource`] with the default worker
/// count.
///
/// # Errors
///
/// Propagates configuration, source, and dimension errors.
pub fn minibatch_kmeans(
    source: &mut dyn SampleSource,
    config: &MiniBatchKMeansConfig,
) -> Result<MiniBatchKMeansModel, DataError> {
    minibatch_kmeans_with_threads(source, config, enq_parallel::default_threads())
}

/// [`minibatch_kmeans`] with an explicit worker count. The result is
/// bit-identical for every `threads` value.
///
/// # Errors
///
/// Same contract as [`minibatch_kmeans`].
pub fn minibatch_kmeans_with_threads(
    source: &mut dyn SampleSource,
    config: &MiniBatchKMeansConfig,
    threads: NonZeroUsize,
) -> Result<MiniBatchKMeansModel, DataError> {
    let mut acc = MiniBatchKMeans::new(config.clone(), source.feature_dim(), threads)?;
    let mut samples_per_pass = 0usize;
    for pass in 0..config.passes {
        source.reset()?;
        let mut seen = 0usize;
        drive_chunks(source, config.chunk_size, config.ingest, |chunk| {
            seen += chunk.len();
            acc.feed(chunk.samples())
        })?;
        if pass == 0 {
            samples_per_pass = seen;
        }
        acc.end_pass();
    }
    acc.ensure_initialized()?;

    let mut polish_passes = 0usize;
    for _ in 0..config.polish_passes {
        source.reset()?;
        acc.begin_polish()?;
        drive_chunks(source, config.chunk_size, config.ingest, |chunk| {
            acc.feed_polish(chunk.samples())
        })?;
        let (movement, _) = acc.end_polish()?;
        polish_passes += 1;
        if movement < config.tolerance {
            break;
        }
    }

    // Dedicated final pass: inertia against the *final* centroids.
    source.reset()?;
    let mut inertia = 0.0;
    drive_chunks(source, config.chunk_size, config.ingest, |chunk| {
        inertia += acc.chunk_inertia(chunk.samples())?;
        Ok(())
    })?;

    Ok(MiniBatchKMeansModel {
        centroids: acc.into_centroids()?,
        inertia,
        samples_per_pass,
        sgd_passes: config.passes,
        polish_passes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::kmeans::{kmeans, KMeansConfig};
    use crate::stream::InMemorySource;

    fn blob_dataset(per_blob: usize) -> Dataset {
        let centers = [[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]];
        let mut samples = Vec::new();
        let mut labels = Vec::new();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..per_blob {
            for (b, c) in centers.iter().enumerate() {
                samples.push(vec![
                    c[0] + rng.gen_range(-0.5..0.5),
                    c[1] + rng.gen_range(-0.5..0.5),
                ]);
                labels.push(b);
            }
        }
        Dataset::new("blobs", samples, labels).unwrap()
    }

    fn config(k: usize) -> MiniBatchKMeansConfig {
        MiniBatchKMeansConfig {
            k,
            chunk_size: 16,
            passes: 3,
            polish_passes: 3,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let data = blob_dataset(40);
        let mut source = InMemorySource::new(&data);
        let model = minibatch_kmeans(&mut source, &config(3)).unwrap();
        assert_eq!(model.num_clusters(), 3);
        assert_eq!(model.samples_per_pass(), 120);
        // Every true center has a centroid within 1.
        for center in [[0.0, 0.0], [10.0, 10.0], [-10.0, 10.0]] {
            let (_, d) = model.nearest_centroid(&center).unwrap();
            assert!(d < 1.0, "blob center {center:?} unexplained, d² = {d}");
        }
        assert!(model.nearest_centroid(&[1.0]).is_err());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let data = blob_dataset(30);
        let cfg = config(3);
        let fit = |threads: usize| {
            let mut source = InMemorySource::new(&data);
            minibatch_kmeans_with_threads(&mut source, &cfg, NonZeroUsize::new(threads).unwrap())
                .unwrap()
        };
        let one = fit(1);
        for threads in [2, 4, 7] {
            let other = fit(threads);
            assert_eq!(
                one, other,
                "mini-batch k-means drifted at {threads} threads"
            );
        }
    }

    #[test]
    fn inertia_close_to_full_batch_lloyd() {
        let data = blob_dataset(50);
        let mut source = InMemorySource::new(&data);
        let streaming = minibatch_kmeans(&mut source, &config(3)).unwrap();
        let full = kmeans(
            data.samples(),
            &KMeansConfig {
                k: 3,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            streaming.inertia() <= full.inertia() * 1.05 + 1e-9,
            "streaming {} vs full-batch {}",
            streaming.inertia(),
            full.inertia()
        );
    }

    #[test]
    fn tiny_streams_fall_back_to_exact_kmeans() {
        // Fewer samples than init_size: the accumulator must still produce k
        // centroids from the buffered fallback.
        let data = Dataset::new(
            "tiny",
            vec![vec![0.0, 0.0], vec![10.0, 10.0], vec![0.1, 0.1]],
            vec![0, 1, 0],
        )
        .unwrap();
        let mut source = InMemorySource::new(&data);
        let model = minibatch_kmeans(&mut source, &config(2)).unwrap();
        assert_eq!(model.num_clusters(), 2);
        let (a, _) = model.nearest_centroid(&[0.0, 0.0]).unwrap();
        let (b, _) = model.nearest_centroid(&[10.0, 10.0]).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn empty_cluster_reseeding_spreads_centroids() {
        // k = 3 on data with three blobs but an adversarial init buffer
        // (first chunk all from one blob) still ends with every blob
        // explained, thanks to farthest-sample reseeding.
        let mut samples = Vec::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..40 {
            samples.push(vec![rng.gen_range(-0.1..0.1), rng.gen_range(-0.1..0.1)]);
        }
        for _ in 0..40 {
            samples.push(vec![
                20.0 + rng.gen_range(-0.1..0.1),
                rng.gen_range(-0.1..0.1),
            ]);
        }
        for _ in 0..40 {
            samples.push(vec![
                -20.0 + rng.gen_range(-0.1..0.1),
                rng.gen_range(-0.1..0.1),
            ]);
        }
        let labels = vec![0; samples.len()];
        let data = Dataset::new("adversarial", samples, labels).unwrap();
        let mut source = InMemorySource::new(&data);
        let model = minibatch_kmeans(
            &mut source,
            &MiniBatchKMeansConfig {
                k: 3,
                chunk_size: 40,
                init_size: 40,
                passes: 3,
                polish_passes: 4,
                seed: 11,
                ..Default::default()
            },
        )
        .unwrap();
        for center in [[0.0, 0.0], [20.0, 0.0], [-20.0, 0.0]] {
            let (_, d) = model.nearest_centroid(&center).unwrap();
            assert!(d < 1.0, "blob at {center:?} has no centroid (d² = {d})");
        }
    }

    #[test]
    fn prefetched_ingestion_is_bit_identical_to_synchronous() {
        let data = blob_dataset(30);
        for chunk_size in [8, 16, 33] {
            let fit = |ingest: IngestMode| {
                let mut source = InMemorySource::new(&data);
                minibatch_kmeans(
                    &mut source,
                    &MiniBatchKMeansConfig {
                        ingest,
                        chunk_size,
                        ..config(3)
                    },
                )
                .unwrap()
            };
            let sync = fit(IngestMode::Synchronous);
            let prefetched = fit(IngestMode::Prefetched);
            assert_eq!(sync, prefetched, "chunk size {chunk_size} diverged");
        }
    }

    #[test]
    fn add_centroid_splits_and_guards_phases() {
        let mut acc =
            MiniBatchKMeans::new(MiniBatchKMeansConfig::default(), 2, NonZeroUsize::MIN).unwrap();
        // Before initialisation: no centroids to split.
        assert!(matches!(
            acc.add_centroid(vec![0.0, 0.0]),
            Err(DataError::EmptyDataset)
        ));
        acc.feed(&[vec![0.0, 0.0], vec![1.0, 1.0], vec![9.0, 9.0]])
            .unwrap();
        acc.ensure_initialized().unwrap();
        let k = acc.num_clusters();
        assert!(acc.add_centroid(vec![1.0]).is_err(), "wrong dimension");
        acc.add_centroid(vec![5.0, 5.0]).unwrap();
        assert_eq!(acc.num_clusters(), k + 1);
        assert_eq!(acc.centroids().unwrap().len(), k + 1);
        // Mid-polish splits are rejected (accumulators are sized to old k).
        acc.begin_polish().unwrap();
        assert!(acc.add_centroid(vec![2.0, 2.0]).is_err());
        acc.feed_polish(&[vec![5.1, 5.2]]).unwrap();
        acc.end_polish().unwrap();
        // After the pass it works again, and further passes accept the
        // grown model.
        acc.add_centroid(vec![-3.0, 4.0]).unwrap();
        acc.begin_polish().unwrap();
        acc.feed_polish(&[vec![-3.0, 4.1]]).unwrap();
        acc.end_polish().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = blob_dataset(5);
        let mut source = InMemorySource::new(&data);
        for bad in [
            MiniBatchKMeansConfig {
                k: 0,
                ..Default::default()
            },
            MiniBatchKMeansConfig {
                chunk_size: 0,
                ..Default::default()
            },
            MiniBatchKMeansConfig {
                passes: 0,
                ..Default::default()
            },
        ] {
            assert!(minibatch_kmeans(&mut source, &bad).is_err());
        }
        assert!(
            MiniBatchKMeans::new(MiniBatchKMeansConfig::default(), 0, NonZeroUsize::MIN).is_err()
        );
    }

    #[test]
    fn feed_polish_outside_a_pass_is_an_error_not_a_panic() {
        let mut acc =
            MiniBatchKMeans::new(MiniBatchKMeansConfig::default(), 2, NonZeroUsize::MIN).unwrap();
        // Never initialised, never in a polish pass: must error, not panic.
        let err = acc.feed_polish(&[vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, DataError::InvalidParameter(_)), "{err}");
        assert!(acc.end_polish().is_err());
        // After feeding and beginning a polish pass it works.
        acc.feed(&[vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        acc.begin_polish().unwrap();
        acc.feed_polish(&[vec![0.5, 0.5]]).unwrap();
        acc.end_polish().unwrap();
    }

    #[test]
    fn inertia_of_matches_definition() {
        let centroids = vec![vec![0.0, 0.0], vec![10.0, 0.0]];
        let samples = vec![vec![1.0, 0.0], vec![9.0, 0.0], vec![5.0, 0.0]];
        // 1 + 1 + 25.
        assert!((inertia_of(&centroids, &samples) - 27.0).abs() < 1e-12);
    }
}

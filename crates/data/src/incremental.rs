//! Incremental (out-of-core) principal component analysis.
//!
//! [`IncrementalPca`] consumes bounded chunks and maintains a *merge-and-
//! truncate* summary of everything seen so far (Ross et al., IJCV 2008; the
//! scheme behind scikit-learn's `IncrementalPCA`): a running mean plus a
//! small set of scaled orthonormal directions `σᵢ·vᵢ`. Each chunk is merged
//! by stacking
//!
//! ```text
//!   [ previous σ·Vᵀ rows ]
//!   [ chunk centered on its own mean ]
//!   [ √(n·b/(n+b)) · (mean − chunk_mean) ]   (mean-shift correction row)
//! ```
//!
//! and taking the top singular directions of the stack, computed exactly via
//! the Gram matrix of whichever side is smaller and the symmetric Jacobi
//! eigensolver from `enq-linalg`. Resident memory is
//! `O((sketch + chunk) × dim)` with `sketch = num_components + 8` —
//! independent of the total sample count.
//!
//! On a single chunk the merge degenerates to an exact thin SVD of the
//! centered chunk, so the incremental fit reproduces [`Pca::fit`] (up to
//! component sign) on in-memory data; multi-chunk fits are exact whenever
//! the data's effective rank stays within the sketch, and otherwise lose
//! only the variance below the sketch's tail.

use crate::error::DataError;
use crate::pca::{Pca, RANK_REL_TOL};
use enq_linalg::{symmetric_eigen, RMatrix};
use enq_parallel::par_chunk_map;
use std::num::NonZeroUsize;

/// Extra directions retained beyond `num_components` between merges; the
/// tail absorbs truncation error so the leading components stay accurate.
const OVERSAMPLE: usize = 8;

/// Hard cap on the adaptively grown oversample: the sketch never exceeds
/// `num_components + MAX_OVERSAMPLE` directions (or `dim`), bounding the
/// per-merge Gram eigenproblem even on full-rank noise streams.
const MAX_OVERSAMPLE: usize = 32;

/// A merge that truncates more than this fraction of its stack's total
/// variance (`Σσ²`) grows the sketch by another [`OVERSAMPLE`] directions:
/// accumulating tail loss is exactly the regime where a wider tail keeps the
/// leading components accurate.
const TAIL_GROWTH_REL: f64 = 1e-10;

/// Upper bound on rows merged per internal step: larger chunks are split so
/// the Gram eigenproblem stays small. The symmetric Jacobi eigensolve costs
/// `O((sketch + MERGE_ROWS + 1)³)` per merge, so merging fewer rows more
/// often is a large net win: at the fit benchmark's shape, 64-row merges cut
/// the PCA pass several-fold versus 256-row merges while staying exact on
/// in-sketch-rank data (the merge-and-truncate summary is associative there).
const MERGE_ROWS: usize = 64;

/// Streaming PCA accumulator. Feed chunks with
/// [`IncrementalPca::partial_fit`], then convert into a regular [`Pca`] with
/// [`IncrementalPca::finalize`] (strict) or
/// [`IncrementalPca::finalize_truncated`] (clamps to the effective rank).
#[derive(Debug, Clone)]
pub struct IncrementalPca {
    dim: usize,
    num_components: usize,
    sketch: usize,
    /// Ceiling for adaptive sketch growth:
    /// `min(num_components + MAX_OVERSAMPLE, dim)`.
    max_sketch: usize,
    threads: NonZeroUsize,
    count: usize,
    mean: Vec<f64>,
    /// `basis[i]` = `σᵢ · vᵢ` — the i-th right singular direction of the
    /// centered data seen so far, scaled by its singular value; descending.
    basis: Vec<Vec<f64>>,
    singular: Vec<f64>,
    /// Cumulative `σ²` mass truncated past the sketch across all merges —
    /// the observable that drives (and diagnoses) sketch growth.
    tail_dropped: f64,
    /// `dropped / total` variance fraction of the most recent merge.
    last_tail_fraction: f64,
    /// Number of times the sketch grew.
    growths: usize,
}

impl IncrementalPca {
    /// Creates an accumulator for `dim`-dimensional samples targeting
    /// `num_components` output components, using the default worker count
    /// for the internal Gram products.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidParameter`] if `num_components` is zero
    /// or exceeds `dim`.
    pub fn new(dim: usize, num_components: usize) -> Result<Self, DataError> {
        Self::with_threads(dim, num_components, enq_parallel::default_threads())
    }

    /// [`IncrementalPca::new`] with an explicit worker count. The fit is
    /// bit-identical for every `threads` value (parallel work is sharded on
    /// fixed boundaries and reduced in shard order).
    ///
    /// # Errors
    ///
    /// Same as [`IncrementalPca::new`].
    pub fn with_threads(
        dim: usize,
        num_components: usize,
        threads: NonZeroUsize,
    ) -> Result<Self, DataError> {
        if num_components == 0 || num_components > dim {
            return Err(DataError::InvalidParameter(format!(
                "cannot extract {num_components} components from {dim}-dimensional data"
            )));
        }
        Ok(Self {
            dim,
            num_components,
            sketch: (num_components + OVERSAMPLE).min(dim),
            max_sketch: (num_components + MAX_OVERSAMPLE).min(dim),
            threads,
            count: 0,
            mean: vec![0.0; dim],
            basis: Vec::new(),
            singular: Vec::new(),
            tail_dropped: 0.0,
            last_tail_fraction: 0.0,
            growths: 0,
        })
    }

    /// Number of samples consumed so far.
    pub fn samples_seen(&self) -> usize {
        self.count
    }

    /// The feature dimension this accumulator expects.
    pub fn feature_dim(&self) -> usize {
        self.dim
    }

    /// Target number of output components.
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Running mean of all samples seen.
    pub fn mean(&self) -> &[f64] {
        &self.mean
    }

    /// Feeds one chunk of samples.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DimensionMismatch`] for samples of the wrong
    /// length and propagates eigensolver failures.
    pub fn partial_fit(&mut self, samples: &[Vec<f64>]) -> Result<(), DataError> {
        for s in samples {
            if s.len() != self.dim {
                return Err(DataError::DimensionMismatch {
                    expected: self.dim,
                    found: s.len(),
                });
            }
        }
        // Oversized chunks are split so the Gram eigenproblem stays bounded;
        // sub-chunk boundaries depend only on the chunk length, keeping the
        // fit deterministic.
        for sub in samples.chunks(MERGE_ROWS) {
            self.merge(sub)?;
        }
        Ok(())
    }

    /// Merges one bounded batch into the summary.
    fn merge(&mut self, batch: &[Vec<f64>]) -> Result<(), DataError> {
        if batch.is_empty() {
            return Ok(());
        }
        let b = batch.len();
        let n = self.count;
        let mut batch_mean = vec![0.0; self.dim];
        for s in batch {
            for (m, v) in batch_mean.iter_mut().zip(s.iter()) {
                *m += v / b as f64;
            }
        }

        // Assemble the stacked matrix A whose right singular directions are
        // the updated summary.
        let mut rows: Vec<Vec<f64>> = Vec::with_capacity(self.basis.len() + b + usize::from(n > 0));
        rows.extend(self.basis.iter().cloned());
        for s in batch {
            rows.push(
                s.iter()
                    .zip(batch_mean.iter())
                    .map(|(v, m)| v - m)
                    .collect(),
            );
        }
        if n > 0 {
            let w = ((n as f64 * b as f64) / (n + b) as f64).sqrt();
            rows.push(
                self.mean
                    .iter()
                    .zip(batch_mean.iter())
                    .map(|(m, bm)| w * (m - bm))
                    .collect(),
            );
        }

        // Total variance of the stack (`trace(A·Aᵀ) = Σ σᵢ²` over *all*
        // singular directions): whatever the truncated sketch does not keep
        // is the tail mass this merge drops.
        let total_energy: f64 = rows.iter().map(|r| dot(r, r)).sum();
        let (singular, basis) = top_right_singular(&rows, self.sketch, self.threads)?;
        let kept_energy: f64 = singular.iter().map(|s| s * s).sum();
        let dropped = (total_energy - kept_energy).max(0.0);
        self.tail_dropped += dropped;
        self.last_tail_fraction = if total_energy > 0.0 {
            dropped / total_energy
        } else {
            0.0
        };
        // Adaptive oversampling: when a merge visibly truncates variance,
        // widen the tail (bounded by `max_sketch`) so later merges keep the
        // leading components accurate. The rule depends only on the data and
        // chunk sequence — never on scheduling — so the fit stays
        // bit-reproducible across thread counts.
        if self.last_tail_fraction > TAIL_GROWTH_REL && self.sketch < self.max_sketch {
            self.sketch = (self.sketch + OVERSAMPLE).min(self.max_sketch);
            self.growths += 1;
        }
        self.singular = singular;
        self.basis = basis;
        for (m, bm) in self.mean.iter_mut().zip(batch_mean.iter()) {
            *m = (*m * n as f64 + bm * b as f64) / (n + b) as f64;
        }
        self.count = n + b;
        Ok(())
    }

    /// Cumulative `σ²` variance mass truncated past the sketch across all
    /// merges — `0.0` whenever the data's effective rank stayed within the
    /// sketch (the regime where the incremental fit is exact).
    pub fn tail_mass_dropped(&self) -> f64 {
        self.tail_dropped
    }

    /// Fraction of the most recent merge's total variance that was
    /// truncated.
    pub fn last_merge_tail_fraction(&self) -> f64 {
        self.last_tail_fraction
    }

    /// Current sketch width (directions retained between merges); starts at
    /// `num_components + 8` and grows adaptively up to
    /// `num_components + 32` (clamped to the feature dimension) as
    /// truncation error accumulates.
    pub fn sketch_size(&self) -> usize {
        self.sketch
    }

    /// Number of adaptive sketch-growth steps taken so far.
    pub fn sketch_growths(&self) -> usize {
        self.growths
    }

    /// Number of directions whose variance is non-negligible relative to the
    /// dominant one (same `RANK_REL_TOL` rule as [`Pca::fit`]).
    pub fn effective_rank(&self) -> usize {
        let lambda_max = self.singular.first().map_or(0.0, |s| s * s);
        if lambda_max <= 0.0 {
            return 0;
        }
        self.singular
            .iter()
            .take_while(|&&s| s * s > lambda_max * RANK_REL_TOL)
            .count()
    }

    fn build_pca(&self, components_wanted: usize) -> Result<Pca, DataError> {
        if self.count == 0 {
            return Err(DataError::EmptyDataset);
        }
        let denom = (self.count as f64 - 1.0).max(1.0);
        let mut components = Vec::with_capacity(components_wanted);
        let mut explained_variance = Vec::with_capacity(components_wanted);
        for i in 0..components_wanted {
            let sigma = self.singular[i];
            components.push(self.basis[i].iter().map(|v| v / sigma).collect());
            explained_variance.push(sigma * sigma / denom);
        }
        Ok(Pca::from_parts(
            self.mean.clone(),
            components,
            explained_variance,
        ))
    }

    /// Converts the summary into a [`Pca`] with exactly the configured
    /// number of components.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] when nothing was fed and
    /// [`DataError::RankDeficient`] when the data's effective rank is below
    /// `num_components` (matching the strict [`Pca::fit`] contract).
    pub fn finalize(&self) -> Result<Pca, DataError> {
        if self.count == 0 {
            return Err(DataError::EmptyDataset);
        }
        let effective = self.effective_rank();
        if effective < self.num_components {
            return Err(DataError::RankDeficient {
                requested: self.num_components,
                effective,
            });
        }
        self.build_pca(self.num_components)
    }

    /// Converts the summary into a [`Pca`] with up to `num_components`
    /// components, clamping to the effective rank (matching
    /// [`Pca::fit_truncated`]).
    ///
    /// # Errors
    ///
    /// Returns [`DataError::EmptyDataset`] when nothing was fed.
    pub fn finalize_truncated(&self) -> Result<Pca, DataError> {
        if self.count == 0 {
            return Err(DataError::EmptyDataset);
        }
        self.build_pca(self.num_components.min(self.effective_rank()))
    }
}

/// Computes the top-`keep` right singular pairs `(σᵢ, σᵢ·vᵢ)` of the row
/// matrix `rows` via the Gram matrix of the smaller side.
fn top_right_singular(
    rows: &[Vec<f64>],
    keep: usize,
    threads: NonZeroUsize,
) -> Result<(Vec<f64>, Vec<Vec<f64>>), DataError> {
    let m = rows.len();
    let d = rows[0].len();

    // Absolute floor: a singular value at denormal scale carries no
    // direction information and would blow up the 1/σ normalisation.
    let sigma_floor = 1e-150;

    if m <= d {
        // G = A·Aᵀ (m × m); eigenvector uᵢ gives σᵢ·vᵢ = Aᵀ·uᵢ directly.
        // Only the upper triangle is computed (the dot product is exactly
        // symmetric in floating point, so mirroring is bit-identical to
        // recomputing) — this halves the dominant cost of every merge.
        let g = gram_from_triangle(m, threads, |i, j| dot(&rows[i], &rows[j]));
        let eig = symmetric_eigen(&g)?;
        let mut singular = Vec::new();
        let mut basis = Vec::new();
        for c in 0..keep.min(m) {
            let sigma = eig.eigenvalues[c].max(0.0).sqrt();
            if sigma <= sigma_floor {
                break;
            }
            // σ·v = Aᵀ·u; rescale so the stored row is exactly σ × unit(v),
            // keeping the basis numerically orthonormal across many merges.
            let mut scaled = vec![0.0; d];
            for (j, row) in rows.iter().enumerate() {
                let w = eig.eigenvectors[(j, c)];
                if w == 0.0 {
                    continue;
                }
                for (acc, v) in scaled.iter_mut().zip(row.iter()) {
                    *acc += w * v;
                }
            }
            let norm = dot(&scaled, &scaled).sqrt();
            if norm <= sigma_floor {
                break;
            }
            let rescale = sigma / norm;
            for v in scaled.iter_mut() {
                *v *= rescale;
            }
            singular.push(sigma);
            basis.push(scaled);
        }
        Ok((singular, basis))
    } else {
        // Wide stacks (more rows than features — only possible for small
        // feature dimensions given MERGE_ROWS): G = Aᵀ·A (d × d) yields the
        // right singular vectors directly.
        let g = gram_from_triangle(d, threads, |p, q| {
            rows.iter().map(|r| r[p] * r[q]).sum::<f64>()
        });
        let eig = symmetric_eigen(&g)?;
        let mut singular = Vec::new();
        let mut basis = Vec::new();
        for c in 0..keep.min(d) {
            let sigma = eig.eigenvalues[c].max(0.0).sqrt();
            if sigma <= sigma_floor {
                break;
            }
            singular.push(sigma);
            basis.push((0..d).map(|p| sigma * eig.eigenvectors[(p, c)]).collect());
        }
        Ok((singular, basis))
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Assembles the symmetric `n × n` matrix whose `(i, j ≥ i)` entries come
/// from `entry`, computing only the upper triangle in parallel (fixed row
/// shards, deterministic) and mirroring it.
fn gram_from_triangle(
    n: usize,
    threads: NonZeroUsize,
    entry: impl Fn(usize, usize) -> f64 + Sync,
) -> RMatrix {
    let indices: Vec<usize> = (0..n).collect();
    let triangles = par_chunk_map(threads, &indices, 8, |_, shard| {
        shard
            .iter()
            .map(|&i| (i..n).map(|j| entry(i, j)).collect::<Vec<f64>>())
            .collect::<Vec<_>>()
    });
    let mut g = RMatrix::zeros(n, n);
    for (i, row) in triangles.into_iter().flatten().enumerate() {
        for (offset, v) in row.into_iter().enumerate() {
            let j = i + offset;
            g[(i, j)] = v;
            g[(j, i)] = v;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Samples lying exactly in a low-dimensional subspace (plus an offset),
    /// so both the randomized full-batch fit and the incremental fit are
    /// exact and must agree to near machine precision.
    fn exact_rank_samples(n: usize, dim: usize, rank: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let basis: Vec<Vec<f64>> = (0..rank)
            .map(|r| {
                (0..dim)
                    .map(|i| ((i as f64 + 1.3) * (r as f64 * 0.9 + 0.7)).sin())
                    .collect()
            })
            .collect();
        (0..n)
            .map(|_| {
                let weights: Vec<f64> = (0..rank)
                    .map(|r| rng.gen_range(-2.0..2.0) * (rank - r) as f64)
                    .collect();
                (0..dim)
                    .map(|i| {
                        2.0 + weights
                            .iter()
                            .zip(basis.iter())
                            .map(|(w, b)| w * b[i])
                            .sum::<f64>()
                    })
                    .collect()
            })
            .collect()
    }

    /// Maximum |difference| between two models' projections over the
    /// samples, allowing an independent sign flip per component.
    fn max_projection_gap(a: &Pca, b: &Pca, samples: &[Vec<f64>]) -> f64 {
        assert_eq!(a.num_components(), b.num_components());
        let k = a.num_components();
        // Determine per-component relative sign from the component dot.
        let signs: Vec<f64> = (0..k)
            .map(|c| {
                let d: f64 = a.components()[c]
                    .iter()
                    .zip(b.components()[c].iter())
                    .map(|(x, y)| x * y)
                    .sum();
                if d < 0.0 {
                    -1.0
                } else {
                    1.0
                }
            })
            .collect();
        let mut worst = 0.0f64;
        for s in samples {
            let pa = a.transform(s).unwrap();
            let pb = b.transform(s).unwrap();
            for c in 0..k {
                worst = worst.max((pa[c] - signs[c] * pb[c]).abs());
            }
        }
        worst
    }

    #[test]
    fn single_chunk_matches_exact_fit() {
        let samples = exact_rank_samples(48, 12, 3, 1);
        let exact = Pca::fit(&samples, 3).unwrap();
        let mut ipca = IncrementalPca::new(12, 3).unwrap();
        ipca.partial_fit(&samples).unwrap();
        let streamed = ipca.finalize().unwrap();
        assert!(max_projection_gap(&exact, &streamed, &samples) < 1e-8);
        for (a, b) in exact
            .explained_variance()
            .iter()
            .zip(streamed.explained_variance())
        {
            assert!((a - b).abs() < 1e-8 * a.max(1.0), "{a} vs {b}");
        }
        for (a, b) in exact.mean().iter().zip(streamed.mean()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn chunked_fit_matches_exact_fit_on_low_rank_data() {
        let samples = exact_rank_samples(90, 10, 3, 2);
        let exact = Pca::fit(&samples, 3).unwrap();
        for chunk in [7, 30, 45] {
            let mut ipca = IncrementalPca::new(10, 3).unwrap();
            for part in samples.chunks(chunk) {
                ipca.partial_fit(part).unwrap();
            }
            assert_eq!(ipca.samples_seen(), 90);
            let streamed = ipca.finalize().unwrap();
            assert!(
                max_projection_gap(&exact, &streamed, &samples) < 1e-8,
                "chunk size {chunk} diverged"
            );
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let samples = exact_rank_samples(64, 9, 4, 3);
        let fit = |threads: usize| {
            let mut ipca =
                IncrementalPca::with_threads(9, 3, NonZeroUsize::new(threads).unwrap()).unwrap();
            for part in samples.chunks(10) {
                ipca.partial_fit(part).unwrap();
            }
            ipca.finalize().unwrap()
        };
        let one = fit(1);
        for threads in [2, 5] {
            let other = fit(threads);
            assert_eq!(one, other, "incremental PCA drifted at {threads} threads");
        }
    }

    #[test]
    fn rank_deficiency_detected() {
        let samples = exact_rank_samples(40, 8, 2, 4);
        let mut ipca = IncrementalPca::new(8, 5).unwrap();
        ipca.partial_fit(&samples).unwrap();
        assert_eq!(ipca.effective_rank(), 2);
        assert!(matches!(
            ipca.finalize(),
            Err(DataError::RankDeficient {
                requested: 5,
                effective: 2
            })
        ));
        let truncated = ipca.finalize_truncated().unwrap();
        assert_eq!(truncated.num_components(), 2);
    }

    #[test]
    fn input_validation() {
        assert!(IncrementalPca::new(4, 0).is_err());
        assert!(IncrementalPca::new(4, 5).is_err());
        let mut ipca = IncrementalPca::new(4, 2).unwrap();
        assert!(ipca.partial_fit(&[vec![1.0, 2.0]]).is_err());
        assert!(matches!(ipca.finalize(), Err(DataError::EmptyDataset)));
        assert!(matches!(
            ipca.finalize_truncated(),
            Err(DataError::EmptyDataset)
        ));
        // Feeding an empty chunk is a no-op, not an error.
        ipca.partial_fit(&[]).unwrap();
        assert_eq!(ipca.samples_seen(), 0);
    }

    #[test]
    fn tail_mass_is_zero_and_sketch_fixed_on_in_sketch_rank_data() {
        let samples = exact_rank_samples(80, 10, 3, 21);
        let mut ipca = IncrementalPca::new(10, 3).unwrap();
        let initial_sketch = ipca.sketch_size();
        for part in samples.chunks(16) {
            ipca.partial_fit(part).unwrap();
        }
        // Rank-3 data in an 11-direction sketch: nothing real is truncated,
        // so the adaptive rule must not fire (floating-point dust stays
        // below the growth threshold).
        assert!(
            ipca.tail_mass_dropped()
                <= 1e-9 * ipca.finalize().unwrap().explained_variance()[0] * 80.0,
            "tail mass {} on exact-rank data",
            ipca.tail_mass_dropped()
        );
        assert_eq!(ipca.sketch_size(), initial_sketch);
        assert_eq!(ipca.sketch_growths(), 0);
    }

    #[test]
    fn sketch_grows_under_accumulating_truncation_and_stays_deterministic() {
        // Full-rank noise in 50 dims with a 2 + 8 = 10-direction sketch:
        // every merge truncates real variance, so the sketch must grow —
        // and stop at its 2 + 32 cap (below the 50-dim rank, so truncation
        // keeps happening at the cap).
        let mut rng = StdRng::seed_from_u64(77);
        let samples: Vec<Vec<f64>> = (0..400)
            .map(|_| (0..50).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let fit = |threads: usize| {
            let mut ipca =
                IncrementalPca::with_threads(50, 2, NonZeroUsize::new(threads).unwrap()).unwrap();
            for part in samples.chunks(40) {
                ipca.partial_fit(part).unwrap();
            }
            ipca
        };
        let ipca = fit(1);
        assert!(ipca.tail_mass_dropped() > 0.0);
        assert!(ipca.last_merge_tail_fraction() > 0.0);
        assert!(ipca.sketch_growths() > 0, "growth rule never fired");
        assert!(ipca.sketch_size() > 2 + 8);
        assert!(ipca.sketch_size() <= 2 + 32);
        // The growth rule depends only on the chunk sequence: identical
        // across thread counts, bit for bit.
        for threads in [2, 5] {
            let other = fit(threads);
            assert_eq!(other.sketch_size(), ipca.sketch_size());
            assert_eq!(
                other.tail_mass_dropped().to_bits(),
                ipca.tail_mass_dropped().to_bits()
            );
            assert_eq!(
                other.finalize_truncated().unwrap(),
                ipca.finalize_truncated().unwrap()
            );
        }
    }

    #[test]
    fn noisy_data_components_stay_orthonormal_across_merges() {
        let mut rng = StdRng::seed_from_u64(9);
        let samples: Vec<Vec<f64>> = (0..300)
            .map(|_| (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let mut ipca = IncrementalPca::new(6, 4).unwrap();
        for part in samples.chunks(24) {
            ipca.partial_fit(part).unwrap();
        }
        let pca = ipca.finalize().unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let dot: f64 = pca.components()[i]
                    .iter()
                    .zip(pca.components()[j].iter())
                    .map(|(a, b)| a * b)
                    .sum();
                let expected = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expected).abs() < 1e-8, "({i},{j}) = {dot}");
            }
        }
        // Variances descend.
        for w in pca.explained_variance().windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }
}

//! Dependency-free data parallelism for the EnQode offline phase.
//!
//! The container this workspace builds in has no network access, so rayon is
//! unavailable; this crate provides the slice of its API the pipeline needs —
//! an indexed parallel map over a slice — on top of [`std::thread::scope`].
//!
//! Two properties the training code relies on:
//!
//! * **Deterministic placement** — the result vector is ordered by input
//!   index, never by completion order, so parallel runs produce byte-identical
//!   outputs to sequential runs whenever the per-item work is itself
//!   deterministic (EnQode derives an independent RNG seed per work item for
//!   exactly this reason).
//! * **Dynamic scheduling** — workers claim items through an atomic counter,
//!   so unevenly sized items (clusters whose optimisation converges at
//!   different speeds) keep every core busy.

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::JoinHandle;

/// Returns the worker count used by [`par_map`]: the `ENQODE_THREADS`
/// environment variable when set, otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> NonZeroUsize {
    if let Ok(v) = std::env::var("ENQODE_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if let Some(n) = NonZeroUsize::new(n) {
                return n;
            }
        }
    }
    std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN)
}

/// Applies `f` to every element of `items` in parallel and returns the
/// results in input order.
///
/// `f` receives `(index, &item)`. Uses [`default_threads`] workers; falls back
/// to a plain sequential loop for empty or single-element inputs.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with_threads(default_threads(), items, f)
}

/// [`par_map`] with an explicit worker count. `threads = 1` runs fully
/// sequentially on the calling thread (useful for determinism baselines).
pub fn par_map_with_threads<T, R, F>(threads: NonZeroUsize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = threads.get().min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i, &items[i]);
                let _ = slots[i].set(value);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every slot is filled"))
        .collect()
}

/// Applies `f` to fixed-size contiguous shards of `items` in parallel and
/// returns the per-shard results **in shard order**.
///
/// The shard boundaries depend only on `items.len()` and `shard_size` — never
/// on the worker count — so a caller that reduces the returned vector
/// sequentially gets a bit-identical reduction for any thread count. This is
/// the primitive the streaming fits (mini-batch k-means assignment, streaming
/// Lloyd accumulation, incremental-PCA Gram products) build their
/// deterministic parallel reductions on.
///
/// # Panics
///
/// Panics if `shard_size` is zero.
pub fn par_chunk_map<T, R, F>(threads: NonZeroUsize, items: &[T], shard_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send + Sync,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(shard_size > 0, "shard_size must be positive");
    let shards: Vec<&[T]> = items.chunks(shard_size).collect();
    par_map_with_threads(threads, &shards, |i, shard| f(i, shard))
}

/// Applies a fallible `f` in parallel. On success returns all results in
/// input order; on failure returns the lowest-index error **among the items
/// that ran** — once any worker observes a failure, items not yet claimed
/// are cancelled, so which error surfaces can depend on scheduling (a
/// sequential run reports the overall lowest-index error).
///
/// # Errors
///
/// Returns the lowest-index error produced before cancellation kicked in.
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send + Sync,
    E: Send + Sync,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_par_map_with_threads(default_threads(), items, f)
}

/// [`try_par_map`] with an explicit worker count. With one worker the claim
/// order is the input order, so it short-circuits at the overall
/// lowest-index error exactly like a sequential loop.
///
/// # Errors
///
/// Same contract as [`try_par_map`].
pub fn try_par_map_with_threads<T, R, E, F>(
    threads: NonZeroUsize,
    items: &[T],
    f: F,
) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send + Sync,
    E: Send + Sync,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let failed = std::sync::atomic::AtomicBool::new(false);
    let results = par_map_with_threads(threads, items, |i, item| {
        if failed.load(Ordering::Relaxed) {
            return None;
        }
        let outcome = f(i, item);
        if outcome.is_err() {
            failed.store(true, Ordering::Relaxed);
        }
        Some(outcome)
    });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Some(Ok(value)) => out.push(value),
            Some(Err(e)) => return Err(e),
            // Skipped after a failure elsewhere; the error that caused the
            // cancellation follows at some index.
            None => {}
        }
    }
    Ok(out)
}

/// A shared cooperative-cancellation flag.
///
/// Long-running work (a streaming fit on a worker thread, a multi-pass
/// ingestion loop) polls the token at its natural yield points — typically
/// once per chunk or stage — and winds down cleanly when it observes a
/// cancellation. Cancellation is **sticky** (there is no un-cancel) and
/// cloning is cheap: every clone observes the same flag.
///
/// # Examples
///
/// ```
/// use enq_parallel::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; every clone of the token observes
    /// it on its next [`CancelToken::is_cancelled`] poll.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// A handle to a cancellable background worker thread (see [`spawn_worker`]).
///
/// The worker receives a [`CancelToken`] clone and is expected to poll it;
/// [`WorkerHandle::cancel`] only *requests* the wind-down — the thread keeps
/// running until it next observes the flag. Dropping the handle cancels the
/// worker but does **not** join it (the thread detaches and finishes its
/// wind-down on its own); call [`WorkerHandle::join`] to wait for the result.
#[derive(Debug)]
pub struct WorkerHandle<T> {
    token: CancelToken,
    handle: Option<JoinHandle<T>>,
}

impl<T> WorkerHandle<T> {
    /// The worker's cancellation token (clone it to cancel from elsewhere).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Requests cooperative cancellation of the worker.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Whether the worker thread has finished (normally or by winding down
    /// after a cancellation).
    pub fn is_finished(&self) -> bool {
        self.handle.as_ref().is_none_or(JoinHandle::is_finished)
    }

    /// Blocks until the worker finishes and returns its result (an `Err`
    /// carries the worker's panic payload, as with
    /// [`std::thread::JoinHandle::join`]).
    pub fn join(mut self) -> std::thread::Result<T> {
        self.handle
            .take()
            .expect("join consumes the only handle")
            .join()
    }
}

impl<T> Drop for WorkerHandle<T> {
    fn drop(&mut self) {
        // Dropping the handle abandons interest in the result: request the
        // wind-down and let the thread detach.
        self.token.cancel();
    }
}

/// Spawns `f` on a named background thread with a fresh [`CancelToken`].
///
/// The closure owns a clone of the token; the returned [`WorkerHandle`]
/// holds the other end. Use it when one owner holds the handle for the
/// worker's whole life (cancel-on-drop is the safety net). Consumers whose
/// cancellation outlives any single owner — e.g. the serve layer's rebuild
/// tickets, which are cloneable and detached — share a [`CancelToken`]
/// directly and manage their thread themselves.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a thread.
pub fn spawn_worker<T, F>(name: &str, f: F) -> WorkerHandle<T>
where
    T: Send + 'static,
    F: FnOnce(CancelToken) -> T + Send + 'static,
{
    let token = CancelToken::new();
    let worker_token = token.clone();
    let handle = std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || f(worker_token))
        .expect("spawning a worker thread");
    WorkerHandle {
        token,
        handle: Some(handle),
    }
}

/// Runs a producer and a consumer concurrently over a pool of recycled
/// buffers — the double-buffered executor behind `enq_data`'s
/// `ChunkPrefetcher`.
///
/// The producer runs on a dedicated scoped thread and fills buffers; the
/// consumer runs on the **calling** thread and observes every produced
/// buffer **in production order**, which is what lets chunked-ingestion
/// pipelines overlap I/O (or generation) with compute while staying
/// bit-identical to a synchronous loop. `depth` bounds the number of filled
/// buffers in flight (backpressure): the producer blocks once `depth`
/// buffers await consumption, so resident memory is `depth + 1` buffers
/// regardless of how fast the producer runs ahead.
///
/// Contract:
///
/// * `produce(&mut buffer)` fills a recycled buffer; `Ok(true)` hands it to
///   the consumer, `Ok(false)` ends the stream (the buffer's contents are
///   discarded), `Err` aborts the run.
/// * `consume(&buffer)` sees each produced buffer exactly once, in order.
/// * The first error from either side aborts the pipeline: the other side is
///   cancelled at its next buffer hand-off and that error is returned.
///   A producer panic propagates to the caller when the scope joins.
///
/// # Errors
///
/// Returns the first error produced by either closure.
pub fn double_buffered<B, E, P, C>(depth: NonZeroUsize, produce: P, mut consume: C) -> Result<(), E>
where
    B: Default + Send,
    E: Send,
    P: FnMut(&mut B) -> Result<bool, E> + Send,
    C: FnMut(&B) -> Result<(), E>,
{
    let (free_tx, free_rx) = mpsc::channel::<B>();
    let (filled_tx, filled_rx) = mpsc::sync_channel::<Result<B, E>>(depth.get());
    // depth in-flight buffers plus the one the consumer is reading.
    for _ in 0..depth.get() + 1 {
        free_tx.send(B::default()).expect("receiver is alive");
    }
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut produce = produce;
            // A closed free list means the consumer bailed out (its error is
            // already on the way back to the caller); a failed send means the
            // same. Both are cooperative cancellation, not errors here.
            while let Ok(mut buffer) = free_rx.recv() {
                match produce(&mut buffer) {
                    Ok(true) => {
                        if filled_tx.send(Ok(buffer)).is_err() {
                            break;
                        }
                    }
                    Ok(false) => break,
                    Err(e) => {
                        let _ = filled_tx.send(Err(e));
                        break;
                    }
                }
            }
            // Dropping `filled_tx` wakes a consumer blocked on `recv`.
        });
        let mut outcome = Ok(());
        while let Ok(item) = filled_rx.recv() {
            match item {
                Ok(buffer) => {
                    if let Err(e) = consume(&buffer) {
                        outcome = Err(e);
                        break;
                    }
                    // The producer may already have exited; recycling is
                    // best-effort.
                    let _ = free_tx.send(buffer);
                }
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            }
        }
        // Unblock a producer waiting on either channel so the scope can
        // join: close the free list and the filled queue.
        drop(free_tx);
        drop(filled_rx);
        outcome
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_for_uneven_work() {
        let items: Vec<u64> = (0..64).collect();
        let work = |_: usize, &x: &u64| -> u64 {
            // Uneven spin so completion order differs from input order.
            (0..(x % 7) * 1000).fold(x, |acc, v| acc.wrapping_add(v))
        };
        let par = par_map(&items, work);
        let seq = par_map_with_threads(NonZeroUsize::MIN, &items, work);
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn par_chunk_map_shards_are_thread_count_invariant() {
        let items: Vec<f64> = (0..1000).map(|i| (i as f64) * 0.25 - 100.0).collect();
        // A floating-point reduction whose result depends on summation
        // order: identical shard boundaries must give identical partials.
        let partial_sums = |threads: usize| -> Vec<f64> {
            par_chunk_map(
                NonZeroUsize::new(threads).unwrap(),
                &items,
                64,
                |_, shard| shard.iter().map(|v| v * 1.000_000_1).sum::<f64>(),
            )
        };
        let one = partial_sums(1);
        assert_eq!(one.len(), 1000usize.div_ceil(64));
        for threads in [2, 3, 8] {
            let many = partial_sums(threads);
            for (a, b) in one.iter().zip(many.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn par_chunk_map_covers_every_item_in_order() {
        let items: Vec<usize> = (0..103).collect();
        let shards = par_chunk_map(NonZeroUsize::new(4).unwrap(), &items, 10, |i, shard| {
            (i, shard.to_vec())
        });
        assert_eq!(shards.len(), 11);
        let mut flat = Vec::new();
        for (i, (idx, shard)) in shards.into_iter().enumerate() {
            assert_eq!(i, idx);
            flat.extend(shard);
        }
        assert_eq!(flat, items);
    }

    #[test]
    fn try_par_map_reports_an_error_from_a_failing_item() {
        let items: Vec<usize> = (0..100).collect();
        let err = try_par_map(&items, |_, &x| if x >= 10 { Err(x) } else { Ok(x) });
        // Cancellation may skip some failing items, but the reported error
        // always comes from one of them (never from the Ok range).
        let e = err.expect_err("items >= 10 fail");
        assert!(e >= 10, "error came from a passing item: {e}");
        let ok: Result<Vec<usize>, usize> = try_par_map(&items, |_, &x| Ok(x));
        assert_eq!(ok.unwrap().len(), 100);
    }

    #[test]
    fn try_par_map_sequential_short_circuits_at_first_error() {
        // With one worker the claim order is the input order: the overall
        // lowest-index error is reported and later items are cancelled.
        let items: Vec<usize> = (0..50).collect();
        let ran = AtomicUsize::new(0);
        let err = try_par_map_with_threads(NonZeroUsize::MIN, &items, |_, &x| {
            ran.fetch_add(1, Ordering::Relaxed);
            if x == 3 {
                Err(x)
            } else {
                Ok(x)
            }
        });
        assert_eq!(err, Err(3));
        assert_eq!(
            ran.load(Ordering::Relaxed),
            4,
            "items after the first error must not run"
        );
    }

    #[test]
    fn double_buffered_preserves_order_and_recycles_buffers() {
        let mut next = 0u32;
        let mut seen = Vec::new();
        double_buffered::<Vec<u32>, (), _, _>(
            NonZeroUsize::new(2).unwrap(),
            move |buf| {
                buf.clear();
                if next >= 100 {
                    return Ok(false);
                }
                for _ in 0..7 {
                    buf.push(next);
                    next += 1;
                }
                Ok(true)
            },
            |buf| {
                seen.extend_from_slice(buf);
                Ok(())
            },
        )
        .unwrap();
        // 15 batches of 7 = 105 values (the producer checks before filling).
        assert_eq!(seen, (0..105).collect::<Vec<u32>>());
    }

    #[test]
    fn double_buffered_propagates_producer_and_consumer_errors() {
        let mut n = 0;
        let produced = AtomicUsize::new(0);
        let err = double_buffered::<Vec<u8>, &'static str, _, _>(
            NonZeroUsize::new(2).unwrap(),
            |buf| {
                buf.clear();
                buf.push(0);
                n += 1;
                if n > 3 {
                    Err("producer failed")
                } else {
                    Ok(true)
                }
            },
            |_| {
                produced.fetch_add(1, Ordering::Relaxed);
                Ok(())
            },
        );
        assert_eq!(err, Err("producer failed"));
        assert_eq!(produced.load(Ordering::Relaxed), 3);

        // Consumer errors cancel the producer instead of deadlocking it.
        let err = double_buffered::<Vec<u8>, &'static str, _, _>(
            NonZeroUsize::new(1).unwrap(),
            |buf| {
                buf.clear();
                buf.push(1);
                Ok(true)
            },
            |_| Err("consumer failed"),
        );
        assert_eq!(err, Err("consumer failed"));
    }

    #[test]
    fn cancel_token_is_sticky_and_shared() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!token.is_cancelled());
        assert!(!clone.is_cancelled());
        clone.cancel();
        assert!(token.is_cancelled());
        clone.cancel(); // idempotent
        assert!(token.is_cancelled());
    }

    #[test]
    fn worker_runs_to_completion_without_cancellation() {
        let worker = spawn_worker("test-worker", |token| {
            assert!(!token.is_cancelled());
            21u32 * 2
        });
        assert_eq!(worker.join().unwrap(), 42);
    }

    #[test]
    fn worker_observes_cancellation_and_winds_down() {
        let worker = spawn_worker("test-cancel", |token| {
            let mut polls = 0u64;
            while !token.is_cancelled() {
                polls += 1;
                std::thread::yield_now();
            }
            polls
        });
        worker.cancel();
        let polls = worker.join().unwrap();
        // The worker exited through the cancellation path (any poll count).
        let _ = polls;
    }

    #[test]
    fn dropping_the_handle_cancels_but_detaches() {
        let (tx, rx) = mpsc::channel::<bool>();
        let worker = spawn_worker("test-drop", move |token| {
            while !token.is_cancelled() {
                std::thread::yield_now();
            }
            tx.send(true).expect("receiver outlives the worker");
        });
        let token = worker.token().clone();
        drop(worker);
        assert!(token.is_cancelled(), "drop requests cancellation");
        // The detached thread still winds down and reports.
        assert!(rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap());
    }

    #[test]
    fn worker_panics_surface_through_join() {
        let worker = spawn_worker("test-panic", |_| panic!("worker failed"));
        assert!(worker.join().is_err());
    }

    #[test]
    fn double_buffered_handles_empty_streams() {
        let mut consumed = 0usize;
        double_buffered::<Vec<u8>, (), _, _>(
            NonZeroUsize::new(2).unwrap(),
            |_| Ok(false),
            |_| {
                consumed += 1;
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(consumed, 0);
    }
}

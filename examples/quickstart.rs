//! Quickstart: train an EnQode model on a handful of feature vectors and
//! embed a new sample.
//!
//! ```text
//! cargo run --release -p enqode --example quickstart
//! ```

use enq_circuit::{Topology, Transpiler};
use enqode::{AnsatzConfig, BaselineEmbedder, EnqodeConfig, EnqodeError, EnqodeModel};

fn main() -> Result<(), EnqodeError> {
    // Sixteen-dimensional feature vectors (4 qubits), e.g. the output of a
    // PCA pipeline. Two loose groups of similar samples.
    let samples: Vec<Vec<f64>> = (0..10)
        .map(|s| {
            let group = if s % 2 == 0 { 0.0 } else { 1.0 };
            (0..16)
                .map(|i| {
                    let phase = i as f64 * (0.35 + 0.25 * group) + s as f64 * 0.02;
                    0.55 + 0.4 * phase.sin()
                })
                .collect()
        })
        .collect();

    // Train EnQode: cluster the samples and optimise the fixed-shape ansatz
    // for each cluster mean ("offline" phase).
    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 4,
            num_layers: 8,
            ..Default::default()
        },
        ..Default::default()
    };
    let model = EnqodeModel::fit(&samples, config)?;
    println!(
        "trained {} cluster(s) in {:.3} s",
        model.num_clusters(),
        model.offline_duration().as_secs_f64()
    );
    for (i, cluster) in model.clusters().iter().enumerate() {
        println!("  cluster {i}: ideal fidelity {:.4}", cluster.fidelity);
    }

    // Embed a new sample ("online" phase, transfer learning from the nearest
    // cluster).
    let new_sample: Vec<f64> = (0..16)
        .map(|i| 0.55 + 0.4 * ((i as f64) * 0.36 + 0.01).sin())
        .collect();
    let embedding = model.embed(&new_sample)?;
    println!(
        "embedded new sample: cluster {}, ideal fidelity {:.4}, {} optimiser iterations, {:.3} ms",
        embedding.cluster_index,
        embedding.ideal_fidelity,
        embedding.iterations,
        embedding.duration.as_secs_f64() * 1e3
    );

    // Compare the hardware cost against exact amplitude embedding.
    let transpiler = Transpiler::new(Topology::ibm_brisbane_like());
    let enqode_metrics = transpiler.transpile(&embedding.circuit)?.metrics;
    let baseline_circuit = BaselineEmbedder::new(4).embed(&new_sample)?.circuit;
    let baseline_metrics = transpiler.transpile(&baseline_circuit)?.metrics;
    println!("enqode circuit:   {enqode_metrics}");
    println!("baseline circuit: {baseline_metrics}");
    println!(
        "depth reduction: {:.1}x, two-qubit gate reduction: {:.1}x",
        baseline_metrics.depth as f64 / enqode_metrics.depth as f64,
        baseline_metrics.two_qubit_gates as f64 / enqode_metrics.two_qubit_gates as f64
    );
    Ok(())
}

//! Ablation over the ansatz depth: embedding fidelity and hardware cost as a
//! function of the number of `Rz`+`CY` layers, justifying the paper's choice
//! of 8 layers for 8 qubits.
//!
//! ```text
//! cargo run --release -p enqode --example ablation_layers
//! ```

use enq_circuit::{Topology, Transpiler};
use enq_optim::{Lbfgs, Objective, Optimizer};
use enqode::{AnsatzConfig, EnqodeError, EntanglerKind, FidelityObjective};

fn main() -> Result<(), EnqodeError> {
    const NUM_QUBITS: usize = 5;
    let dim = 1usize << NUM_QUBITS;
    // A dense PCA-like target vector.
    let target: Vec<f64> = (0..dim)
        .map(|i| 0.5 + 0.45 * ((i as f64) * 0.61).sin() + 0.1 * ((i as f64) * 0.17).cos())
        .collect();

    let transpiler = Transpiler::new(Topology::linear(NUM_QUBITS));
    println!("layers | parameters | ideal fidelity | physical depth | 2q gates | optimiser iters");
    for layers in [1usize, 2, 4, 6, 8, 12, 16] {
        let config = AnsatzConfig {
            num_qubits: NUM_QUBITS,
            num_layers: layers,
            entangler: EntanglerKind::Cy,
        };
        let objective = FidelityObjective::new(&config, &target)?;
        // Two restarts, keep the best.
        let optimizer = Lbfgs::with_max_iterations(300);
        let mut best_fidelity = 0.0;
        let mut best_theta = vec![0.0; objective.dimension()];
        let mut iterations = 0;
        for restart in 0..2 {
            let start: Vec<f64> = (0..objective.dimension())
                .map(|j| 0.1 + 0.37 * (j as f64 + restart as f64 * 7.3).sin())
                .collect();
            let result = optimizer.minimize(&objective, &start);
            let fidelity = objective.fidelity(&result.x);
            if fidelity > best_fidelity {
                best_fidelity = fidelity;
                best_theta = result.x;
                iterations = result.iterations;
            }
        }
        let circuit = config.build_bound(&best_theta)?;
        let metrics = transpiler.transpile(&circuit)?.metrics;
        println!(
            "{layers:>6} | {:>10} | {best_fidelity:>14.4} | {:>14} | {:>8} | {iterations:>15}",
            config.num_parameters(),
            metrics.depth,
            metrics.two_qubit_gates
        );
    }
    println!();
    println!(
        "The fidelity saturates once the parameter count approaches the number of\n\
         amplitudes it must steer, while depth and two-qubit cost keep growing —\n\
         the trade-off behind the paper's 8-layer choice."
    );
    Ok(())
}

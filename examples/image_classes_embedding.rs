//! Embedding an image-classification dataset: the scenario that motivates the
//! paper. Generates the MNIST surrogate, runs the PCA + normalisation
//! pipeline, trains one EnQode model per class, and reports per-class cluster
//! counts, embedding fidelity, and circuit cost against the Baseline.
//!
//! ```text
//! cargo run --release -p enqode --example image_classes_embedding
//! ```

use enq_circuit::{Topology, Transpiler};
use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enqode::{
    AnsatzConfig, BaselineEmbedder, EnqodeConfig, EnqodeError, EnqodePipeline, EntanglerKind,
};

fn main() -> Result<(), EnqodeError> {
    // A reduced-size MNIST surrogate: 3 classes × 40 images (the full-scale
    // figures use the `reproduce` binary in `enq-bench`).
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 3,
            samples_per_class: 40,
            seed: 17,
        },
    )?;
    println!(
        "dataset: {} samples of dimension {} in {} classes",
        dataset.len(),
        dataset.feature_dim(),
        dataset.classes().len()
    );

    // 6 qubits → 64 PCA features keeps the example fast; the paper uses 8.
    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 6,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.95,
        max_clusters: 16,
        ..Default::default()
    };
    let pipeline = EnqodePipeline::build(&dataset, config)?;
    println!(
        "offline training: {} clusters total in {:.2} s",
        pipeline.total_clusters(),
        pipeline.offline_duration().as_secs_f64()
    );

    let transpiler = Transpiler::new(Topology::ibm_brisbane_like());
    let baseline = BaselineEmbedder::new(6);

    for class_model in pipeline.class_models() {
        let label = class_model.label;
        let model = &class_model.model;
        println!(
            "class {label}: {} clusters, cluster fidelities {:?}",
            model.num_clusters(),
            model
                .clusters()
                .iter()
                .map(|c| (c.fidelity * 1000.0).round() / 1000.0)
                .collect::<Vec<_>>()
        );

        // Embed the first few samples of this class and report fidelity and
        // circuit cost.
        let indices = dataset.indices_of_class(label);
        let mut fidelity_sum = 0.0;
        let mut count = 0.0;
        for &i in indices.iter().take(5) {
            let embedding = pipeline.embed_with_class(dataset.sample(i), label)?;
            fidelity_sum += embedding.ideal_fidelity;
            count += 1.0;
        }
        let example_sample = pipeline.extract_features(dataset.sample(indices[0]))?;
        let enqode_metrics = transpiler
            .transpile(
                &pipeline
                    .embed_with_class(dataset.sample(indices[0]), label)?
                    .circuit,
            )?
            .metrics;
        let baseline_metrics = transpiler
            .transpile(&baseline.embed(&example_sample)?.circuit)?
            .metrics;
        println!(
            "  mean embedding fidelity {:.4} | enqode depth {} vs baseline depth {} | enqode 2q {} vs baseline 2q {}",
            fidelity_sum / count,
            enqode_metrics.depth,
            baseline_metrics.depth,
            enqode_metrics.two_qubit_gates,
            baseline_metrics.two_qubit_gates
        );
    }
    Ok(())
}

//! Noise-robustness sweep: how the Baseline and EnQode fidelities degrade as
//! the device noise is scaled from a quarter of the `ibm_brisbane`-like level
//! to four times that level (the regime where the paper's Fig. 8b advantage
//! comes from).
//!
//! ```text
//! cargo run --release -p enqode --example noise_robustness
//! ```

use enq_circuit::{Topology, Transpiler};
use enq_qsim::{DeviceNoiseModel, NoisySimulator};
use enqode::{
    evaluate_baseline_sample, evaluate_enqode_sample, AnsatzConfig, BaselineEmbedder, EnqodeConfig,
    EnqodeError, EnqodeModel, EntanglerKind,
};

fn main() -> Result<(), EnqodeError> {
    const NUM_QUBITS: usize = 5;
    let dim = 1usize << NUM_QUBITS;

    // A small set of dense feature vectors.
    let samples: Vec<Vec<f64>> = (0..6)
        .map(|s| {
            (0..dim)
                .map(|i| 0.6 + 0.35 * ((i as f64) * 0.47 + s as f64 * 0.2).sin())
                .collect()
        })
        .collect();

    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: NUM_QUBITS,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.9,
        max_clusters: 4,
        ..Default::default()
    };
    let model = EnqodeModel::fit(&samples, config)?;
    let baseline = BaselineEmbedder::new(NUM_QUBITS);
    let transpiler = Transpiler::new(Topology::linear(NUM_QUBITS));
    let sample = &samples[0];

    println!("noise scale | baseline fidelity | enqode fidelity | enqode advantage");
    for scale in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let noisy = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like().scaled(scale)?);
        let b = evaluate_baseline_sample(&baseline, sample, &transpiler, Some(&noisy))?;
        let e = evaluate_enqode_sample(&model, sample, &transpiler, Some(&noisy))?;
        let bf = b.noisy_fidelity.expect("noisy simulator was supplied");
        let ef = e.noisy_fidelity.expect("noisy simulator was supplied");
        println!(
            "{scale:>11.2} | {bf:>17.4} | {ef:>15.4} | {:>6.2}x",
            ef / bf.max(1e-12)
        );
    }
    println!();
    println!(
        "(ideal fidelities for reference: baseline 1.0000, enqode {:.4})",
        evaluate_enqode_sample(&model, sample, &transpiler, None)?.ideal_fidelity
    );
    Ok(())
}

//! `ENQM` artifact contract tests.
//!
//! Two properties anchor the durable model store:
//!
//! 1. **Bit-exact round trips** — encode → decode → re-encode reproduces
//!    the byte image exactly, and a decoded pipeline's `embed` output is
//!    bitwise identical to the original pipeline's (same parameters, same
//!    fidelity bits). This is what makes a warm boot indistinguishable from
//!    the process it replaced.
//! 2. **Fail-closed decoding** — every truncation and every single-bit
//!    corruption of a valid artifact yields a typed [`StoreError`], never a
//!    partially decoded model, mirroring the hostile-input corpus style of
//!    `tests/net_protocol.rs`.

use enq_data::{generate_synthetic, Dataset, DatasetKind, SyntheticConfig};
use enq_store::{
    decode_model, encode_model, read_model_file, write_model_file, StoreError, ENQM_HEADER_LEN,
};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind};
use proptest::prelude::*;

fn dataset(classes: usize, per_class: usize, seed: u64) -> Dataset {
    generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes,
            samples_per_class: per_class,
            seed,
        },
    )
    .unwrap()
}

fn config(num_qubits: usize, entangler: EntanglerKind, seed: u64) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits,
            num_layers: 2,
            entangler,
        },
        fidelity_threshold: 0.5,
        max_clusters: 2,
        offline_max_iterations: 20,
        offline_restarts: 1,
        online_max_iterations: 10,
        offline_rescue: false,
        seed,
    }
}

fn trained_pipeline(seed: u64) -> (Dataset, EnqodePipeline) {
    let data = dataset(2, 6, seed);
    let pipeline = EnqodePipeline::build(&data, config(2, EntanglerKind::Cy, seed)).unwrap();
    (data, pipeline)
}

/// Asserts that two pipelines embed every sample of `data` with bitwise
/// identical results — parameter bits, fidelity bits, label, and cluster.
fn assert_embeds_bitwise_equal(a: &EnqodePipeline, b: &EnqodePipeline, data: &Dataset) {
    for index in 0..data.len() {
        let sample = data.sample(index);
        let (label_a, emb_a) = a.embed(sample).unwrap();
        let (label_b, emb_b) = b.embed(sample).unwrap();
        assert_eq!(label_a, label_b, "sample {index}: label");
        assert_eq!(
            emb_a.cluster_index, emb_b.cluster_index,
            "sample {index}: cluster"
        );
        assert_eq!(
            emb_a.ideal_fidelity.to_bits(),
            emb_b.ideal_fidelity.to_bits(),
            "sample {index}: fidelity bits"
        );
        let bits_a: Vec<u64> = emb_a.parameters.iter().map(|p| p.to_bits()).collect();
        let bits_b: Vec<u64> = emb_b.parameters.iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits_a, bits_b, "sample {index}: parameter bits");
    }
}

#[test]
fn round_trip_preserves_identity_and_embeds_bitwise_identically() {
    let (data, pipeline) = trained_pipeline(11);
    let image = encode_model("mnist-like", 42, &pipeline);
    let artifact = decode_model(&image).unwrap();
    assert_eq!(artifact.model_id, "mnist-like");
    assert_eq!(artifact.generation, 42);
    assert_eq!(
        artifact.pipeline.class_models().len(),
        pipeline.class_models().len()
    );
    assert_embeds_bitwise_equal(&pipeline, &artifact.pipeline, &data);

    // The strongest round-trip statement: re-encoding the decoded pipeline
    // reproduces the byte image exactly — every field survived bit-for-bit.
    let image2 = encode_model(&artifact.model_id, artifact.generation, &artifact.pipeline);
    assert_eq!(image, image2, "encode(decode(x)) != x");
}

#[test]
fn decoded_class_models_share_one_symbolic_table_per_shape() {
    let (_, pipeline) = trained_pipeline(13);
    let artifact = decode_model(&encode_model("m", 1, &pipeline)).unwrap();
    let models = artifact.pipeline.class_models();
    assert!(models.len() >= 2);
    let first = models[0].model.symbolic_arc();
    for cm in &models[1..] {
        assert!(
            std::sync::Arc::ptr_eq(&first, &cm.model.symbolic_arc()),
            "same-shape class models must share one symbolic table"
        );
    }
}

#[test]
fn every_truncation_fails_closed() {
    let (_, pipeline) = trained_pipeline(17);
    let image = encode_model("t", 7, &pipeline);
    for len in 0..image.len() {
        assert!(
            decode_model(&image[..len]).is_err(),
            "prefix of {len}/{} bytes decoded successfully",
            image.len()
        );
    }
    // And one byte extra is trailing garbage, not a longer payload.
    let mut longer = image.clone();
    longer.push(0);
    assert!(matches!(
        decode_model(&longer),
        Err(StoreError::LengthMismatch { .. })
    ));
}

#[test]
fn every_single_bit_flip_fails_closed() {
    let (_, pipeline) = trained_pipeline(19);
    let image = encode_model("flip", 3, &pipeline);
    let mut corrupt = image.clone();
    for byte in 0..image.len() {
        for bit in 0..8 {
            corrupt[byte] ^= 1 << bit;
            assert!(
                decode_model(&corrupt).is_err(),
                "bit {bit} of byte {byte} flipped and the artifact still decoded"
            );
            corrupt[byte] ^= 1 << bit; // restore
        }
    }
    assert_eq!(corrupt, image);
}

#[test]
fn header_level_rejections_are_typed() {
    let (_, pipeline) = trained_pipeline(23);
    let image = encode_model("h", 1, &pipeline);

    let mut wrong_magic = image.clone();
    wrong_magic[..4].copy_from_slice(b"ENQB");
    assert!(matches!(
        decode_model(&wrong_magic),
        Err(StoreError::BadMagic { .. })
    ));

    let mut future_version = image.clone();
    future_version[4..6].copy_from_slice(&99u16.to_le_bytes());
    assert!(matches!(
        decode_model(&future_version),
        Err(StoreError::UnsupportedVersion { found: 99, .. })
    ));

    let mut flags = image.clone();
    flags[6] = 1;
    assert!(matches!(
        decode_model(&flags),
        Err(StoreError::ReservedFlags { .. })
    ));

    assert!(matches!(
        decode_model(&image[..ENQM_HEADER_LEN - 1]),
        Err(StoreError::Truncated(_))
    ));
}

#[test]
fn file_round_trip_is_atomic_and_leaves_no_temp_files() {
    let dir = std::env::temp_dir().join(format!("enqm_file_rt_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (data, pipeline) = trained_pipeline(29);
    let path = dir.join("demo.enqm");
    write_model_file(&path, "demo", 5, &pipeline).unwrap();
    // Overwrite in place — the rename path, as a rebuild would exercise it.
    write_model_file(&path, "demo", 6, &pipeline).unwrap();
    let artifact = read_model_file(&path).unwrap();
    assert_eq!(artifact.generation, 6);
    assert_embeds_bitwise_equal(&pipeline, &artifact.pipeline, &data);
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
        .collect();
    assert!(
        leftovers.is_empty(),
        "temp files left behind: {leftovers:?}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // Round trips hold across qubit counts, entanglers, class counts, and
    // generations — not just the one demo shape.
    #[test]
    fn round_trips_hold_across_model_shapes(
        num_qubits in 2usize..4,
        entangler_choice in 0u8..3,
        classes in 1usize..3,
        generation in 0u64..u64::MAX,
        seed in 1u64..1000,
    ) {
        let entangler = match entangler_choice {
            0 => EntanglerKind::Cy,
            1 => EntanglerKind::Cx,
            _ => EntanglerKind::Cz,
        };
        let data = dataset(classes, 5, seed);
        let pipeline = EnqodePipeline::build(&data, config(num_qubits, entangler, seed)).unwrap();
        let image = encode_model("prop", generation, &pipeline);
        let artifact = decode_model(&image).unwrap();
        prop_assert_eq!(artifact.generation, generation);
        let image2 = encode_model("prop", generation, &artifact.pipeline);
        prop_assert_eq!(image, image2);
    }
}

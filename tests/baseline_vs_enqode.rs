//! Integration test for the paper's circuit-cost claims (Figures 6 and 7):
//! EnQode's transpiled circuits are much shallower than the Baseline's, use
//! fewer one- and two-qubit physical gates, and have zero variability across
//! samples, while the Baseline varies with the data.

use enq_circuit::{CircuitMetrics, Topology, Transpiler};
use enqode::{AnsatzConfig, BaselineEmbedder, EnqodeConfig, EnqodeModel, EntanglerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NUM_QUBITS: usize = 5;

fn feature_samples(count: usize, seed: u64) -> Vec<Vec<f64>> {
    // Dense, smoothly varying vectors reminiscent of PCA features.
    let dim = 1usize << NUM_QUBITS;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|s| {
            (0..dim)
                .map(|i| {
                    let base = ((i as f64) * 0.41 + s as f64 * 0.7).sin() * 0.5 + 0.6;
                    base + rng.gen_range(-0.08..0.08)
                })
                .collect()
        })
        .collect()
}

fn transpiled_metrics(
    transpiler: &Transpiler,
    circuit: &enq_circuit::QuantumCircuit,
) -> CircuitMetrics {
    transpiler
        .transpile(circuit)
        .expect("transpilation succeeds")
        .metrics
}

#[test]
fn enqode_circuits_are_shallower_and_fixed_shape() {
    let samples = feature_samples(6, 11);
    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: NUM_QUBITS,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.85,
        max_clusters: 4,
        offline_max_iterations: 100,
        offline_restarts: 2,
        online_max_iterations: 25,
        offline_rescue: false,
        seed: 2,
    };
    let model = EnqodeModel::fit(&samples, config).expect("training succeeds");
    let baseline = BaselineEmbedder::new(NUM_QUBITS);
    let transpiler = Transpiler::new(Topology::linear(NUM_QUBITS));

    let mut baseline_depths = Vec::new();
    let mut baseline_two_qubit = Vec::new();
    let mut enqode_depths = Vec::new();
    let mut enqode_two_qubit = Vec::new();
    let mut enqode_one_qubit = Vec::new();
    let mut baseline_one_qubit = Vec::new();

    for sample in &samples {
        let b = transpiled_metrics(&transpiler, &baseline.embed(sample).unwrap().circuit);
        baseline_depths.push(b.depth);
        baseline_two_qubit.push(b.two_qubit_gates);
        baseline_one_qubit.push(b.one_qubit_gates);

        let e = transpiled_metrics(&transpiler, &model.embed(sample).unwrap().circuit);
        enqode_depths.push(e.depth);
        enqode_two_qubit.push(e.two_qubit_gates);
        enqode_one_qubit.push(e.one_qubit_gates);
    }

    // EnQode: identical metrics for every sample (fixed ansatz).
    assert!(enqode_depths.windows(2).all(|w| w[0] == w[1]));
    assert!(enqode_two_qubit.windows(2).all(|w| w[0] == w[1]));
    assert!(enqode_one_qubit.windows(2).all(|w| w[0] == w[1]));

    // Baseline is much deeper and heavier on average.
    let mean = |v: &[usize]| v.iter().sum::<usize>() as f64 / v.len() as f64;
    let depth_ratio = mean(&baseline_depths) / mean(&enqode_depths);
    let two_qubit_ratio = mean(&baseline_two_qubit) / mean(&enqode_two_qubit);
    let one_qubit_ratio = mean(&baseline_one_qubit) / mean(&enqode_one_qubit).max(1.0);
    assert!(
        depth_ratio > 2.0,
        "expected a clear depth reduction, got {depth_ratio:.2}x"
    );
    assert!(
        two_qubit_ratio > 1.5,
        "expected a clear 2q-gate reduction, got {two_qubit_ratio:.2}x"
    );
    assert!(
        one_qubit_ratio > 1.0,
        "expected a 1q-gate reduction, got {one_qubit_ratio:.2}x"
    );
}

#[test]
fn baseline_metrics_vary_with_the_data() {
    let transpiler = Transpiler::new(Topology::linear(NUM_QUBITS));
    let baseline = BaselineEmbedder::new(NUM_QUBITS);

    // A dense sample and a very sparse sample produce different circuit sizes.
    let dense = feature_samples(1, 3).remove(0);
    let mut sparse = vec![0.0; 1 << NUM_QUBITS];
    sparse[1] = 1.0;
    sparse[2] = 0.2;

    let dense_metrics = transpiled_metrics(&transpiler, &baseline.embed(&dense).unwrap().circuit);
    let sparse_metrics = transpiled_metrics(&transpiler, &baseline.embed(&sparse).unwrap().circuit);
    assert!(
        dense_metrics.total_gates > sparse_metrics.total_gates,
        "dense {} vs sparse {}",
        dense_metrics.total_gates,
        sparse_metrics.total_gates
    );
    assert!(dense_metrics.depth > sparse_metrics.depth);
}

#[test]
fn baseline_remains_exact_while_enqode_approximates() {
    let samples = feature_samples(3, 17);
    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: NUM_QUBITS,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.85,
        max_clusters: 3,
        offline_max_iterations: 100,
        offline_restarts: 2,
        online_max_iterations: 25,
        offline_rescue: false,
        seed: 5,
    };
    let model = EnqodeModel::fit(&samples, config).expect("training succeeds");
    let baseline = BaselineEmbedder::new(NUM_QUBITS);

    for sample in &samples {
        let target = enqode::target_state(sample).unwrap();
        let b_state = enq_qsim::Statevector::from_circuit(&baseline.embed(sample).unwrap().circuit)
            .unwrap()
            .to_cvector();
        assert!((b_state.overlap_fidelity(&target).unwrap() - 1.0).abs() < 1e-4);

        let embedding = model.embed(sample).unwrap();
        let e_state = enq_qsim::Statevector::from_circuit(&embedding.circuit)
            .unwrap()
            .to_cvector();
        let fidelity = e_state.overlap_fidelity(&target).unwrap();
        assert!(fidelity > 0.7, "enqode fidelity {fidelity}");
        assert!(fidelity < 1.0 - 1e-6, "enqode should be approximate");
        assert!((fidelity - embedding.ideal_fidelity).abs() < 1e-7);
    }
}

//! Determinism of the parallel offline phase: training with the thread pool
//! must produce bit-identical clusters and fidelities to a fully sequential
//! run for the same seed (RNG streams are derived per (cluster, restart) job,
//! never from scheduling order), and the batch embedding APIs must match
//! their per-sample counterparts exactly.

use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodeModel, EnqodePipeline, EntanglerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;

fn config(seed: u64) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.9,
        max_clusters: 6,
        offline_max_iterations: 120,
        offline_restarts: 3,
        online_max_iterations: 30,
        offline_rescue: false,
        seed,
    }
}

fn clustered_samples(seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bases = [
        [0.9, 0.2, 0.1, 0.05, 0.02, 0.1, 0.05, 0.01],
        [0.05, 0.1, 0.02, 0.2, 0.9, 0.05, 0.1, 0.02],
        [0.3, 0.8, 0.1, 0.4, 0.05, 0.3, 0.02, 0.2],
    ];
    let mut out = Vec::new();
    for _ in 0..5 {
        for base in &bases {
            out.push(
                base.iter()
                    .map(|v| v + rng.gen_range(-0.04..0.04))
                    .collect(),
            );
        }
    }
    out
}

#[test]
fn parallel_fit_is_bit_identical_to_sequential_fit() {
    for seed in [3u64, 17, 99] {
        let samples = clustered_samples(seed);
        let parallel = EnqodeModel::fit(&samples, config(seed)).unwrap();
        let sequential = EnqodeModel::fit_sequential(&samples, config(seed)).unwrap();
        assert_eq!(parallel.num_clusters(), sequential.num_clusters());
        for (p, s) in parallel.clusters().iter().zip(sequential.clusters()) {
            assert_eq!(p.centroid, s.centroid, "seed {seed}: centroids differ");
            assert_eq!(p.parameters, s.parameters, "seed {seed}: parameters differ");
            assert_eq!(p.fidelity, s.fidelity, "seed {seed}: fidelities differ");
            assert_eq!(p.iterations, s.iterations, "seed {seed}: iterations differ");
        }
    }
}

#[test]
fn explicit_thread_counts_agree() {
    let samples = clustered_samples(7);
    let one = EnqodeModel::fit_with_threads(&samples, config(7), NonZeroUsize::MIN).unwrap();
    let four =
        EnqodeModel::fit_with_threads(&samples, config(7), NonZeroUsize::new(4).unwrap()).unwrap();
    for (a, b) in one.clusters().iter().zip(four.clusters()) {
        assert_eq!(a.parameters, b.parameters);
        assert_eq!(a.fidelity, b.fidelity);
    }
}

#[test]
fn parallel_pipeline_build_is_deterministic() {
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 3,
            samples_per_class: 8,
            seed: 11,
        },
    )
    .unwrap();
    let cfg = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 4,
            num_layers: 6,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.85,
        max_clusters: 4,
        offline_max_iterations: 80,
        offline_restarts: 2,
        online_max_iterations: 20,
        offline_rescue: false,
        seed: 11,
    };
    let a = EnqodePipeline::build(&dataset, cfg.clone()).unwrap();
    let b = EnqodePipeline::build(&dataset, cfg).unwrap();
    assert_eq!(a.class_models().len(), b.class_models().len());
    for (ca, cb) in a.class_models().iter().zip(b.class_models()) {
        assert_eq!(ca.label, cb.label);
        assert_eq!(ca.model.num_clusters(), cb.model.num_clusters());
        for (x, y) in ca.model.clusters().iter().zip(cb.model.clusters()) {
            assert_eq!(x.parameters, y.parameters);
            assert_eq!(x.fidelity, y.fidelity);
        }
    }
}

#[test]
fn batch_embedding_matches_per_sample_results_exactly() {
    let samples = clustered_samples(23);
    let model = EnqodeModel::fit(&samples, config(23)).unwrap();
    let batch = model.embed_batch(&samples).unwrap();
    for (sample, embedding) in samples.iter().zip(batch.iter()) {
        let single = model.embed(sample).unwrap();
        assert_eq!(single.parameters, embedding.parameters);
        assert_eq!(single.cluster_index, embedding.cluster_index);
        assert_eq!(single.ideal_fidelity, embedding.ideal_fidelity);
        assert_eq!(single.iterations, embedding.iterations);
    }
}

//! Property tests over every embed path: regardless of qubit count, layer
//! count, entangler choice, and input data, an embedding must be a valid
//! quantum state preparation — the bound circuit sends `|0…0⟩` to a
//! **unit-norm** statevector, and the reported ideal fidelity lies in
//! `[0, 1]`.
//!
//! Paths covered: `EnqodeModel::{embed, embed_batch,
//! embed_without_finetuning}`, `EnqodePipeline::embed`, and the `enq_serve`
//! micro-batched service path (cold, cache hit, and direct).

use enq_serve::{EmbedService, ServeConfig, SolutionSource};
use enqode::{AnsatzConfig, Embedding, EnqodeConfig, EnqodeModel, EntanglerKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Checks the two invariants on one embedding.
fn assert_valid_embedding(embedding: &Embedding, context: &str) {
    assert!(
        (-1e-9..=1.0 + 1e-9).contains(&embedding.ideal_fidelity),
        "{context}: fidelity {} outside [0, 1]",
        embedding.ideal_fidelity
    );
    let state = embedding
        .circuit
        .statevector_from_zero()
        .expect("bound circuit simulates");
    assert!(
        (state.norm() - 1.0).abs() < 1e-9,
        "{context}: statevector norm {} is not 1",
        state.norm()
    );
}

/// Random positive-ish feature vectors with loose cluster structure.
fn random_samples(rng: &mut StdRng, count: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..count)
        .map(|_| {
            (0..dim)
                .map(|_| rng.gen_range(-1.0..1.0f64))
                .map(|v| if v.abs() < 1e-3 { 0.05 } else { v })
                .collect()
        })
        .collect()
}

fn entangler_from(choice: u8) -> EntanglerKind {
    match choice % 3 {
        0 => EntanglerKind::Cy,
        1 => EntanglerKind::Cx,
        _ => EntanglerKind::Cz,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // `EnqodeModel` paths: embed, embed_batch, embed_without_finetuning.
    #[test]
    fn model_embed_paths_produce_unit_norm_states_and_bounded_fidelity(
        shape in (1..4usize, 1..4usize, 0..3u8, 0..1_000u64),
    ) {
        let (num_qubits, num_layers, entangler_choice, seed) = shape;
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits,
                num_layers,
                entangler: entangler_from(entangler_choice),
            },
            fidelity_threshold: 0.5,
            max_clusters: 2,
            offline_max_iterations: 30,
            offline_restarts: 1,
            online_max_iterations: 15,
            offline_rescue: false,
            seed,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xEBBE);
        let samples = random_samples(&mut rng, 5, config.ansatz.dimension());
        let model = EnqodeModel::fit(&samples, config).unwrap();

        for cluster in model.clusters() {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&cluster.fidelity));
        }
        let context = format!(
            "{num_qubits}q/{num_layers}l entangler {entangler_choice} seed {seed}"
        );
        for (i, sample) in samples.iter().enumerate() {
            assert_valid_embedding(&model.embed(sample).unwrap(), &format!("embed[{i}] {context}"));
            assert_valid_embedding(
                &model.embed_without_finetuning(sample).unwrap(),
                &format!("embed_without_finetuning[{i}] {context}"),
            );
        }
        for (i, embedding) in model.embed_batch(&samples).unwrap().iter().enumerate() {
            assert_valid_embedding(embedding, &format!("embed_batch[{i}] {context}"));
        }
    }

    // The serve path (micro-batched, cache cold + hit, and direct) returns
    // valid embeddings too.
    #[test]
    fn serve_paths_produce_unit_norm_states_and_bounded_fidelity(
        shape in (1..4usize, 1..4usize, 0..3u8, 0..1_000u64),
    ) {
        let (num_qubits, num_layers, entangler_choice, seed) = shape;
        let config = EnqodeConfig {
            ansatz: AnsatzConfig {
                num_qubits,
                num_layers,
                entangler: entangler_from(entangler_choice),
            },
            fidelity_threshold: 0.5,
            max_clusters: 2,
            offline_max_iterations: 30,
            offline_restarts: 1,
            online_max_iterations: 15,
            offline_rescue: false,
            seed,
        };
        let dim = config.ansatz.dimension();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E27E);
        let samples = random_samples(&mut rng, 4, dim);
        // Serve a bare model as a single-class pipeline-free registry entry:
        // build a pipeline over a dataset whose features are the samples
        // themselves is heavier than needed — the service requires a
        // pipeline, so construct one from a tiny labelled dataset instead.
        let dataset =
            enq_data::Dataset::new("proptest", samples.clone(), vec![0; samples.len()]).unwrap();
        let pipeline = enqode::EnqodePipeline::build(&dataset, config).unwrap();
        let service = EmbedService::new(ServeConfig {
            max_batch_size: 4,
            flush_deadline: Duration::ZERO,
            ..Default::default()
        });
        service.register_model("p", pipeline);

        let context = format!(
            "serve {num_qubits}q/{num_layers}l entangler {entangler_choice} seed {seed}"
        );
        for (i, sample) in samples.iter().enumerate() {
            let cold = service.embed("p", sample).unwrap();
            assert_valid_embedding(cold.embedding(), &format!("cold[{i}] {context}"));
            let hit = service.embed("p", sample).unwrap();
            prop_assert!(hit.source == SolutionSource::CacheHit);
            assert_valid_embedding(hit.embedding(), &format!("hit[{i}] {context}"));
            let direct = service.embed_direct("p", sample).unwrap();
            assert_valid_embedding(direct.embedding(), &format!("direct[{i}] {context}"));
        }
    }
}

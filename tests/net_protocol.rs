//! Wire-codec battery for the `enqd` protocol.
//!
//! * property tests: every frame type round-trips through
//!   encode→decode bit-exactly, for arbitrary field values; concatenated
//!   frame streams decode in order; arbitrary prefixes never decode
//!   spuriously;
//! * a malformed-input corpus (truncated frames, huge length prefixes,
//!   garbage bytes, trailing bytes, unknown types) against both the pure
//!   decoder and a **live server**, asserting the server fails closed with
//!   a typed error or a clean close — no panic, no stuck connection, no
//!   batcher stall — and keeps serving bit-identical answers afterwards.

use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enq_net::{
    decode_frame, EnqClient, EnqdServer, ErrorCode, FaultPlan, Frame, NetConfig, RetryPolicy,
    MAX_FRAME_LEN,
};
use enq_serve::{EmbedService, ServeConfig};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn tiny_config(seed: u64) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 2,
        offline_max_iterations: 40,
        offline_restarts: 1,
        online_max_iterations: 15,
        offline_rescue: false,
        seed,
    }
}

/// A served model plus one of its training samples (a valid request body).
fn spawn_test_server() -> (enq_net::ServerHandle, Arc<EmbedService>, Vec<f64>) {
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 6,
            seed: 11,
        },
    )
    .unwrap();
    let sample = dataset.samples()[0].clone();
    let pipeline = EnqodePipeline::build(&dataset, tiny_config(11)).unwrap();
    let service = Arc::new(EmbedService::new(ServeConfig::default()));
    service.register_model("m", pipeline);
    let handle = EnqdServer::spawn(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig {
            read_timeout: Duration::from_millis(400),
            ..NetConfig::default()
        },
        FaultPlan::none(),
    )
    .unwrap();
    (handle, service, sample)
}

fn ascii_string(bytes: &[u8]) -> String {
    String::from_utf8(bytes.to_vec()).expect("lowercase ascii")
}

// ---------------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn embed_request_round_trips(
        fields in (
            0..u64::MAX,
            0..86_400_000u32,
            collection::vec(97..123u8, 0..8),
            collection::vec(97..123u8, 1..12),
            collection::vec(-1e9..1e9f64, 0..64),
        ),
    ) {
        let (id, deadline_ms, tenant, model_id, sample) = fields;
        let frame = Frame::EmbedRequest {
            id,
            deadline_ms,
            tenant: ascii_string(&tenant),
            model_id: ascii_string(&model_id),
            sample,
        };
        let bytes = frame.encode();
        let (decoded, consumed) = decode_frame(&bytes).unwrap().expect("complete");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn embed_reply_and_error_reply_round_trip(
        reply_fields in (
            0..u64::MAX,
            0..u64::MAX,
            -1.0..2.0f64,
            collection::vec(-10.0..10.0f64, 0..48),
            0..3u8,
        ),
        error_fields in (
            1..11u16,
            0..1_000_000u64,
            collection::vec(32..127u8, 0..64),
        ),
    ) {
        let (id, label, fidelity, parameters, source) = reply_fields;
        let (raw_code, retry_ms, msg) = error_fields;
        let reply = Frame::EmbedReply {
            id,
            label,
            ideal_fidelity: fidelity,
            parameters,
            source,
        };
        let bytes = reply.encode();
        prop_assert_eq!(decode_frame(&bytes).unwrap().expect("complete").0, reply);

        let error = Frame::ErrorReply {
            id,
            code: ErrorCode::from_u16(raw_code).expect("1..=10 are all valid"),
            retry_after_ms: retry_ms,
            message: ascii_string(&msg),
        };
        let bytes = error.encode();
        prop_assert_eq!(decode_frame(&bytes).unwrap().expect("complete").0, error);
    }

    #[test]
    fn concatenated_streams_decode_in_order(
        picks in collection::vec(0..4u8, 1..6),
        id in 0..u64::MAX,
    ) {
        // A stream of control/reply frames decodes to the same sequence.
        let frames: Vec<Frame> = picks
            .iter()
            .map(|p| match p {
                0 => Frame::Ping,
                1 => Frame::Pong,
                2 => Frame::Drain,
                3 => Frame::DrainAck,
                _ => unreachable!(),
            })
            .chain(std::iter::once(Frame::EmbedReply {
                id,
                label: 1,
                ideal_fidelity: 0.5,
                parameters: vec![1.0, 2.0],
                source: 0,
            }))
            .collect();
        let mut stream: Vec<u8> = Vec::new();
        for f in &frames {
            stream.extend_from_slice(&f.encode());
        }
        let mut decoded = Vec::new();
        let mut at = 0usize;
        while at < stream.len() {
            let (frame, consumed) = decode_frame(&stream[at..]).unwrap().expect("complete");
            decoded.push(frame);
            at += consumed;
        }
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn prefixes_never_decode_and_mutations_never_panic(
        sample in collection::vec(-100.0..100.0f64, 1..16),
        cut_seed in 0..u64::MAX,
    ) {
        let frame = Frame::EmbedRequest {
            id: 5,
            deadline_ms: 100,
            tenant: "t".into(),
            model_id: "m".into(),
            sample,
        };
        let bytes = frame.encode();
        // Every strict prefix asks for more bytes or fails typed — it
        // never yields a frame, and it never panics.
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Ok(None) | Err(_) => {}
                Ok(Some(_)) => prop_assert!(false, "strict prefix decoded at {}", cut),
            }
        }
        // Arbitrary single-byte corruptions decode or fail typed; the
        // decoder must not panic on any of them.
        let mut rng = StdRng::seed_from_u64(cut_seed);
        for _ in 0..16 {
            let mut corrupt = bytes.clone();
            let at = rng.gen_range(0..corrupt.len());
            corrupt[at] ^= 1 << rng.gen_range(0..8u32);
            let _ = decode_frame(&corrupt);
        }
    }
}

// ---------------------------------------------------------------------------
// Malformed corpus against the pure decoder
// ---------------------------------------------------------------------------

#[test]
fn malformed_corpus_fails_typed_never_panics() {
    let mut corpus: Vec<(Vec<u8>, &str)> = vec![
        // Huge length prefixes (the classic allocation bomb).
        (u32::MAX.to_le_bytes().to_vec(), "u32::MAX len"),
        (
            ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec(),
            "cap+1 len",
        ),
        // Zero-length frame.
        (0u32.to_le_bytes().to_vec(), "zero len"),
    ];
    // Unknown frame types.
    for t in [0x00u8, 0x08, 0x7f, 0xff] {
        let mut b = 1u32.to_le_bytes().to_vec();
        b.push(t);
        corpus.push((b, "unknown type"));
    }
    // Trailing bytes after a valid Ping.
    let mut b = 2u32.to_le_bytes().to_vec();
    b.extend_from_slice(&[0x04, 0xaa]);
    corpus.push((b, "trailing byte"));
    // Random garbage, deterministic.
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for len in [1usize, 4, 5, 17, 64, 512] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.gen_range(0..256u16) as u8).collect();
        corpus.push((garbage, "random garbage"));
    }
    for (bytes, what) in &corpus {
        match decode_frame(bytes) {
            Ok(None) | Err(_) => {} // incomplete or typed failure: both fine
            Ok(Some((frame, _))) => {
                // Random garbage can in principle spell a valid frame; the
                // handcrafted corpus entries cannot.
                assert_eq!(*what, "random garbage", "{what} decoded to {frame:?}");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Malformed corpus against a live server
// ---------------------------------------------------------------------------

/// Sends raw bytes, then reads whatever the server answers until it closes
/// the connection (or a short timeout). Returns the decoded reply frames.
fn hostile_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<Frame> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_millis(1500)))
        .unwrap();
    stream.write_all(bytes).unwrap();
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut buf = Vec::new();
    let mut scratch = [0u8; 4096];
    loop {
        match stream.read(&mut scratch) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&scratch[..n]),
            Err(_) => break, // timeout: server kept the conn open silently
        }
    }
    let mut frames = Vec::new();
    let mut at = 0usize;
    while at < buf.len() {
        match decode_frame(&buf[at..]) {
            Ok(Some((frame, consumed))) => {
                frames.push(frame);
                at += consumed;
            }
            _ => break,
        }
    }
    frames
}

#[test]
fn live_server_survives_the_malformed_corpus() {
    let (handle, service, sample) = spawn_test_server();
    let addr = handle.addr();
    // Baseline answer before any hostility.
    let mut client = EnqClient::new(addr.to_string(), RetryPolicy::default());
    let baseline = client.embed("t", "m", &sample, 0).unwrap();

    // Hostile scripts: every one must produce either a typed BadRequest or
    // a clean close — and must leave the server serving.
    let mut hostile: Vec<Vec<u8>> = vec![
        u32::MAX.to_le_bytes().to_vec(),
        ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec(),
        0u32.to_le_bytes().to_vec(),
    ];
    let mut unknown = 1u32.to_le_bytes().to_vec();
    unknown.push(0x7f);
    hostile.push(unknown);
    let mut trailing = 2u32.to_le_bytes().to_vec();
    trailing.extend_from_slice(&[0x04, 0xaa]);
    hostile.push(trailing);
    // A client sending a server-side frame is also hostile.
    hostile.push(Frame::DrainAck.encode());
    let mut rng = StdRng::seed_from_u64(0xBAD);
    hostile.push((0..256).map(|_| rng.gen_range(0..256u16) as u8).collect());

    for (i, script) in hostile.iter().enumerate() {
        let replies = hostile_exchange(addr, script);
        for reply in &replies {
            match reply {
                Frame::ErrorReply { code, .. } => {
                    assert_eq!(*code, ErrorCode::BadRequest, "script {i}: {reply:?}");
                }
                other => panic!("script {i}: unexpected reply {other:?}"),
            }
        }
    }
    let after = handle.stats();
    assert!(
        after.hostile_closes >= 6,
        "hostile closes should be counted: {after:?}"
    );

    // The batcher never stalled: the queue is drained and a fresh client
    // gets a bit-identical answer.
    assert_eq!(service.queue_depth(), 0);
    let mut client = EnqClient::new(addr.to_string(), RetryPolicy::default());
    let again = client.embed("t", "m", &sample, 0).unwrap();
    assert_eq!(again.label, baseline.label);
    assert_eq!(again.parameters.len(), baseline.parameters.len());
    for (a, b) in again.parameters.iter().zip(&baseline.parameters) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    handle.join();
}

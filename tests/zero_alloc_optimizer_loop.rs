//! Verifies the zero-allocation claim of the rewritten hot path: once the
//! objective's workspace and the optimiser's workspace are warm, neither the
//! symbolic kernel nor the L-BFGS iteration loop touches the heap.
//!
//! A counting global allocator measures allocation *counts* (not bytes).
//! The binary runs **without the libtest harness** (`harness = false`): the
//! harness's own threads (timing, result channels) allocate at
//! unpredictable moments, which polluted the process-global counter and
//! made the zero-allocation window flaky. As a plain `fn main` the process
//! is single-threaded, so the counter observes only the measured code.

use enq_optim::{Lbfgs, LbfgsWorkspace, Objective};
use enqode::{AnsatzConfig, EntanglerKind, FidelityObjective};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn paper_objective() -> FidelityObjective {
    let config = AnsatzConfig {
        num_qubits: 8,
        num_layers: 8,
        entangler: EntanglerKind::Cy,
    };
    let target: Vec<f64> = (0..config.dimension())
        .map(|i| 0.3 + ((i as f64) * 0.7).sin().abs())
        .collect();
    FidelityObjective::new(&config, &target).unwrap()
}

// One entry point for both measurements: the counter is global, so any
// concurrent thread would pollute the measured windows.
fn main() {
    // --- Objective evaluations -------------------------------------------
    let objective = paper_objective();
    let theta: Vec<f64> = (0..objective.dimension())
        .map(|j| 0.05 * j as f64)
        .collect();
    let mut gradient = vec![0.0; objective.dimension()];
    // Warm the workspace.
    let _ = objective.value_and_gradient_into(&theta, &mut gradient);
    let _ = objective.value(&theta);

    let before = allocations();
    for _ in 0..200 {
        std::hint::black_box(objective.value_and_gradient_into(&theta, &mut gradient));
        std::hint::black_box(objective.value(&theta));
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "value/gradient evaluations allocated {delta} times after warm-up"
    );

    // --- The L-BFGS iteration loop ---------------------------------------
    let start: Vec<f64> = (0..objective.dimension())
        .map(|j| 0.2 * ((j as f64) * 1.3).sin())
        .collect();
    let mut ws = LbfgsWorkspace::new();

    // Warm every buffer (objective workspace + optimiser workspace).
    let _ = Lbfgs::with_max_iterations(3).minimize_with(&objective, &start, &mut ws);

    // A short and a long run must allocate the same, iteration-independent
    // amount (the returned result vector); the loop itself is allocation-free.
    let before_short = allocations();
    let _ = Lbfgs::with_max_iterations(5).minimize_with(&objective, &start, &mut ws);
    let short_allocs = allocations() - before_short;

    let before_long = allocations();
    let result = Lbfgs::with_max_iterations(150).minimize_with(&objective, &start, &mut ws);
    let long_allocs = allocations() - before_long;

    assert!(
        result.iterations > 5,
        "long run should iterate more (got {})",
        result.iterations
    );
    assert_eq!(
        short_allocs, long_allocs,
        "allocation count must not depend on iteration count"
    );
    assert!(
        long_allocs <= 2,
        "optimizer run should only allocate the result vector, got {long_allocs}"
    );
    println!("zero-alloc optimizer loop: ok");
}

//! Property tests for the autopilot trigger policy ([`TriggerState`]):
//! the anti-flap guarantees hold for *every* policy and signal trace, not
//! just the hand-picked unit-test traces.
//!
//! Invariants checked:
//!
//! 1. **No overlap** — while a fired refresh is in flight, the trigger
//!    never fires again, whatever the signals do.
//! 2. **Cooldown** — consecutive fires for one model are separated by at
//!    least `cooldown_polls + jitter` polls from the previous refresh's
//!    finish, i.e. at most one fire per cooldown window.
//! 3. **Determinism** — replaying the same trace against a fresh state
//!    with the same policy and seed reproduces the fire sequence exactly.
//! 4. **Hysteresis** — a trace whose breach runs are all shorter than
//!    `hysteresis_polls` never fires at all.

use enq_serve::{RefreshPolicy, SignalSnapshot, TriggerState};
use proptest::prelude::*;

/// One poll of a simulated trace: the signal observed, plus how many polls
/// the refresh would take if the trigger fires here.
#[derive(Debug, Clone)]
struct TracePoll {
    fidelity: f64,
    hit_rate: Option<f64>,
    recorded_delta: u64,
    refresh_polls: u64,
}

fn trace_poll() -> impl Strategy<Value = TracePoll> {
    (0.0..1.0f64, 0..3u8, 0.0..1.0f64, 0..64u64, 1..6u64).prop_map(
        |(fidelity, has_rate, rate, recorded_delta, refresh_polls)| TracePoll {
            fidelity,
            // Roughly a third of polls have too few lookups for a rate.
            hit_rate: (has_rate > 0).then_some(rate),
            recorded_delta,
            refresh_polls,
        },
    )
}

fn small_policy() -> impl Strategy<Value = RefreshPolicy> {
    (
        1..64u64,
        1..4u32,
        1..8u64,
        0..4u64,
        0..u64::MAX,
        0.0..0.5f64,
    )
        .prop_map(
            |(min_requests, hysteresis, cooldown, jitter, seed, drop)| RefreshPolicy {
                min_requests,
                min_fidelity: 0.8,
                hit_rate_drop: drop,
                hysteresis_polls: hysteresis,
                cooldown_polls: cooldown,
                jitter_polls: jitter,
                seed,
                ..RefreshPolicy::default()
            },
        )
}

/// Replays `trace` through a fresh [`TriggerState`], modelling each fired
/// refresh as finishing `refresh_polls` polls later. Returns the sequence
/// of `(fire_poll, finish_poll)` pairs and asserts the no-overlap
/// invariant inline (observe must stay silent while in flight).
fn simulate(model_id: &str, policy: &RefreshPolicy, trace: &[TracePoll]) -> Vec<(u64, u64)> {
    let mut state = TriggerState::new(model_id, policy);
    let mut fires = Vec::new();
    let mut recorded = 0u64;
    let mut finish_at: Option<u64> = None;
    for (i, step) in trace.iter().enumerate() {
        let poll = i as u64 + 1;
        recorded += step.recorded_delta;
        if let Some(f) = finish_at {
            if poll >= f {
                state.refresh_finished(policy, poll, recorded);
                finish_at = None;
            }
        }
        let snapshot = SignalSnapshot {
            recorded,
            window_hit_rate: step.hit_rate,
            audit_fidelity: Some(step.fidelity),
        };
        let fired = state.observe(policy, &snapshot, poll);
        if finish_at.is_some() {
            assert!(
                fired.is_none(),
                "fired at poll {poll} while a refresh was in flight"
            );
        }
        if fired.is_some() {
            let finish = poll + step.refresh_polls;
            fires.push((poll, finish));
            finish_at = Some(finish);
        }
    }
    fires
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Invariants 1–3 over arbitrary policies and traces.
    #[test]
    fn fires_never_overlap_respect_cooldown_and_replay_identically(
        policy in small_policy(),
        trace in proptest::collection::vec(trace_poll(), 1..200),
    ) {
        let fires = simulate("proptest-model", &policy, &trace);
        let jitter = TriggerState::new("proptest-model", &policy).jitter();
        for pair in fires.windows(2) {
            let (_, prev_finish) = pair[0];
            let (next_fire, _) = pair[1];
            // The refresh finishes at `prev_finish` (observed at the first
            // poll >= it), so the next fire must clear the armed window.
            prop_assert!(
                next_fire >= prev_finish + policy.cooldown_polls + jitter,
                "fire at {next_fire} inside cooldown window after finish {prev_finish} \
                 (cooldown {} + jitter {jitter})",
                policy.cooldown_polls,
            );
        }
        // Determinism: a fresh state over the same trace fires identically.
        let replay = simulate("proptest-model", &policy, &trace);
        prop_assert_eq!(fires, replay);
    }

    // Invariant 4: breach runs shorter than the hysteresis requirement
    // never fire, wherever they fall in the trace.
    #[test]
    fn sub_hysteresis_blips_never_fire(
        seed in 0..u64::MAX,
        blips in proptest::collection::vec((1..4u32, 1..10u64), 1..40),
    ) {
        let policy = RefreshPolicy {
            min_requests: 1,
            min_fidelity: 0.8,
            hit_rate_drop: 0.0, // isolate the fidelity trigger
            hysteresis_polls: 4,
            cooldown_polls: 2,
            jitter_polls: 2,
            seed,
            ..RefreshPolicy::default()
        };
        // Breach runs of length 1..4 (< hysteresis_polls = 4), each
        // terminated by at least one healthy poll.
        let mut trace = Vec::new();
        for (run, healthy) in blips {
            for _ in 0..run {
                trace.push(TracePoll {
                    fidelity: 0.1,
                    hit_rate: None,
                    recorded_delta: 50,
                    refresh_polls: 1,
                });
            }
            for _ in 0..healthy {
                trace.push(TracePoll {
                    fidelity: 0.99,
                    hit_rate: None,
                    recorded_delta: 50,
                    refresh_polls: 1,
                });
            }
        }
        let fires = simulate("blippy-model", &policy, &trace);
        prop_assert!(fires.is_empty(), "sub-hysteresis blips fired: {fires:?}");
    }
}

//! Seeded-determinism regression tests: golden values pinning the exact
//! behaviour of the clustering and training stack for fixed seeds.
//!
//! These tests exist so a future refactor cannot *silently* change trained
//! solutions: k-means assignments are pinned exactly, and the final training
//! loss (`1 − fidelity`) of every cluster is pinned to 1e-9. If an
//! intentional algorithm change trips them, re-golden the constants in the
//! same commit and say so in the commit message — that is the point: the
//! change becomes visible in review instead of slipping through.
//!
//! The fixtures are generated from seeded `StdRng` streams (never from
//! thread scheduling), so parallel and sequential runs must agree — which is
//! itself asserted at the end.

use enqode::{AnsatzConfig, EnqodeConfig, EnqodeModel, EntanglerKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic fixture: 12 vectors in three loose groups of four, 8-dim.
fn fixture_samples() -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(0xD0_1D);
    let bases: [[f64; 8]; 3] = [
        [0.9, 0.2, 0.1, 0.05, 0.02, 0.1, 0.05, 0.01],
        [0.05, 0.1, 0.02, 0.2, 0.9, 0.05, 0.1, 0.02],
        [0.1, 0.8, 0.05, 0.6, 0.05, 0.1, 0.4, 0.05],
    ];
    let mut samples = Vec::new();
    for base in &bases {
        for _ in 0..4 {
            samples.push(
                base.iter()
                    .map(|v| v + rng.gen_range(-0.05..0.05))
                    .collect(),
            );
        }
    }
    samples
}

fn fixture_config() -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 6,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.9,
        max_clusters: 4,
        offline_max_iterations: 120,
        offline_restarts: 2,
        online_max_iterations: 40,
        offline_rescue: false,
        seed: 0xE17,
    }
}

/// Golden k-means assignments for the fixture (k = 3, seed 41).
const GOLDEN_ASSIGNMENTS: &[usize] = &[1, 1, 1, 1, 2, 2, 2, 2, 0, 0, 0, 0];

/// Golden per-cluster losses (`1 − fidelity`) for `EnqodeModel::fit` on the
/// fixture with `fixture_config()`.
const GOLDEN_LOSSES: &[f64] = &[
    7.340_919_272_153_967e-3,
    5.776_394_601_843_116e-2,
    1.871_578_864_543_066e-2,
];

#[test]
fn kmeans_assignments_match_golden_values() {
    let samples = fixture_samples();
    let model = enq_data::kmeans(
        &samples,
        &enq_data::KMeansConfig {
            k: 3,
            max_iterations: 100,
            tolerance: 1e-8,
            seed: 41,
        },
    )
    .unwrap();
    println!("assignments: {:?}", model.assignments());
    println!("inertia: {:.17e}", model.inertia());
    assert_eq!(
        model.assignments(),
        GOLDEN_ASSIGNMENTS,
        "k-means assignments changed for a fixed seed"
    );
}

#[test]
fn fit_final_losses_match_golden_values() {
    let samples = fixture_samples();
    let model = EnqodeModel::fit(&samples, fixture_config()).unwrap();
    let losses: Vec<f64> = model.clusters().iter().map(|c| 1.0 - c.fidelity).collect();
    println!(
        "losses: {:?}",
        losses
            .iter()
            .map(|l| format!("{l:.17e}"))
            .collect::<Vec<_>>()
    );
    assert_eq!(
        losses.len(),
        GOLDEN_LOSSES.len(),
        "cluster count changed for a fixed seed"
    );
    for (i, (got, want)) in losses.iter().zip(GOLDEN_LOSSES).enumerate() {
        assert!(
            (got - want).abs() < 1e-9,
            "cluster {i} final loss drifted: got {got:.17e}, golden {want:.17e}"
        );
    }
    // The parallel fit must also agree with the sequential reference
    // bit-for-bit — seeds derive from (seed, cluster, restart), never from
    // scheduling.
    let sequential = EnqodeModel::fit_sequential(&samples, fixture_config()).unwrap();
    for (par, seq) in model.clusters().iter().zip(sequential.clusters()) {
        assert_eq!(par.parameters, seq.parameters);
        assert_eq!(par.fidelity.to_bits(), seq.fidelity.to_bits());
    }
}

//! Pipelined-engine equivalence and adaptive-search property suite.
//!
//! The streaming engine's contract has two halves:
//!
//! * **Ingestion is invisible to the mathematics** — prefetched
//!   (double-buffered) ingestion and the mmap feature spill must be
//!   bit-identical to the synchronous re-streaming path, for every chunk
//!   size and thread count, across `minibatch_kmeans`,
//!   `FeaturePipeline::fit_streaming`, and the full
//!   `EnqodePipeline::build_streaming`.
//! * **The adaptive fidelity-threshold `k` search is deterministic and
//!   monotone** — identical runs agree bit for bit, a tighter threshold
//!   never produces fewer clusters (the audit-and-split state sequence is
//!   threshold-independent by construction), and the search's postcondition
//!   holds: every audited cluster fidelity clears the threshold or the
//!   per-class cap is reached.

use enq_data::{
    minibatch_kmeans, Dataset, FeaturePipeline, InMemorySource, IngestMode, MiniBatchKMeansConfig,
};
use enqode::{
    AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind, StreamDriver, StreamingFitConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;

/// Labelled 8-dimensional blob data: `classes` classes, two lobes per class
/// so adaptive splitting has real structure to find.
fn blob_dataset(classes: usize, per_class: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    for class in 0..classes {
        for i in 0..per_class {
            let lobe = (i % 2) as f64;
            let sample: Vec<f64> = (0..8)
                .map(|d| {
                    let center = ((class * 8 + d) as f64 * 0.9 + lobe * 2.3).sin() + 0.2;
                    center + rng.gen_range(-0.15..0.15)
                })
                .collect();
            samples.push(sample);
            labels.push(class);
        }
    }
    Dataset::new("blobs", samples, labels).unwrap()
}

fn tiny_enqode_config(seed: u64) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.9,
        max_clusters: 4,
        offline_max_iterations: 30,
        offline_restarts: 1,
        online_max_iterations: 10,
        offline_rescue: false,
        seed,
    }
}

/// Runs the driver through the audit stage (no ansatz training) and returns
/// `(per-class cluster counts, audit)`.
fn adaptive_clusters(
    data: &Dataset,
    seed: u64,
    stream: StreamingFitConfig,
    threads: usize,
) -> (Vec<(usize, usize)>, enqode::FidelityAudit) {
    let mut source = InMemorySource::new(data);
    let mut driver = StreamDriver::with_threads(
        &mut source,
        tiny_enqode_config(seed),
        stream,
        NonZeroUsize::new(threads).unwrap(),
    )
    .unwrap();
    driver.run_features().unwrap();
    driver.run_clustering().unwrap();
    driver.run_fidelity_audit().unwrap();
    (driver.clusters_per_class(), driver.audit().unwrap().clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Prefetched mini-batch k-means is bit-identical to the synchronous
    // path for any chunk size, across thread counts.
    #[test]
    fn prefetched_minibatch_is_bit_identical_across_chunkings_and_threads(
        seed in 0u64..500,
        chunk in 5usize..40,
    ) {
        let data = blob_dataset(1, 90, seed);
        let fit = |ingest: IngestMode, threads: usize| {
            let mut source = InMemorySource::new(&data);
            enq_data::minibatch_kmeans_with_threads(
                &mut source,
                &MiniBatchKMeansConfig {
                    k: 3,
                    chunk_size: chunk,
                    passes: 2,
                    polish_passes: 2,
                    seed,
                    ingest,
                    ..Default::default()
                },
                NonZeroUsize::new(threads).unwrap(),
            )
            .unwrap()
        };
        let reference = fit(IngestMode::Synchronous, 1);
        for threads in [1usize, 2, 5] {
            prop_assert_eq!(&reference, &fit(IngestMode::Prefetched, threads));
            prop_assert_eq!(&reference, &fit(IngestMode::Synchronous, threads));
        }
    }

    // Prefetched streaming PCA fits are bit-identical to synchronous ones.
    #[test]
    fn prefetched_feature_fit_is_bit_identical(
        seed in 0u64..500,
        chunk in 4usize..32,
    ) {
        let data = blob_dataset(2, 40, seed);
        let fit = |ingest: IngestMode| {
            let mut source = InMemorySource::new(&data);
            FeaturePipeline::fit_streaming_with_options(
                &mut source,
                8,
                chunk,
                NonZeroUsize::new(2).unwrap(),
                ingest,
            )
            .unwrap()
        };
        let sync = fit(IngestMode::Synchronous);
        let prefetched = fit(IngestMode::Prefetched);
        prop_assert_eq!(sync.pca(), prefetched.pca());
    }

    // The adaptive fidelity-threshold search is deterministic (bit-stable
    // across repeats and thread counts) and its postcondition holds.
    #[test]
    fn adaptive_search_is_deterministic_with_valid_postcondition(
        seed in 0u64..300,
    ) {
        let data = blob_dataset(2, 48, seed);
        let stream = StreamingFitConfig {
            chunk_size: 16,
            clusters_per_class: 1,
            passes: 2,
            polish_passes: 2,
            fidelity_threshold: Some(0.85),
            max_clusters_per_class: 12,
            ..Default::default()
        };
        let (counts_a, audit_a) = adaptive_clusters(&data, seed, stream.clone(), 1);
        let (counts_b, audit_b) = adaptive_clusters(&data, seed, stream.clone(), 3);
        prop_assert_eq!(&counts_a, &counts_b);
        prop_assert_eq!(audit_a.rounds, audit_b.rounds);
        prop_assert_eq!(audit_a.splits, audit_b.splits);
        prop_assert_eq!(
            audit_a.min_fidelity().to_bits(),
            audit_b.min_fidelity().to_bits()
        );
        // Postcondition: every class passed the threshold or hit the cap.
        prop_assert!(audit_a.satisfied());
        for class in &audit_a.classes {
            let class_ok = class
                .clusters
                .iter()
                .filter(|c| c.members > 0)
                .all(|c| c.min_fidelity >= 0.85);
            prop_assert!(
                class_ok || class.clusters.len() == 12,
                "class {} neither satisfied nor capped",
                class.label
            );
        }
    }

    // Monotonicity: a tighter threshold never yields fewer clusters. The
    // audit-and-split sequence (always split the per-class worst cluster)
    // is threshold-independent, so a tighter threshold just stops later.
    #[test]
    fn adaptive_search_is_monotone_in_the_threshold(
        seed in 0u64..300,
    ) {
        let data = blob_dataset(2, 48, seed);
        let mut previous_total = 0usize;
        for threshold in [0.5f64, 0.7, 0.85, 0.95] {
            let stream = StreamingFitConfig {
                chunk_size: 16,
                clusters_per_class: 1,
                passes: 2,
                polish_passes: 2,
                fidelity_threshold: Some(threshold),
                max_clusters_per_class: 16,
                ..Default::default()
            };
            let (counts, audit) = adaptive_clusters(&data, seed, stream, 2);
            let total: usize = counts.iter().map(|(_, k)| k).sum();
            prop_assert!(
                total >= previous_total,
                "threshold {} produced {} clusters, looser run had {}",
                threshold,
                total,
                previous_total
            );
            prop_assert!(audit.satisfied());
            previous_total = total;
        }
    }
}

/// The four ingestion configurations of the full streaming build produce
/// bit-identical trained pipelines.
#[test]
fn full_streaming_build_is_ingestion_invariant() {
    let data = blob_dataset(2, 24, 0xBEEF);
    let fit = |ingest: IngestMode, spill: bool| {
        let mut source = InMemorySource::new(&data);
        let stream = StreamingFitConfig {
            chunk_size: 7,
            clusters_per_class: 2,
            passes: 2,
            polish_passes: 2,
            ingest,
            spill_features: spill,
            ..Default::default()
        };
        EnqodePipeline::build_streaming(&mut source, tiny_enqode_config(0xBEEF), &stream).unwrap()
    };
    let reference = fit(IngestMode::Synchronous, false);
    for (ingest, spill) in [
        (IngestMode::Synchronous, true),
        (IngestMode::Prefetched, false),
        (IngestMode::Prefetched, true),
    ] {
        let other = fit(ingest, spill);
        assert_eq!(reference.class_models().len(), other.class_models().len());
        for (a, b) in reference.class_models().iter().zip(other.class_models()) {
            assert_eq!(a.label, b.label);
            for (ka, kb) in a.model.clusters().iter().zip(b.model.clusters()) {
                assert_eq!(ka.centroid, kb.centroid, "{ingest:?} spill={spill}");
                assert_eq!(ka.parameters, kb.parameters, "{ingest:?} spill={spill}");
                assert_eq!(ka.fidelity.to_bits(), kb.fidelity.to_bits());
            }
        }
    }
}

/// Adaptive builds embed end to end: the trained pipeline carries the grown
/// cluster counts and every embed path works.
#[test]
fn adaptive_build_trains_and_embeds() {
    let data = blob_dataset(2, 24, 7);
    let mut source = InMemorySource::new(&data);
    let stream = StreamingFitConfig {
        chunk_size: 8,
        clusters_per_class: 1,
        passes: 2,
        polish_passes: 2,
        fidelity_threshold: Some(0.8),
        max_clusters_per_class: 6,
        ..Default::default()
    };
    let pipeline =
        EnqodePipeline::build_streaming(&mut source, tiny_enqode_config(7), &stream).unwrap();
    assert_eq!(pipeline.class_models().len(), 2);
    // The adaptive search had to split at least once on two-lobed classes at
    // this threshold; all classes stay within the cap.
    assert!(pipeline.total_clusters() > 2, "no splits happened");
    assert!(pipeline.total_clusters() <= 12);
    let (label, embedding) = pipeline.embed(data.sample(0)).unwrap();
    assert!(label < 2);
    assert!(embedding.ideal_fidelity > 0.5);
}

/// Degenerate streaming configurations fail fast with a descriptive error
/// instead of panicking or fitting garbage downstream.
#[test]
fn streaming_config_validation_rejects_degenerate_values() {
    let cases: Vec<(StreamingFitConfig, &str)> = vec![
        (
            StreamingFitConfig {
                chunk_size: 0,
                ..Default::default()
            },
            "chunk_size",
        ),
        (
            StreamingFitConfig {
                clusters_per_class: 0,
                ..Default::default()
            },
            "clusters_per_class",
        ),
        (
            StreamingFitConfig {
                passes: 0,
                ..Default::default()
            },
            "pass",
        ),
        (
            StreamingFitConfig {
                fidelity_threshold: Some(f64::NAN),
                ..Default::default()
            },
            "finite",
        ),
        (
            StreamingFitConfig {
                fidelity_threshold: Some(f64::INFINITY),
                ..Default::default()
            },
            "finite",
        ),
        (
            StreamingFitConfig {
                fidelity_threshold: Some(0.0),
                ..Default::default()
            },
            "(0, 1]",
        ),
        (
            StreamingFitConfig {
                fidelity_threshold: Some(1.5),
                ..Default::default()
            },
            "(0, 1]",
        ),
        (
            StreamingFitConfig {
                fidelity_threshold: Some(-0.2),
                ..Default::default()
            },
            "(0, 1]",
        ),
        (
            StreamingFitConfig {
                clusters_per_class: 8,
                fidelity_threshold: Some(0.9),
                max_clusters_per_class: 4,
                ..Default::default()
            },
            "max_clusters_per_class",
        ),
    ];
    let data = blob_dataset(1, 8, 1);
    for (stream, needle) in cases {
        let err = stream.validate().unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains(needle),
            "error {message:?} does not mention {needle:?}"
        );
        // The same rejection surfaces through the one-call build.
        let mut source = InMemorySource::new(&data);
        assert!(
            EnqodePipeline::build_streaming(&mut source, tiny_enqode_config(1), &stream).is_err()
        );
    }
    // The default configuration (and a threshold-free max below the start)
    // validate cleanly.
    StreamingFitConfig::default().validate().unwrap();
    StreamingFitConfig {
        clusters_per_class: 8,
        max_clusters_per_class: 4,
        fidelity_threshold: None,
        ..Default::default()
    }
    .validate()
    .unwrap();
    // Sanity: minibatch over a valid config still works after all the
    // rejected ones (no global state was poisoned).
    let mut source = InMemorySource::new(&data);
    minibatch_kmeans(
        &mut source,
        &MiniBatchKMeansConfig {
            k: 2,
            chunk_size: 4,
            passes: 1,
            ..Default::default()
        },
    )
    .unwrap();
}

//! Integration test for the symbolic representation (Eq. 6): the closed-form
//! amplitudes and fidelities must agree with full statevector simulation of
//! the bound ansatz circuit — including after routing and native-basis
//! transpilation.

use enq_circuit::{Topology, Transpiler};
use enq_qsim::Statevector;
use enqode::{target_state, AnsatzConfig, EntanglerKind, FidelityObjective, SymbolicState};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_theta(config: &AnsatzConfig, rng: &mut StdRng) -> Vec<f64> {
    (0..config.num_parameters())
        .map(|_| rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI))
        .collect()
}

#[test]
fn symbolic_amplitudes_match_simulation_for_all_entanglers() {
    let mut rng = StdRng::seed_from_u64(71);
    for entangler in [EntanglerKind::Cy, EntanglerKind::Cx, EntanglerKind::Cz] {
        for num_qubits in [2usize, 3, 5] {
            let config = AnsatzConfig {
                num_qubits,
                num_layers: 4,
                entangler,
            };
            let symbolic = SymbolicState::from_ansatz(&config).unwrap();
            let theta = random_theta(&config, &mut rng);
            let closed = config
                .closing_rotation()
                .matvec(&symbolic.amplitudes(&theta).unwrap());
            let simulated = Statevector::from_circuit(&config.build_bound(&theta).unwrap())
                .unwrap()
                .to_cvector();
            assert!(
                closed.approx_eq_up_to_phase(&simulated, 1e-9),
                "symbolic/simulator mismatch for {entangler:?} on {num_qubits} qubits"
            );
        }
    }
}

#[test]
fn symbolic_fidelity_matches_transpiled_circuit_fidelity() {
    // The fidelity the loss reports must survive routing + basis translation
    // (they are exact circuit identities up to global phase).
    let mut rng = StdRng::seed_from_u64(5);
    let config = AnsatzConfig {
        num_qubits: 4,
        num_layers: 6,
        entangler: EntanglerKind::Cy,
    };
    let transpiler = Transpiler::new(Topology::linear(4));
    for _ in 0..3 {
        let target: Vec<f64> = (0..16).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let objective = FidelityObjective::new(&config, &target).unwrap();
        let theta = random_theta(&config, &mut rng);
        let symbolic_fidelity = objective.fidelity(&theta);

        let circuit = config.build_bound(&theta).unwrap();
        let transpiled = transpiler.transpile(&circuit).unwrap();
        // The linear-section layout on a matching linear topology is the
        // identity, so no qubit permutation is needed.
        assert_eq!(transpiled.swap_count, 0);
        let out = Statevector::from_circuit(&transpiled.circuit)
            .unwrap()
            .to_cvector();
        let circuit_fidelity = out
            .overlap_fidelity(&target_state(&target).unwrap())
            .unwrap();
        assert!(
            (symbolic_fidelity - circuit_fidelity).abs() < 1e-7,
            "symbolic {symbolic_fidelity} vs transpiled-circuit {circuit_fidelity}"
        );
    }
}

#[test]
fn symbolic_gradient_descends_the_true_circuit_loss() {
    // Take one gradient step computed symbolically and confirm the actual
    // circuit fidelity improves — the property EnQode's training relies on.
    let config = AnsatzConfig {
        num_qubits: 3,
        num_layers: 6,
        entangler: EntanglerKind::Cy,
    };
    let mut rng = StdRng::seed_from_u64(9);
    let target: Vec<f64> = (0..8).map(|_| rng.gen_range(0.1..1.0)).collect();
    let objective = FidelityObjective::new(&config, &target).unwrap();
    let theta = random_theta(&config, &mut rng);

    let circuit_fidelity = |t: &[f64]| -> f64 {
        let out = Statevector::from_circuit(&config.build_bound(t).unwrap()).unwrap();
        out.to_cvector()
            .overlap_fidelity(&target_state(&target).unwrap())
            .unwrap()
    };

    use enq_optim::Objective;
    let (value, gradient) = objective.value_and_gradient(&theta);
    let before = circuit_fidelity(&theta);
    assert!((1.0 - value - before).abs() < 1e-8);

    let step = 0.05;
    let stepped: Vec<f64> = theta
        .iter()
        .zip(gradient.iter())
        .map(|(t, g)| t - step * g)
        .collect();
    let after = circuit_fidelity(&stepped);
    assert!(
        after >= before - 1e-9,
        "a small symbolic gradient step must not reduce the circuit fidelity ({before} → {after})"
    );
}

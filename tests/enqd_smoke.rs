//! End-to-end smoke tests for the `enqd` binary: spawn the real daemon as
//! a child process, speak the wire protocol to it, and wind it down both
//! ways — a `Drain` control frame and a SIGTERM — asserting a clean exit
//! with the drained-stats banner either way.

use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enq_net::{ClientError, EnqClient, ErrorCode, RetryPolicy};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Spawns `enqd` on an ephemeral port and returns the child plus the bound
/// address parsed from its readiness line.
fn spawn_enqd(extra_args: &[&str]) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_enqd"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning enqd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut ready = String::new();
    reader
        .read_line(&mut ready)
        .expect("reading enqd readiness line");
    let addr = ready
        .trim_end()
        .strip_prefix("ENQD LISTENING ")
        .unwrap_or_else(|| panic!("unexpected readiness line: {ready:?}"))
        .to_string();
    // Hand the handle back so the drained banner can be read later (the
    // daemon writes nothing between the readiness line and the banner, so
    // dropping the empty buffer loses nothing).
    child.stdout = Some(reader.into_inner());
    (child, addr)
}

/// Waits (bounded) for the child to exit and returns (exit-ok, stdout rest).
fn wait_for_exit(mut child: Child) -> (bool, String) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                let mut rest = String::new();
                if let Some(mut stdout) = child.stdout.take() {
                    let _ = stdout.read_to_string(&mut rest);
                }
                return (status.success(), rest);
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("enqd did not exit within 30s of the drain");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// The same synthetic dataset `enqd` trains on by default (MNIST-like,
/// 2 classes x 6 samples, seed 7), regenerated for valid 784-dim inputs.
fn default_samples() -> Vec<Vec<f64>> {
    generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 6,
            seed: 7,
        },
    )
    .unwrap()
    .samples()
    .to_vec()
}

#[test]
fn enqd_serves_embeds_rejects_garbage_and_drains_on_control_frame() {
    let (child, addr) = spawn_enqd(&[]);
    let samples = default_samples();
    let mut client = EnqClient::new(addr.clone(), RetryPolicy::default());

    client.ping().expect("ping");

    // A real embedding, twice: the repeat must be answered from the
    // solution cache with bit-identical parameters.
    let first = client.embed("smoke", "default", &samples[0], 0).unwrap();
    assert!(!first.parameters.is_empty());
    assert!(first.ideal_fidelity.is_finite());
    let again = client.embed("smoke", "default", &samples[0], 0).unwrap();
    assert_eq!(again.source, 1, "repeat should be a cache hit");
    assert_eq!(again.label, first.label);
    for (a, b) in again.parameters.iter().zip(&first.parameters) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Terminal typed rejections: wrong model, wrong dimensionality.
    match client.embed("smoke", "no-such-model", &samples[0], 0) {
        Err(ClientError::Server {
            code: ErrorCode::ModelNotFound,
            ..
        }) => {}
        other => panic!("expected ModelNotFound, got {other:?}"),
    }
    match client.embed("smoke", "default", &[1.0, 2.0, 3.0], 0) {
        Err(ClientError::Server {
            code: ErrorCode::EmbedFailed,
            ..
        }) => {}
        other => panic!("expected EmbedFailed, got {other:?}"),
    }

    // A hostile peer sending garbage gets a typed reject and a close —
    // and the daemon keeps serving afterwards.
    let mut hostile = TcpStream::connect(&addr).unwrap();
    hostile.write_all(&[0xFF; 64]).unwrap();
    hostile
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reply = Vec::new();
    let _ = hostile.read_to_end(&mut reply);
    assert!(
        !reply.is_empty(),
        "hostile close should carry a typed reject"
    );
    drop(hostile);
    client.ping().expect("ping after hostile client");

    // Wind down over the wire.
    client.drain().expect("drain ack");
    let (ok, rest) = wait_for_exit(child);
    assert!(ok, "enqd must exit 0 after a drain");
    assert!(
        rest.contains("ENQD DRAINED"),
        "missing drained banner in {rest:?}"
    );
    assert!(
        rest.contains("served="),
        "banner must carry counters: {rest:?}"
    );
}

#[cfg(unix)]
#[test]
fn enqd_drains_gracefully_on_sigterm() {
    let (child, addr) = spawn_enqd(&["--max-pending", "8"]);
    let samples = default_samples();
    let mut client = EnqClient::new(addr, RetryPolicy::default());
    client.embed("smoke", "default", &samples[1], 0).unwrap();

    let status = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("sending SIGTERM");
    assert!(status.success());

    let (ok, rest) = wait_for_exit(child);
    assert!(ok, "enqd must exit 0 on SIGTERM");
    assert!(
        rest.contains("ENQD DRAINED"),
        "missing drained banner in {rest:?}"
    );
}

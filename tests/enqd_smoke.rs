//! End-to-end smoke tests for the `enqd` binary: spawn the real daemon as
//! a child process, speak the wire protocol to it, and wind it down both
//! ways — a `Drain` control frame and a SIGTERM — asserting a clean exit
//! with the drained-stats banner either way.

use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enq_net::{ClientError, EnqClient, ErrorCode, RetryPolicy};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Spawns `enqd` on an ephemeral port and returns the child, the bound
/// address parsed from its readiness line, and any status lines (e.g.
/// `ENQD WARMBOOT …`) the daemon printed **before** readiness.
fn spawn_enqd(extra_args: &[&str]) -> (Child, String, Vec<String>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_enqd"))
        .arg("--addr")
        .arg("127.0.0.1:0")
        .args(extra_args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawning enqd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut preamble = Vec::new();
    let addr = loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("reading enqd stdout");
        assert!(n > 0, "enqd closed stdout before readiness: {preamble:?}");
        if let Some(addr) = line.trim_end().strip_prefix("ENQD LISTENING ") {
            break addr.to_string();
        }
        preamble.push(line.trim_end().to_string());
    };
    // Hand the handle back so the drained banner can be read later (the
    // daemon writes nothing between the readiness line and the banner, so
    // dropping the empty buffer loses nothing).
    child.stdout = Some(reader.into_inner());
    (child, addr, preamble)
}

/// Waits (bounded) for the child to exit and returns (exit-ok, stdout rest).
fn wait_for_exit(mut child: Child) -> (bool, String) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                let mut rest = String::new();
                if let Some(mut stdout) = child.stdout.take() {
                    let _ = stdout.read_to_string(&mut rest);
                }
                return (status.success(), rest);
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                let _ = child.wait();
                panic!("enqd did not exit within 30s of the drain");
            }
            None => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// The same synthetic dataset `enqd` trains on by default (MNIST-like,
/// 2 classes x 6 samples, seed 7), regenerated for valid 784-dim inputs.
fn default_samples() -> Vec<Vec<f64>> {
    generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 6,
            seed: 7,
        },
    )
    .unwrap()
    .samples()
    .to_vec()
}

#[test]
fn enqd_serves_embeds_rejects_garbage_and_drains_on_control_frame() {
    let (child, addr, preamble) = spawn_enqd(&[]);
    assert!(
        preamble.is_empty(),
        "no boot status expected without --model-dir: {preamble:?}"
    );
    let samples = default_samples();
    let mut client = EnqClient::new(addr.clone(), RetryPolicy::default());

    client.ping().expect("ping");

    // A real embedding, twice: the repeat must be answered from the
    // solution cache with bit-identical parameters.
    let first = client.embed("smoke", "default", &samples[0], 0).unwrap();
    assert!(!first.parameters.is_empty());
    assert!(first.ideal_fidelity.is_finite());
    let again = client.embed("smoke", "default", &samples[0], 0).unwrap();
    assert_eq!(again.source, 1, "repeat should be a cache hit");
    assert_eq!(again.label, first.label);
    for (a, b) in again.parameters.iter().zip(&first.parameters) {
        assert_eq!(a.to_bits(), b.to_bits());
    }

    // Terminal typed rejections: wrong model, wrong dimensionality.
    match client.embed("smoke", "no-such-model", &samples[0], 0) {
        Err(ClientError::Server {
            code: ErrorCode::ModelNotFound,
            ..
        }) => {}
        other => panic!("expected ModelNotFound, got {other:?}"),
    }
    match client.embed("smoke", "default", &[1.0, 2.0, 3.0], 0) {
        Err(ClientError::Server {
            code: ErrorCode::EmbedFailed,
            ..
        }) => {}
        other => panic!("expected EmbedFailed, got {other:?}"),
    }

    // A hostile peer sending garbage gets a typed reject and a close —
    // and the daemon keeps serving afterwards.
    let mut hostile = TcpStream::connect(&addr).unwrap();
    hostile.write_all(&[0xFF; 64]).unwrap();
    hostile
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut reply = Vec::new();
    let _ = hostile.read_to_end(&mut reply);
    assert!(
        !reply.is_empty(),
        "hostile close should carry a typed reject"
    );
    drop(hostile);
    client.ping().expect("ping after hostile client");

    // Wind down over the wire.
    client.drain().expect("drain ack");
    let (ok, rest) = wait_for_exit(child);
    assert!(ok, "enqd must exit 0 after a drain");
    assert!(
        rest.contains("ENQD DRAINED"),
        "missing drained banner in {rest:?}"
    );
    assert!(
        rest.contains("served="),
        "banner must carry counters: {rest:?}"
    );
}

#[test]
fn enqd_warm_boot_serves_bit_identical_answers_without_retraining() {
    let model_dir = std::env::temp_dir().join(format!("enqd_warmboot_{}", std::process::id()));
    std::fs::remove_dir_all(&model_dir).ok();
    let dir_arg = model_dir.to_str().unwrap().to_string();
    let samples = default_samples();

    // First boot: the store is empty, so the daemon trains and persists —
    // a cold start, and it says so before readiness.
    let (child, addr, preamble) = spawn_enqd(&["--model-dir", &dir_arg]);
    assert!(
        preamble.iter().any(|l| l.starts_with("ENQD COLDBOOT")),
        "expected a COLDBOOT status line, got {preamble:?}"
    );
    let mut client = EnqClient::new(addr, RetryPolicy::default());
    let before = client.embed("warm", "default", &samples[0], 0).unwrap();
    client.drain().expect("drain ack");
    let (ok, _) = wait_for_exit(child);
    assert!(ok, "first enqd must exit 0");
    assert!(
        model_dir.join("default.enqm").is_file(),
        "cold start must leave an artifact behind"
    );

    // Second boot, same store: a warm boot — the artifact is restored at
    // its recorded generation, announced before readiness, and the answer
    // to the same request is bitwise identical to the first process's.
    let (child, addr, preamble) = spawn_enqd(&["--model-dir", &dir_arg]);
    let warm = preamble
        .iter()
        .find(|l| l.starts_with("ENQD WARMBOOT"))
        .unwrap_or_else(|| panic!("expected a WARMBOOT status line, got {preamble:?}"));
    assert!(
        warm.contains("models=1") && warm.contains("generation=1"),
        "unexpected warm-boot summary: {warm:?}"
    );
    let mut client = EnqClient::new(addr, RetryPolicy::default());
    let after = client.embed("warm", "default", &samples[0], 0).unwrap();
    assert_eq!(after.label, before.label);
    assert_eq!(
        after.ideal_fidelity.to_bits(),
        before.ideal_fidelity.to_bits(),
        "warm-boot fidelity must be bit-identical"
    );
    assert_eq!(after.parameters.len(), before.parameters.len());
    for (a, b) in after.parameters.iter().zip(&before.parameters) {
        assert_eq!(a.to_bits(), b.to_bits(), "warm-boot parameters must match");
    }
    client.drain().expect("drain ack");
    let (ok, _) = wait_for_exit(child);
    assert!(ok, "second enqd must exit 0");
    std::fs::remove_dir_all(&model_dir).ok();
}

#[cfg(unix)]
#[test]
fn enqd_drains_gracefully_on_sigterm() {
    let (child, addr, _) = spawn_enqd(&["--max-pending", "8"]);
    let samples = default_samples();
    let mut client = EnqClient::new(addr, RetryPolicy::default());
    client.embed("smoke", "default", &samples[1], 0).unwrap();

    let status = Command::new("kill")
        .arg("-TERM")
        .arg(child.id().to_string())
        .status()
        .expect("sending SIGTERM");
    assert!(status.success());

    let (ok, rest) = wait_for_exit(child);
    assert!(ok, "enqd must exit 0 on SIGTERM");
    assert!(
        rest.contains("ENQD DRAINED"),
        "missing drained banner in {rest:?}"
    );
}

//! Registry persistence contract: snapshot → restore is a warm boot.
//!
//! Covers the serve-layer half of the durable model store — generation
//! preservation across restarts, two-phase all-or-nothing restore in the
//! face of hostile artifacts, and persist-on-swap from the background
//! rebuild path.

use enq_data::{generate_synthetic, Dataset, DatasetKind, SyntheticConfig, SyntheticSource};
use enq_serve::{
    restore_registry, snapshot_registry, EmbedService, ModelRegistry, RebuildSpec, RebuildStatus,
    ServeConfig, StoreError,
};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind, StreamingFitConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("enqm_snap_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn tiny_config(seed: u64) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 2,
            num_layers: 2,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.5,
        max_clusters: 2,
        offline_max_iterations: 20,
        offline_restarts: 1,
        online_max_iterations: 10,
        offline_rescue: false,
        seed,
    }
}

fn tiny_dataset(seed: u64) -> Dataset {
    generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 6,
            seed,
        },
    )
    .unwrap()
}

fn tiny_pipeline(seed: u64) -> Arc<EnqodePipeline> {
    Arc::new(EnqodePipeline::build(&tiny_dataset(seed), tiny_config(seed)).unwrap())
}

#[test]
fn snapshot_then_restore_preserves_pipelines_and_generations() {
    let dir = unique_dir("roundtrip");
    let registry = ModelRegistry::with_shards(4);
    registry.insert("alpha", tiny_pipeline(1));
    registry.insert("beta", tiny_pipeline(2));
    registry.insert("alpha", tiny_pipeline(3)); // replace: alpha is generation 3
    let manifest = snapshot_registry(&registry, &dir).unwrap();
    let summary: Vec<(&str, u64)> = manifest
        .iter()
        .map(|m| (m.model_id.as_str(), m.generation))
        .collect();
    assert_eq!(summary, vec![("alpha", 3), ("beta", 2)]);

    // "Restart": a fresh registry adopts the artifacts at their recorded
    // generations, and its counter resumes past the restored maximum.
    let reborn = ModelRegistry::with_shards(2);
    let restored = restore_registry(&reborn, &dir).unwrap();
    assert_eq!(restored.len(), 2);
    assert_eq!(reborn.get_with_generation("alpha").unwrap().1, 3);
    assert_eq!(reborn.get_with_generation("beta").unwrap().1, 2);
    let (_, next) = reborn.insert_tracked("gamma", tiny_pipeline(4));
    assert_eq!(next, 4);

    // The warm-booted pipeline answers bitwise identically.
    let data = tiny_dataset(3);
    let before = registry.get("alpha").unwrap();
    let after = reborn.get("alpha").unwrap();
    for index in 0..data.len() {
        let (label_b, emb_b) = before.embed(data.sample(index)).unwrap();
        let (label_a, emb_a) = after.embed(data.sample(index)).unwrap();
        assert_eq!(label_b, label_a);
        assert_eq!(
            emb_b.ideal_fidelity.to_bits(),
            emb_a.ideal_fidelity.to_bits()
        );
        let bits_b: Vec<u64> = emb_b.parameters.iter().map(|p| p.to_bits()).collect();
        let bits_a: Vec<u64> = emb_a.parameters.iter().map(|p| p.to_bits()).collect();
        assert_eq!(bits_b, bits_a);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn one_corrupt_artifact_aborts_the_whole_restore_with_no_partial_adoption() {
    let dir = unique_dir("hostile");
    let registry = ModelRegistry::new();
    registry.insert("good-a", tiny_pipeline(5));
    registry.insert("good-b", tiny_pipeline(6));
    snapshot_registry(&registry, &dir).unwrap();
    // Corrupt one artifact with a single mid-payload bit flip.
    let victim = dir.join("good-b.enqm");
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();

    let target = ModelRegistry::new();
    target.insert("survivor", tiny_pipeline(7));
    let err = restore_registry(&target, &dir).unwrap_err();
    assert!(
        matches!(err, StoreError::IntegrityMismatch { .. }),
        "expected an integrity failure, got {err}"
    );
    // Two-phase restore: nothing was adopted, the pre-existing model is
    // untouched, and the generation counter did not move.
    assert_eq!(target.model_ids(), vec!["survivor"]);
    assert_eq!(target.get_with_generation("survivor").unwrap().1, 1);
    let (_, next) = target.insert_tracked("next", tiny_pipeline(8));
    assert_eq!(next, 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restoring_a_missing_or_empty_directory_is_a_cold_start_not_an_error() {
    let dir = unique_dir("cold");
    let registry = ModelRegistry::new();
    assert!(restore_registry(&registry, &dir).unwrap().is_empty());
    std::fs::create_dir_all(&dir).unwrap();
    // Non-artifact files are ignored.
    std::fs::write(dir.join("README.txt"), b"not a model").unwrap();
    assert!(restore_registry(&registry, &dir).unwrap().is_empty());
    assert!(registry.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn colliding_sanitised_file_names_refuse_the_snapshot() {
    let dir = unique_dir("collide");
    let registry = ModelRegistry::new();
    let p = tiny_pipeline(9);
    registry.insert("tenant/a", Arc::clone(&p));
    registry.insert("tenant_a", p);
    let err = snapshot_registry(&registry, &dir).unwrap_err();
    assert!(matches!(
        err,
        StoreError::InvalidValue {
            field: "model_id",
            ..
        }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn successful_rebuild_persists_the_new_generation_when_enabled() {
    let dir = unique_dir("swap");
    let service = EmbedService::new(ServeConfig::default());
    service.register_model("live", tiny_pipeline(10));
    service.enable_persistence(&dir).unwrap();

    let source = SyntheticSource::new(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 6,
            seed: 11,
        },
    )
    .unwrap();
    let stream = StreamingFitConfig {
        chunk_size: 4,
        clusters_per_class: 1,
        passes: 1,
        polish_passes: 1,
        ..StreamingFitConfig::default()
    };
    let ticket = service
        .rebuild_controller()
        .start("live", source, RebuildSpec::new(tiny_config(11), stream))
        .unwrap();
    assert_eq!(ticket.wait(), RebuildStatus::Succeeded);

    // The swap persisted an artifact at the registry's current generation,
    // and reported it as a `persist` progress stage.
    let stages: Vec<&str> = ticket.progress().iter().map(|s| s.stage).collect();
    assert_eq!(stages.last(), Some(&"persist"));
    let (swapped, generation) = service.registry().get_with_generation("live").unwrap();
    let artifact = enq_store::read_model_file(&dir.join("live.enqm")).unwrap();
    assert_eq!(artifact.model_id, "live");
    assert_eq!(artifact.generation, generation);
    // And the persisted bytes describe exactly the pipeline now serving.
    let reencoded = enq_store::encode_model("live", generation, &swapped);
    assert_eq!(
        reencoded,
        enq_store::encode_model("live", generation, &artifact.pipeline)
    );
    std::fs::remove_dir_all(&dir).ok();
}

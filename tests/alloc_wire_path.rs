//! Pins the wire layer's allocation budget: a steady-state cache-hit
//! request through a live `enqd` socket costs a **bounded small constant**
//! of heap allocations end to end.
//!
//! The budget is three allocations per request, all in frame decoding
//! (`decode_frame` builds an owned tenant `String`, model-id `String`, and
//! sample `Vec<f64>` for the service call); everything after decode is
//! allocation-free — interned model-id resolve, pooled sample buffer and
//! reply slot, cache-hit lookup, and a reply encoded into the connection's
//! reused write buffer. The assertion allows four per request so an
//! incidental platform allocation (a lazily grown thread-local, an
//! occasional I/O retry) cannot flake the suite, while still catching any
//! real per-request regression (a single reintroduced clone costs +1 per
//! request = +200 over the run).
//!
//! Runs without the libtest harness (`harness = false`); the server's own
//! threads (acceptor, connection, batcher) are deliberately inside the
//! measured window. The *client* side stays out of the picture by never
//! allocating during measurement: the request frame is encoded once up
//! front and replies are read into a fixed stack buffer by hand-parsing
//! the `[u32 LE len]` framing (client-side `decode_frame` would allocate).

use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enq_net::{EnqdServer, FaultPlan, Frame, NetConfig};
use enq_serve::{EmbedService, ServeConfig};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Sends one pre-encoded request and reads the framed reply into `reply`,
/// returning the frame length. Allocation-free: manual length-header
/// parsing against a caller-owned buffer.
fn round_trip(stream: &mut TcpStream, request: &[u8], reply: &mut [u8]) -> usize {
    stream.write_all(request).expect("request write failed");
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).expect("reply header");
    let len = u32::from_le_bytes(header) as usize;
    assert!(
        len > 0 && len <= reply.len(),
        "reply length {len} out of range"
    );
    stream.read_exact(&mut reply[..len]).expect("reply body");
    len
}

fn main() {
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 6,
            seed: 17,
        },
    )
    .unwrap();
    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 2,
        offline_max_iterations: 40,
        offline_restarts: 1,
        online_max_iterations: 15,
        offline_rescue: false,
        seed: 17,
    };
    let pipeline = Arc::new(EnqodePipeline::build(&dataset, config).unwrap());
    let service = Arc::new(EmbedService::new(ServeConfig {
        max_batch_size: 4,
        flush_deadline: Duration::ZERO,
        ..Default::default()
    }));
    service.register_model("m", pipeline);
    let handle = EnqdServer::spawn(
        Arc::clone(&service),
        "127.0.0.1:0",
        NetConfig {
            tick: Duration::from_millis(1),
            ..NetConfig::default()
        },
        FaultPlan::none(),
    )
    .unwrap();

    let request = Frame::EmbedRequest {
        id: 7,
        deadline_ms: 0,
        tenant: "t".to_string(),
        model_id: "m".to_string(),
        sample: dataset.sample(0).to_vec(),
    }
    .encode();
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut reply = [0u8; 8192];

    // Warm everything on the measured path: the connection's pooled frame
    // buffers, the service's sample/slot pools, both cache tiers, and the
    // batcher's workspace.
    for _ in 0..20 {
        let len = round_trip(&mut stream, &request, &mut reply);
        assert_eq!(reply[0], 0x02, "warm-up must get EmbedReply, len {len}");
    }

    const ROUNDS: usize = 200;
    const BUDGET_PER_REQUEST: usize = 4;
    let before = allocations();
    for _ in 0..ROUNDS {
        let len = round_trip(&mut stream, &request, &mut reply);
        std::hint::black_box(&reply[..len]);
        assert_eq!(reply[0], 0x02, "steady state must stay EmbedReply");
        // Source byte is the frame's last byte: 1 = cache hit.
        assert_eq!(reply[len - 1], 1, "steady state must be a cache hit");
    }
    let delta = allocations() - before;
    assert!(
        delta <= ROUNDS * BUDGET_PER_REQUEST,
        "wire path allocated {delta} times over {ROUNDS} requests \
         (budget {} = {BUDGET_PER_REQUEST}/request; steady state is 3: \
         decode's tenant + model id + sample)",
        ROUNDS * BUDGET_PER_REQUEST
    );

    drop(stream);
    handle.join();
    println!(
        "wire-path allocation budget: ok ({delta} allocations / {ROUNDS} requests \
         = {:.2} per request)",
        delta as f64 / ROUNDS as f64
    );
}

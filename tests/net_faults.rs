//! Fault-injection harness for the `enqd` front door.
//!
//! Every scenario arms a hostile-client behaviour (slowloris half-frames,
//! mid-request disconnects, deadline storms) or an injected server-side
//! fault ([`FaultPlan`]: torn writes, dropped connections, slowed reads)
//! against a live server, then asserts the survival contract: the
//! registry/cache/batcher invariants hold (queue drained, no stuck
//! waiters), the server keeps serving, and a follow-up request returns
//! results **bit-identical** to an unfaulted run. Graceful drain
//! completes in-flight admitted work.

use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enq_net::{
    AdmissionConfig, ClientError, EnqClient, EnqdServer, ErrorCode, FaultPlan, Frame, NetConfig,
    RetryPolicy, ServerHandle, WriteFault,
};
use enq_serve::{EmbedService, ServeConfig};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

fn tiny_config(seed: u64) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 2,
        offline_max_iterations: 40,
        offline_restarts: 1,
        online_max_iterations: 15,
        offline_rescue: false,
        seed,
    }
}

/// One pipeline trained once and shared by every scenario server, so all
/// scenarios serve from identical model state.
fn shared_pipeline() -> &'static (Arc<EnqodePipeline>, Vec<Vec<f64>>) {
    static PIPELINE: OnceLock<(Arc<EnqodePipeline>, Vec<Vec<f64>>)> = OnceLock::new();
    PIPELINE.get_or_init(|| {
        let dataset = generate_synthetic(
            DatasetKind::MnistLike,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 6,
                seed: 23,
            },
        )
        .unwrap();
        let samples = dataset.samples().to_vec();
        (
            Arc::new(EnqodePipeline::build(&dataset, tiny_config(23)).unwrap()),
            samples,
        )
    })
}

fn spawn_scenario_server_with(
    serve_config: ServeConfig,
    net_config: NetConfig,
    faults: FaultPlan,
) -> (ServerHandle, Arc<EmbedService>) {
    let (pipeline, _) = shared_pipeline();
    let service = Arc::new(EmbedService::new(serve_config));
    service.register_model("m", Arc::clone(pipeline));
    let handle =
        EnqdServer::spawn(Arc::clone(&service), "127.0.0.1:0", net_config, faults).unwrap();
    (handle, service)
}

fn spawn_scenario_server(
    net_config: NetConfig,
    faults: FaultPlan,
) -> (ServerHandle, Arc<EmbedService>) {
    spawn_scenario_server_with(ServeConfig::default(), net_config, faults)
}

fn fast_net_config() -> NetConfig {
    NetConfig {
        read_timeout: Duration::from_millis(250),
        tick: Duration::from_millis(5),
        ..NetConfig::default()
    }
}

fn no_retry() -> RetryPolicy {
    RetryPolicy {
        max_attempts: 1,
        ..RetryPolicy::default()
    }
}

/// The reference answer from an unfaulted server, computed once.
fn reference_embedding() -> &'static (u64, Vec<f64>) {
    static REFERENCE: OnceLock<(u64, Vec<f64>)> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        let (handle, _service) = spawn_scenario_server(fast_net_config(), FaultPlan::none());
        let mut client = EnqClient::new(handle.addr().to_string(), RetryPolicy::default());
        let sample = &shared_pipeline().1[0];
        let reply = client.embed("t", "m", sample, 0).unwrap();
        handle.join();
        (reply.label, reply.parameters)
    })
}

/// Pool hygiene, asserted once a scenario's traffic has stopped: every
/// checked-out request buffer — including those carried by requests that
/// failed, were shed, or whose client vanished — must come back to the
/// pool, and the parked set must respect the configured bound. A buffer
/// that never returns is a leak that compounds under sustained faults.
fn assert_pools_quiesced(service: &EmbedService) {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let pools = service.pool_stats();
        if pools.samples.outstanding == 0 && pools.slots.outstanding == 0 {
            assert!(pools.samples.available <= pools.samples.capacity);
            assert!(pools.slots.available <= pools.slots.capacity);
            return;
        }
        assert!(
            Instant::now() < deadline,
            "pool buffers leaked: {} samples, {} slots still outstanding",
            pools.samples.outstanding,
            pools.slots.outstanding
        );
        std::thread::yield_now();
    }
}

/// The survival contract, asserted after every scenario: queue drained,
/// pools quiesced, server still answering, and the follow-up answer
/// bit-identical to the unfaulted reference.
fn assert_still_serving_bit_identical(handle: &ServerHandle, service: &EmbedService) {
    assert_eq!(service.queue_depth(), 0, "batcher queue must be drained");
    assert_pools_quiesced(service);
    let (ref_label, ref_parameters) = reference_embedding();
    let sample = &shared_pipeline().1[0];
    let mut client = EnqClient::new(handle.addr().to_string(), RetryPolicy::default());
    let reply = client
        .embed("t", "m", sample, 0)
        .expect("server must keep serving after the fault");
    assert_eq!(reply.label, *ref_label);
    assert_eq!(reply.parameters.len(), ref_parameters.len());
    for (a, b) in reply.parameters.iter().zip(ref_parameters) {
        assert_eq!(a.to_bits(), b.to_bits(), "parameters diverged after fault");
    }
}

fn encoded_request(sample: &[f64]) -> Vec<u8> {
    Frame::EmbedRequest {
        id: 1,
        deadline_ms: 0,
        tenant: "t".into(),
        model_id: "m".into(),
        sample: sample.to_vec(),
    }
    .encode()
}

// ---------------------------------------------------------------------------
// Hostile-client scenarios
// ---------------------------------------------------------------------------

#[test]
fn slowloris_half_frame_is_timed_out_and_the_server_keeps_serving() {
    let (handle, service) = spawn_scenario_server(fast_net_config(), FaultPlan::none());
    let request = encoded_request(&shared_pipeline().1[0]);

    // Hold the connection open with half a frame, then trickle nothing.
    let mut slow = TcpStream::connect(handle.addr()).unwrap();
    slow.write_all(&request[..request.len() / 2]).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let started = Instant::now();
    let mut scratch = [0u8; 256];
    let n = slow.read(&mut scratch).unwrap_or(0);
    assert_eq!(n, 0, "server must close the slowloris connection");
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "close must come from the slowloris guard, not the socket timeout"
    );
    assert!(handle.stats().hostile_closes >= 1);
    assert_still_serving_bit_identical(&handle, &service);
    handle.join();
}

#[test]
fn trickled_bytes_do_not_reset_the_slowloris_clock() {
    let (handle, service) = spawn_scenario_server(fast_net_config(), FaultPlan::none());
    let request = encoded_request(&shared_pipeline().1[0]);
    // One byte every ~50 ms: progress, but far too slow to finish a frame
    // inside read_timeout (250 ms). The guard measures from the frame's
    // *first* byte, so the trickle must still be cut off.
    let mut slow = TcpStream::connect(handle.addr()).unwrap();
    slow.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let started = Instant::now();
    let mut closed = false;
    for byte in request.iter().take(64) {
        if slow.write_all(std::slice::from_ref(byte)).is_err() {
            closed = true;
            break;
        }
        if let Ok(0) = slow.read(&mut [0u8; 64]) {
            closed = true;
            break;
        }
        if started.elapsed() > Duration::from_secs(5) {
            break;
        }
    }
    assert!(
        closed,
        "a one-byte-per-tick trickle must not defeat the guard"
    );
    assert!(handle.stats().hostile_closes >= 1);
    assert_still_serving_bit_identical(&handle, &service);
    handle.join();
}

#[test]
fn mid_request_disconnects_leave_no_stuck_state() {
    let (handle, service) = spawn_scenario_server(fast_net_config(), FaultPlan::none());
    let request = encoded_request(&shared_pipeline().1[1]);
    for cut in [4usize, 5, 40, request.len() / 2, request.len() - 1] {
        // Part of a frame, then vanish.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        stream.write_all(&request[..cut]).unwrap();
        drop(stream);
    }
    // A full request, then close before the reply: the server computes the
    // answer and its reply write hits a dead peer.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream.write_all(&request).unwrap();
    drop(stream);
    // Give the server a moment to process the orphaned request.
    std::thread::sleep(Duration::from_millis(300));
    assert_still_serving_bit_identical(&handle, &service);
    handle.join();
}

#[test]
fn deadline_storm_yields_typed_errors_and_no_stalls() {
    let (handle, service) = spawn_scenario_server(fast_net_config(), FaultPlan::none());
    let samples = &shared_pipeline().1;
    // Storm: many threads, every request carrying a 1 ms deadline and a
    // distinct (cache-missing) sample. Requests that expire in the queue
    // must come back as typed DeadlineExceeded errors — never hang, never
    // vanish silently.
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let addr = handle.addr().to_string();
            // Never sample 0 (the bit-identicality follow-up uses it, and a
            // tiny perturbation of it would collide in the solution cache),
            // and perturb hard enough that each thread's sample is its own
            // cache entry.
            let mut sample = samples[1 + (i % (samples.len() - 1))].clone();
            sample[0] += 1e-3 * (i as f64 + 1.0);
            std::thread::spawn(move || {
                let mut client = EnqClient::new(addr, no_retry());
                (0..4)
                    .map(|_| client.embed("t", "m", &sample, 1))
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut ok = 0u64;
    let mut deadline_exceeded = 0u64;
    for t in threads {
        for outcome in t.join().unwrap() {
            match outcome {
                Ok(_) => ok += 1,
                Err(ClientError::Server {
                    code: ErrorCode::DeadlineExceeded,
                    ..
                }) => deadline_exceeded += 1,
                Err(other) => panic!("storm produced an untyped failure: {other}"),
            }
        }
    }
    assert_eq!(ok + deadline_exceeded, 32, "every request must complete");
    // Every wire-visible DeadlineExceeded is one batcher-side expiry: the
    // work was dropped before compute, as a typed error, not silently.
    assert_eq!(deadline_exceeded, service.stats().deadline_expired);
    assert_still_serving_bit_identical(&handle, &service);
    handle.join();
}

// ---------------------------------------------------------------------------
// Injected server-side faults
// ---------------------------------------------------------------------------

#[test]
fn torn_reply_writes_are_survived_by_client_retry() {
    let faults = FaultPlan::none();
    let (handle, service) = spawn_scenario_server(fast_net_config(), faults.clone());
    let sample = &shared_pipeline().1[0];
    for kind in [
        WriteFault::Truncate,
        WriteFault::CloseConnection,
        WriteFault::IoError,
    ] {
        faults.arm_write_fault(0, kind);
        let mut client = EnqClient::new(handle.addr().to_string(), RetryPolicy::default());
        let reply = client
            .embed("t", "m", sample, 0)
            .unwrap_or_else(|e| panic!("{kind:?}: retry should recover: {e}"));
        assert!(reply.attempts > 1, "{kind:?} should have cost an attempt");
        let (ref_label, ref_parameters) = reference_embedding();
        assert_eq!(reply.label, *ref_label);
        for (a, b) in reply.parameters.iter().zip(ref_parameters) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert_eq!(faults.fired(), 3);
    assert_still_serving_bit_identical(&handle, &service);
    handle.join();
}

#[test]
fn slowed_reads_widen_races_but_break_nothing() {
    let faults = FaultPlan::none();
    faults.set_read_delay(Duration::from_millis(2));
    let (handle, service) = spawn_scenario_server(fast_net_config(), faults);
    let sample = &shared_pipeline().1[0];
    let mut client = EnqClient::new(handle.addr().to_string(), RetryPolicy::default());
    for _ in 0..5 {
        client.embed("t", "m", sample, 0).unwrap();
    }
    assert_still_serving_bit_identical(&handle, &service);
    handle.join();
}

// ---------------------------------------------------------------------------
// Admission control and load shedding over the wire
// ---------------------------------------------------------------------------

#[test]
fn rate_limited_tenants_get_typed_retry_hints_and_recover() {
    let (handle, service) = spawn_scenario_server(
        NetConfig {
            admission: AdmissionConfig {
                rate_per_sec: 2.0,
                burst: 2.0,
                max_tenants: 16,
            },
            ..fast_net_config()
        },
        FaultPlan::none(),
    );
    let sample = &shared_pipeline().1[0];
    // No retries: observe the raw typed rejection.
    let mut bare = EnqClient::new(handle.addr().to_string(), no_retry());
    bare.embed("greedy", "m", sample, 0).unwrap();
    bare.embed("greedy", "m", sample, 0).unwrap();
    match bare.embed("greedy", "m", sample, 0) {
        Err(ClientError::RetriesExhausted {
            last_code: Some(ErrorCode::RateLimited),
            ..
        }) => {}
        other => panic!("expected a RateLimited rejection, got {other:?}"),
    }
    // A different tenant has its own bucket and is unaffected.
    bare.embed("patient", "m", sample, 0).unwrap();
    // A retrying client honours the server's hint and gets through once a
    // token accrues.
    let mut retrying = EnqClient::new(handle.addr().to_string(), RetryPolicy::default());
    let reply = retrying.embed("greedy", "m", sample, 0).unwrap();
    assert!(
        reply.attempts >= 2,
        "the bucket was empty; a retry was needed"
    );
    assert!(handle.stats().rate_limited >= 2);
    assert_still_serving_bit_identical(&handle, &service);
    handle.join();
}

#[test]
fn queue_overload_sheds_with_typed_retry_after() {
    // Serialize the batcher (batch size 1) so cold requests queue behind
    // one another; with max_pending = 1 the front door must shed most of a
    // synchronized burst.
    let (handle, service) = spawn_scenario_server_with(
        ServeConfig {
            max_batch_size: 1,
            ..ServeConfig::default()
        },
        NetConfig {
            max_pending: 1,
            ..fast_net_config()
        },
        FaultPlan::none(),
    );
    let samples = &shared_pipeline().1;
    let barrier = Arc::new(Barrier::new(12));
    let threads: Vec<_> = (0..12)
        .map(|i| {
            let addr = handle.addr().to_string();
            let barrier = Arc::clone(&barrier);
            // Distinct cold samples, none colliding with the follow-up's
            // sample 0 in the solution cache.
            let mut sample = samples[1 + (i % (samples.len() - 1))].clone();
            sample[1] += 1e-3 * (i as f64 + 1.0);
            std::thread::spawn(move || {
                let mut client = EnqClient::new(addr, no_retry());
                // Establish the connection first so the burst below hits
                // live frame loops simultaneously.
                client.ping().unwrap();
                barrier.wait();
                client.embed("t", "m", &sample, 0)
            })
        })
        .collect();
    let mut served = 0u64;
    let mut shed = 0u64;
    for t in threads {
        match t.join().unwrap() {
            Ok(_) => served += 1,
            Err(ClientError::RetriesExhausted {
                last_code: Some(ErrorCode::RetryAfter),
                ..
            }) => shed += 1,
            Err(other) => panic!("overload produced an untyped failure: {other}"),
        }
    }
    assert_eq!(served + shed, 12, "every request must get a typed answer");
    assert!(served >= 1, "some of the burst must be admitted");
    assert!(shed >= 1, "a 12-deep burst against max_pending=1 must shed");
    assert_eq!(shed, handle.stats().shed);
    assert_still_serving_bit_identical(&handle, &service);
    // The burst must not have inflated the pools: shed requests never reach
    // the service, so at most the admitted requests plus the follow-up ever
    // checked out a buffer, and none of them may still be held.
    let pools = service.pool_stats();
    assert!(
        pools.samples.created <= 13,
        "a 12-client burst must not create more than 13 sample buffers (got {})",
        pools.samples.created
    );
    assert!(
        pools.slots.created <= 13,
        "a 12-client burst must not create more than 13 reply slots (got {})",
        pools.slots.created
    );
    handle.join();
}

/// Requests that fail validation — NaN-poisoned features, wrong-dimension
/// samples — must come back as typed errors over the wire *and* hand their
/// pooled buffers back: the error path runs the same return discipline as
/// the success path.
#[test]
fn failed_requests_return_typed_errors_and_their_pooled_buffers() {
    let (handle, service) = spawn_scenario_server(fast_net_config(), FaultPlan::none());
    let samples = &shared_pipeline().1;
    let mut client = EnqClient::new(handle.addr().to_string(), no_retry());
    for round in 0..4 {
        let mut poisoned = samples[1].clone();
        let pos = round % poisoned.len();
        poisoned[pos] = f64::NAN;
        match client.embed("t", "m", &poisoned, 0) {
            Err(ClientError::Server {
                code: ErrorCode::InvalidFeatures,
                ..
            }) => {}
            other => panic!("poisoned sample must be typed InvalidFeatures, got {other:?}"),
        }
        match client.embed("t", "m", &samples[1][..3], 0) {
            Err(ClientError::Server {
                code: ErrorCode::EmbedFailed,
                ..
            }) => {}
            other => panic!("truncated sample must be typed EmbedFailed, got {other:?}"),
        }
    }
    assert_eq!(service.stats().errors, 8);
    assert_pools_quiesced(service.as_ref());
    assert_still_serving_bit_identical(&handle, &service);
    handle.join();
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

#[test]
fn graceful_drain_completes_in_flight_requests() {
    let (handle, service) = spawn_scenario_server(fast_net_config(), FaultPlan::none());
    let samples = &shared_pipeline().1;
    // In-flight work: cold samples spend real time in the batcher while
    // the drain lands.
    let in_flight: Vec<_> = (0..4)
        .map(|i| {
            let addr = handle.addr().to_string();
            let mut sample = samples[i % samples.len()].clone();
            sample[2] += 1e-6 * (i as f64 + 1.0);
            std::thread::spawn(move || {
                let mut client = EnqClient::new(addr, no_retry());
                client.embed("t", "m", &sample, 0)
            })
        })
        .collect();
    // Let them hit the server, then drain while they are in flight.
    std::thread::sleep(Duration::from_millis(20));
    handle.drain();
    for t in in_flight {
        match t.join().unwrap() {
            // Admitted before the drain: must be a real answer.
            Ok(reply) => assert!(!reply.parameters.is_empty()),
            // Raced the drain at the front door: typed and retryable.
            Err(ClientError::RetriesExhausted {
                last_code: Some(ErrorCode::Draining),
                ..
            }) => {}
            // The drain closed the connection before a reply could be read
            // (or refused the connection outright): the transport reports
            // it; the service never dropped admitted work silently.
            Err(ClientError::Io(_)) => {}
            Err(other) => panic!("drain produced an unexpected failure: {other}"),
        }
    }
    let stats = handle.join();
    assert_eq!(service.queue_depth(), 0, "drain must leave the queue empty");
    assert!(stats.connections_accepted >= 1);
}

#[test]
fn drain_control_frame_acks_and_winds_down() {
    let (handle, _service) = spawn_scenario_server(fast_net_config(), FaultPlan::none());
    let mut client = EnqClient::new(handle.addr().to_string(), RetryPolicy::default());
    client.ping().unwrap();
    client.drain().unwrap();
    assert!(handle.is_draining());
    let deadline = Instant::now() + Duration::from_secs(10);
    while !handle.is_finished() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(handle.is_finished(), "drain must wind the server down");
    handle.join();
}

//! End-to-end integration test: synthetic dataset → PCA features → per-class
//! EnQode models → online embedding, exercising every crate of the workspace
//! through the public API.

use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind};

fn test_config(num_qubits: usize) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.9,
        max_clusters: 6,
        offline_max_iterations: 120,
        offline_restarts: 2,
        online_max_iterations: 30,
        // With only 2 restarts one CIFAR cluster lands in a bad basin;
        // the rescue wave recovers it deterministically.
        offline_rescue: true,
        seed: 5,
    }
}

#[test]
fn full_pipeline_trains_and_embeds_every_dataset_kind() {
    for kind in DatasetKind::all() {
        let dataset = generate_synthetic(
            kind,
            &SyntheticConfig {
                classes: 2,
                samples_per_class: 10,
                seed: 13,
            },
        )
        .expect("synthetic generation succeeds");
        let pipeline =
            EnqodePipeline::build(&dataset, test_config(4)).expect("pipeline training succeeds");

        assert_eq!(
            pipeline.class_models().len(),
            2,
            "{kind}: one model per class"
        );
        assert!(pipeline.total_clusters() >= 2);

        // Every trained cluster reaches a reasonable fidelity for its mean.
        for class_model in pipeline.class_models() {
            for cluster in class_model.model.clusters() {
                assert!(
                    cluster.fidelity > 0.7,
                    "{kind}: cluster fidelity {} too low",
                    cluster.fidelity
                );
            }
        }

        // Embedding a training sample stays close to its own state.
        let label = dataset.labels()[0];
        let embedding = pipeline
            .embed_with_class(dataset.sample(0), label)
            .expect("embedding succeeds");
        assert!(
            embedding.ideal_fidelity > 0.75,
            "{kind}: sample fidelity {}",
            embedding.ideal_fidelity
        );
        assert_eq!(embedding.circuit.num_qubits(), 4);
        assert!(!embedding.circuit.is_parameterized());
    }
}

#[test]
fn embeddings_share_a_fixed_circuit_shape() {
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 8,
            seed: 3,
        },
    )
    .expect("synthetic generation succeeds");
    let pipeline = EnqodePipeline::build(&dataset, test_config(4)).expect("training succeeds");

    let mut shapes = Vec::new();
    for i in 0..4 {
        let label = dataset.labels()[i];
        let embedding = pipeline
            .embed_with_class(dataset.sample(i), label)
            .expect("embedding succeeds");
        shapes.push((embedding.circuit.len(), embedding.circuit.depth()));
    }
    assert!(
        shapes.windows(2).all(|w| w[0] == w[1]),
        "all EnQode circuits must have identical shape, got {shapes:?}"
    );
}

#[test]
fn label_free_inference_matches_nearest_class() {
    let dataset = generate_synthetic(
        DatasetKind::FashionMnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 10,
            seed: 29,
        },
    )
    .expect("synthetic generation succeeds");
    let pipeline = EnqodePipeline::build(&dataset, test_config(4)).expect("training succeeds");

    // For a strong majority of training samples, label-free inference should
    // route the sample to its own class (the synthetic classes are well
    // separated).
    let mut correct = 0usize;
    let total = dataset.len();
    for i in 0..total {
        let (label, _) = pipeline
            .embed(dataset.sample(i))
            .expect("embedding succeeds");
        if label == dataset.labels()[i] {
            correct += 1;
        }
    }
    assert!(
        correct * 2 > total,
        "nearest-cluster routing matched only {correct}/{total} samples"
    );
}

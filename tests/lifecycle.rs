//! Online model lifecycle battery: multi-source equivalence, concurrency
//! under background rebuilds, cancellation/failure hygiene, and traffic-fed
//! refresh determinism.
//!
//! * `ChainedSource`/`ShardedSource` over K shards chunk **bit-identically**
//!   to one concatenated (resp. interleaved) in-memory source, across shard
//!   counts, chunk sizes, and shard-boundary-straddling chunks (proptest);
//! * hammering `EmbedService` from several threads while a background
//!   rebuild swaps the model never yields a torn response: every answer is
//!   exactly the old generation's solution or the new one's, and post-swap
//!   answers are exactly the new one's (old-generation cache entries are
//!   unreachable);
//! * cancelling a rebuild mid-stage, or injecting a failing source, leaves
//!   the registry serving the old generation, leaks no spill temp files, and
//!   a subsequent rebuild succeeds;
//! * a traffic-fed refresh replayed from the same accumulator shards
//!   reproduces bit-identical centroids and ansatz parameters across worker
//!   thread counts and ingest modes.

use enq_data::{
    generate_synthetic, ChainedSource, DataError, Dataset, DatasetKind, InMemorySource, IngestMode,
    SampleChunk, SampleSource, ShardedSource, SyntheticConfig, SyntheticSource,
};
use enq_serve::{EmbedService, RebuildSpec, RebuildStatus, ServeConfig, ServeError, TrafficConfig};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind, StreamingFitConfig};
use proptest::prelude::*;
use std::num::NonZeroUsize;
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

fn tiny_config(seed: u64) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 2,
        offline_max_iterations: 40,
        offline_restarts: 1,
        online_max_iterations: 15,
        offline_rescue: false,
        seed,
    }
}

fn tiny_stream() -> StreamingFitConfig {
    StreamingFitConfig {
        chunk_size: 5,
        clusters_per_class: 1,
        passes: 1,
        polish_passes: 1,
        ..Default::default()
    }
}

fn mnist_like(classes: usize, per_class: usize, seed: u64) -> Dataset {
    generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes,
            samples_per_class: per_class,
            seed,
        },
    )
    .unwrap()
}

fn built_pipeline(seed: u64) -> (Arc<EnqodePipeline>, Dataset) {
    let dataset = mnist_like(2, 6, seed);
    (
        Arc::new(EnqodePipeline::build(&dataset, tiny_config(seed)).unwrap()),
        dataset,
    )
}

/// Temp files matching the stream driver's feature-spill prefix for this
/// process.
fn spill_files() -> Vec<std::path::PathBuf> {
    let prefix = format!("enq_stream_spill_{}_", std::process::id());
    std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(Result::ok)
        .filter(|e| e.file_name().to_string_lossy().starts_with(&prefix))
        .map(|e| e.path())
        .collect()
}

// ---------------------------------------------------------------------------
// Multi-source combinator equivalence (proptest)
// ---------------------------------------------------------------------------

/// Distinctly-valued shard datasets: shard `s`, sample `i` is unmistakable.
fn shard_datasets(sizes: &[usize]) -> Vec<Dataset> {
    sizes
        .iter()
        .enumerate()
        .map(|(s, &n)| {
            Dataset::new(
                format!("shard{s}"),
                (0..n)
                    .map(|i| vec![(s * 1000 + i) as f64, -(i as f64) * 0.5, s as f64])
                    .collect(),
                (0..n).map(|i| (s + i) % 3).collect(),
            )
            .unwrap()
        })
        .collect()
}

fn boxed_sources(datasets: &[Dataset]) -> Vec<Box<dyn SampleSource + '_>> {
    datasets
        .iter()
        .map(|d| Box::new(InMemorySource::new(d)) as Box<dyn SampleSource + '_>)
        .collect()
}

/// The chunk trace of one full pass: per-chunk lengths plus the flat
/// (bit-exact) sample and label sequences.
fn chunk_trace(
    source: &mut dyn SampleSource,
    chunk_size: usize,
) -> (Vec<usize>, Vec<Vec<u64>>, Vec<usize>) {
    source.reset().unwrap();
    let mut lens = Vec::new();
    let mut samples: Vec<Vec<u64>> = Vec::new();
    let mut labels = Vec::new();
    let mut chunk = SampleChunk::new();
    loop {
        let n = source.next_chunk(chunk_size, &mut chunk).unwrap();
        if n == 0 {
            break;
        }
        lens.push(n);
        for s in chunk.samples() {
            samples.push(s.iter().map(|v| v.to_bits()).collect());
        }
        labels.extend_from_slice(chunk.labels());
    }
    (lens, samples, labels)
}

/// Reference interleaving: `block`-sample runs round-robin, dry shards drop
/// out.
fn interleave_reference(datasets: &[Dataset], block: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
    let mut cursors = vec![0usize; datasets.len()];
    let mut samples = Vec::new();
    let mut labels = Vec::new();
    let mut current = 0usize;
    loop {
        if cursors.iter().zip(datasets).all(|(&c, d)| c >= d.len()) {
            break;
        }
        let d = &datasets[current];
        let take = block.min(d.len().saturating_sub(cursors[current]));
        for i in cursors[current]..cursors[current] + take {
            samples.push(d.sample(i).to_vec());
            labels.push(d.labels()[i]);
        }
        cursors[current] += take;
        current = (current + 1) % datasets.len();
    }
    (samples, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn chained_source_is_chunk_bit_identical_to_concatenation(
        sizes in proptest::collection::vec(1usize..9, 1..5),
        chunk_size in 1usize..12,
    ) {
        let datasets = shard_datasets(&sizes);
        // Reference: one in-memory source over the concatenated samples.
        let concat = Dataset::new(
            "concat",
            datasets.iter().flat_map(|d| d.samples().to_vec()).collect(),
            datasets.iter().flat_map(|d| d.labels().to_vec()).collect(),
        ).unwrap();
        let reference = chunk_trace(&mut InMemorySource::new(&concat), chunk_size);
        let mut chained = ChainedSource::new(boxed_sources(&datasets)).unwrap();
        let got = chunk_trace(&mut chained, chunk_size);
        prop_assert_eq!(&got.0, &reference.0);
        prop_assert_eq!(&got.1, &reference.1);
        prop_assert_eq!(&got.2, &reference.2);
        // A second pass after reset is identical (rewind contract).
        let again = chunk_trace(&mut chained, chunk_size);
        prop_assert_eq!(&again.1, &reference.1);
        prop_assert_eq!(chained.len_hint(), Some(concat.len()));
    }

    #[test]
    fn sharded_source_is_chunk_bit_identical_to_interleaved_concatenation(
        sizes in proptest::collection::vec(1usize..9, 1..5),
        chunk_size in 1usize..12,
        block in 1usize..4,
    ) {
        let datasets = shard_datasets(&sizes);
        let (samples, labels) = interleave_reference(&datasets, block);
        let interleaved = Dataset::new("interleaved", samples, labels).unwrap();
        let reference = chunk_trace(&mut InMemorySource::new(&interleaved), chunk_size);
        let mut sharded = ShardedSource::new(boxed_sources(&datasets), block).unwrap();
        let got = chunk_trace(&mut sharded, chunk_size);
        prop_assert_eq!(&got.0, &reference.0);
        prop_assert_eq!(&got.1, &reference.1);
        prop_assert_eq!(&got.2, &reference.2);
        let again = chunk_trace(&mut sharded, chunk_size);
        prop_assert_eq!(&again.1, &reference.1);
    }
}

// ---------------------------------------------------------------------------
// Concurrency: hammer the service while a background rebuild swaps the model
// ---------------------------------------------------------------------------

/// A synthetic source that sleeps per chunk so a rebuild stays in flight
/// long enough for the hammer threads to overlap it.
struct SlowSource {
    inner: SyntheticSource,
    delay: Duration,
}

impl SampleSource for SlowSource {
    fn feature_dim(&self) -> usize {
        self.inner.feature_dim()
    }
    fn reset(&mut self) -> Result<(), DataError> {
        self.inner.reset()
    }
    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        std::thread::sleep(self.delay);
        self.inner.next_chunk(max_samples, chunk)
    }
}

fn synthetic_source(seed: u64, per_class: usize) -> SyntheticSource {
    SyntheticSource::new(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: per_class,
            seed,
        },
    )
    .unwrap()
}

#[test]
fn concurrent_embeds_see_exactly_one_generation_per_response() {
    let (v1, dataset) = built_pipeline(1);
    let service = Arc::new(EmbedService::new(ServeConfig {
        flush_deadline: Duration::ZERO,
        ..Default::default()
    }));
    service.register_model("live", Arc::clone(&v1));
    let samples: Vec<Vec<f64>> = (0..6).map(|i| dataset.sample(i).to_vec()).collect();
    let v1_refs: Vec<(usize, Vec<f64>)> = samples
        .iter()
        .map(|s| {
            let (label, e) = v1.embed(s).unwrap();
            (label, e.parameters)
        })
        .collect();

    // Kick off the background rebuild (fresh fit from a slow raw source so
    // it stays in flight while the hammer runs).
    let ticket = service
        .rebuild_controller()
        .start(
            "live",
            SlowSource {
                inner: synthetic_source(2, 20),
                delay: Duration::from_millis(2),
            },
            RebuildSpec::new(tiny_config(2), tiny_stream()),
        )
        .unwrap();

    // Hammer from several threads until the swap lands, then one more round
    // so every thread provably embeds against the new generation too.
    let observations: Vec<(usize, usize, Vec<f64>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..4 {
            let service = Arc::clone(&service);
            let samples = &samples;
            let ticket = ticket.clone();
            handles.push(scope.spawn(move || {
                let mut seen = Vec::new();
                let mut extra_rounds = 0;
                while extra_rounds < 2 {
                    if ticket.is_finished() {
                        extra_rounds += 1;
                    }
                    for (i, sample) in samples.iter().enumerate() {
                        // Alternate paths so both the batcher and the
                        // direct path run during the swap.
                        let response = if (t + i) % 2 == 0 {
                            service.embed("live", sample)
                        } else {
                            service.embed_direct("live", sample)
                        }
                        .expect("the service must stay available throughout");
                        seen.push((i, response.label(), response.embedding().parameters.clone()));
                    }
                }
                seen
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("hammer thread"))
            .collect()
    });

    assert_eq!(ticket.wait(), RebuildStatus::Succeeded);
    let v2 = service.registry().get("live").unwrap();
    assert!(!Arc::ptr_eq(&v1, &v2), "the rebuild swapped a new pipeline");
    let v2_refs: Vec<(usize, Vec<f64>)> = samples
        .iter()
        .map(|s| {
            let (label, e) = v2.embed(s).unwrap();
            (label, e.parameters)
        })
        .collect();

    // Every response matches exactly one generation, bit for bit — no torn
    // reads, no solution computed by one model and labelled by another.
    let mut from_v1 = 0usize;
    let mut from_v2 = 0usize;
    for (i, label, parameters) in &observations {
        let v1_match = v1_refs[*i] == (*label, parameters.clone());
        let v2_match = v2_refs[*i] == (*label, parameters.clone());
        assert!(
            v1_match ^ v2_match || (v1_match && v2_match),
            "sample {i}: response matches neither generation exactly"
        );
        if v1_match {
            from_v1 += 1;
        } else {
            from_v2 += 1;
        }
    }
    assert!(from_v1 > 0, "some responses predate the swap");
    assert!(from_v2 > 0, "some responses postdate the swap");

    // Post-swap, the old generation is unreachable: cached v1 solutions are
    // keyed under the old generation, so every fresh embed is exactly v2.
    for (i, sample) in samples.iter().enumerate() {
        let response = service.embed("live", sample).unwrap();
        assert_eq!(
            (response.label(), response.embedding().parameters.clone()),
            v2_refs[i],
            "post-swap responses must come from the new generation"
        );
    }
}

// ---------------------------------------------------------------------------
// Cancellation and failure hygiene
// ---------------------------------------------------------------------------

/// Calls a hook with the running chunk-read count before every read.
struct HookSource<F: FnMut(usize) -> Result<(), DataError> + Send> {
    inner: SyntheticSource,
    reads: usize,
    hook: F,
}

impl<F: FnMut(usize) -> Result<(), DataError> + Send> SampleSource for HookSource<F> {
    fn feature_dim(&self) -> usize {
        self.inner.feature_dim()
    }
    fn reset(&mut self) -> Result<(), DataError> {
        self.inner.reset()
    }
    fn next_chunk(
        &mut self,
        max_samples: usize,
        chunk: &mut SampleChunk,
    ) -> Result<usize, DataError> {
        self.reads += 1;
        (self.hook)(self.reads)?;
        self.inner.next_chunk(max_samples, chunk)
    }
}

#[test]
fn cancel_and_failure_leave_the_registry_untouched_and_leak_nothing() {
    let (v1, _) = built_pipeline(3);
    let service = EmbedService::new(ServeConfig {
        flush_deadline: Duration::ZERO,
        ..Default::default()
    });
    service.register_model("live", Arc::clone(&v1));
    let (_, generation) = service.registry().get_with_generation("live").unwrap();
    let spills_before = spill_files().len();
    let controller = service.rebuild_controller();

    // --- Cancellation mid-stage -------------------------------------------
    // The source cancels its own ticket at the 4th chunk read, so the
    // cancellation deterministically lands mid-features-pass.
    let ticket_cell: Arc<Mutex<Option<enq_serve::RebuildTicket>>> = Arc::new(Mutex::new(None));
    let cell = Arc::clone(&ticket_cell);
    let cancelling = HookSource {
        inner: synthetic_source(4, 20),
        reads: 0,
        hook: move |reads| {
            if reads == 4 {
                loop {
                    if let Some(ticket) = cell.lock().unwrap().as_ref() {
                        ticket.cancel();
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
            Ok(())
        },
    };
    let ticket = controller
        .start(
            "live",
            cancelling,
            RebuildSpec::new(tiny_config(4), tiny_stream()),
        )
        .unwrap();
    *ticket_cell.lock().unwrap() = Some(ticket.clone());
    assert_eq!(ticket.wait(), RebuildStatus::Cancelled);
    let (after_cancel, generation_after_cancel) =
        service.registry().get_with_generation("live").unwrap();
    assert!(Arc::ptr_eq(&v1, &after_cancel), "registry untouched");
    assert_eq!(generation, generation_after_cancel);
    assert_eq!(spill_files().len(), spills_before, "no spill file leaked");
    // The cancelled fit completed no stage.
    assert!(ticket.progress().is_empty());

    // --- Injected source failure ------------------------------------------
    // Pass 1 over 40 samples at chunk 5 is 9 reads (8 full + the empty
    // terminal read); failing at read 12 lands mid-spill-pass, after the
    // spill temp file was created — its cleanup is exactly what we pin.
    let failing = HookSource {
        inner: synthetic_source(4, 20),
        reads: 0,
        hook: |reads| {
            if reads == 12 {
                Err(DataError::Io("injected shard failure".to_string()))
            } else {
                Ok(())
            }
        },
    };
    let ticket = controller
        .start(
            "live",
            failing,
            RebuildSpec::new(tiny_config(4), tiny_stream()),
        )
        .unwrap();
    let status = ticket.wait();
    match &status {
        RebuildStatus::Failed(message) => {
            assert!(message.contains("injected shard failure"), "{message}")
        }
        other => panic!("expected a failure, got {other:?}"),
    }
    let (after_failure, generation_after_failure) =
        service.registry().get_with_generation("live").unwrap();
    assert!(Arc::ptr_eq(&v1, &after_failure), "registry untouched");
    assert_eq!(generation, generation_after_failure);
    assert_eq!(spill_files().len(), spills_before, "no spill file leaked");

    // --- And the id is not poisoned: a clean rebuild now succeeds ---------
    let ticket = controller
        .start(
            "live",
            synthetic_source(4, 8),
            RebuildSpec::new(tiny_config(4), tiny_stream()),
        )
        .unwrap();
    assert_eq!(ticket.wait(), RebuildStatus::Succeeded);
    let (rebuilt, generation_after_success) =
        service.registry().get_with_generation("live").unwrap();
    assert!(!Arc::ptr_eq(&v1, &rebuilt));
    assert!(generation_after_success > generation);
    assert_eq!(
        spill_files().len(),
        spills_before,
        "spill removed on success"
    );
    let stages: Vec<&str> = ticket.progress().iter().map(|s| s.stage).collect();
    assert_eq!(stages, vec!["features", "clustering", "training"]);
}

// ---------------------------------------------------------------------------
// Traffic-fed refresh determinism
// ---------------------------------------------------------------------------

#[test]
fn traffic_replay_is_bit_identical_across_thread_counts_and_ingest_modes() {
    let (v1, dataset) = built_pipeline(9);
    let service = EmbedService::new(ServeConfig {
        flush_deadline: Duration::ZERO,
        traffic: TrafficConfig {
            enabled: true,
            buffer_samples: 8,
            ..Default::default()
        },
        ..Default::default()
    });
    service.register_model("live", Arc::clone(&v1));

    // A deterministic stream of 24 distinct samples: every request pays for
    // feature extraction and is recorded in arrival order.
    let mut served = 0u64;
    for round in 0..2 {
        for i in 0..dataset.len() {
            let mut sample = dataset.sample(i).to_vec();
            sample[0] += (round as f64 + 1.0) * 0.01 * (i as f64 + 1.0);
            service.embed("live", &sample).unwrap();
            served += 1;
        }
    }
    let stats = service.traffic().stats("live");
    assert_eq!(stats.recorded, served);
    let corpus = service.traffic().corpus("live").unwrap();
    assert_eq!(corpus.len(), served);
    assert!(
        corpus.num_shards() >= 2,
        "budget of 8 forces multiple shards"
    );
    assert_eq!(corpus.feature_dim(), 8);

    // Replay the same shards through the driver under different worker
    // thread counts and ingest modes; the refreshed models must agree bit
    // for bit (fixed-shard reductions + chunk-size-invariant sources).
    let refresh = |threads: usize, ingest: IngestMode, id: &str| -> Arc<EnqodePipeline> {
        let source = corpus.chronological_source().unwrap();
        let spec = RebuildSpec {
            config: tiny_config(77),
            stream: StreamingFitConfig {
                chunk_size: 6,
                clusters_per_class: 2,
                passes: 2,
                polish_passes: 2,
                ingest,
                spill_features: false,
                ..Default::default()
            },
            features: Some(v1.features().clone()),
            threads: Some(NonZeroUsize::new(threads).unwrap()),
        };
        let ticket = service
            .rebuild_controller()
            .start(id, source, spec)
            .unwrap();
        assert_eq!(ticket.wait(), RebuildStatus::Succeeded);
        service.registry().get(id).unwrap()
    };
    let reference = refresh(1, IngestMode::Synchronous, "refresh-a");
    for (threads, ingest, id) in [
        (3, IngestMode::Synchronous, "refresh-b"),
        (2, IngestMode::Prefetched, "refresh-c"),
    ] {
        let other = refresh(threads, ingest, id);
        assert_eq!(reference.class_models().len(), other.class_models().len());
        for (a, b) in reference.class_models().iter().zip(other.class_models()) {
            assert_eq!(a.label, b.label);
            for (ka, kb) in a.model.clusters().iter().zip(b.model.clusters()) {
                assert_eq!(
                    ka.centroid, kb.centroid,
                    "{id}: centroids drifted across thread counts"
                );
                assert_eq!(
                    ka.parameters, kb.parameters,
                    "{id}: ansatz parameters drifted across thread counts"
                );
            }
        }
        // The adopted PCA basis is byte-for-byte the serving model's.
        let probe = dataset.sample(0);
        assert_eq!(
            v1.extract_features(probe).unwrap(),
            other.extract_features(probe).unwrap()
        );
    }

    // Clearing the accumulator removes the shard files once the corpus (the
    // last reference) drops.
    let paths = corpus.shard_paths();
    assert!(paths.iter().all(|p| p.exists()));
    service.traffic().clear("live");
    drop(corpus);
    assert!(paths.iter().all(|p| !p.exists()), "shard files leaked");
}

// ---------------------------------------------------------------------------
// Guard-rail: refreshing without traffic is a clean error
// ---------------------------------------------------------------------------

#[test]
fn refresh_without_recorded_traffic_is_rejected() {
    let (v1, _) = built_pipeline(5);
    let service = EmbedService::new(ServeConfig::default()); // traffic disabled
    service.register_model("live", v1);
    assert!(matches!(
        service.refresh_from_traffic("live", tiny_config(5), tiny_stream()),
        Err(ServeError::NoTraffic(_))
    ));
}

//! Hours-compressed drift soak: the autopilot must notice a traffic
//! distribution shift and recover the model **unaided** — no test code
//! calls a refresh; the only actor is the [`Autopilot`] scheduler thread.
//!
//! Timeline (poll interval shrunk from the production half-second to a few
//! milliseconds, so "hours" of drift compress into seconds):
//!
//! 1. **Baseline** — traffic drawn from the training distribution. The
//!    spot-audit stays above the fidelity floor and the autopilot must not
//!    fire once.
//! 2. **Drift** — traffic switches to three unseen prototypes. The audited
//!    fidelity collapses below the floor, the trigger arms through its
//!    hysteresis window, and a traffic-fed refresh fires and swaps.
//! 3. **Recovery** — post-swap, the same drifted traffic audits back above
//!    the floor, and the serve-side p99 during the drift/rebuild phase
//!    stayed within the rebuild gate relative to baseline.
//!
//! Along the way the shard ring grows past the compaction bound, so the
//! background compactor must have merged it at least once.
//!
//! `ENQ_SOAK_TINY=1` shrinks the traffic volumes for CI smoke runs; the
//! assertions are identical.

use enq_serve::{
    Autopilot, AutopilotEvent, EmbedService, FireReason, RebuildStatus, RefreshPolicy, ServeConfig,
    TrafficConfig,
};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind, StreamingFitConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fidelity floor the autopilot defends. Baseline traffic audits well
/// above it (the offline fit targets 0.8 per cluster); drifted traffic
/// audits far below it (near-orthogonal to every trained centroid).
const FIDELITY_FLOOR: f64 = 0.55;

/// Scale factor: 1 for CI smoke (`ENQ_SOAK_TINY=1`), 4 for the full soak.
fn scale() -> usize {
    if std::env::var("ENQ_SOAK_TINY").is_ok_and(|v| v == "1") {
        1
    } else {
        4
    }
}

fn soak_config(seed: u64) -> EnqodeConfig {
    EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 4,
        offline_max_iterations: 40,
        offline_restarts: 1,
        online_max_iterations: 15,
        offline_rescue: false,
        seed,
    }
}

/// In-distribution traffic: a training sample plus per-request noise small
/// enough to stay inside its cluster but large enough that every request
/// is distinct (so it misses the cache and is recorded).
fn baseline_sample(dataset: &enq_data::Dataset, rng: &mut StdRng) -> Vec<f64> {
    let i = rng.gen_range(0..dataset.len());
    dataset
        .sample(i)
        .iter()
        .map(|v| v + rng.gen_range(-1e-3..1e-3))
        .collect()
}

/// Drifted traffic: tight clusters around raw-space prototypes the model
/// never saw. Clustered (so a refresh *can* recover) but far from every
/// trained centroid (so the audit *must* collapse first).
fn drift_sample(prototypes: &[Vec<f64>], rng: &mut StdRng) -> Vec<f64> {
    let p = &prototypes[rng.gen_range(0..prototypes.len())];
    p.iter().map(|v| v + rng.gen_range(-0.02..0.02)).collect()
}

fn percentile(latencies: &mut [Duration], p: f64) -> Duration {
    assert!(!latencies.is_empty());
    latencies.sort_unstable();
    let idx = ((latencies.len() as f64 * p).ceil() as usize).clamp(1, latencies.len()) - 1;
    latencies[idx]
}

#[test]
fn autopilot_recovers_from_traffic_drift_unaided() {
    let scale = scale();
    let dataset = enq_data::generate_synthetic(
        enq_data::DatasetKind::MnistLike,
        &enq_data::SyntheticConfig {
            classes: 2,
            samples_per_class: 8,
            seed: 11,
        },
    )
    .unwrap();
    let pipeline = Arc::new(EnqodePipeline::build(&dataset, soak_config(11)).unwrap());

    let service = Arc::new(EmbedService::new(ServeConfig {
        flush_deadline: Duration::ZERO,
        traffic: TrafficConfig {
            enabled: true,
            buffer_samples: 32,
            audit_window: 64,
            ..Default::default()
        },
        ..Default::default()
    }));
    service.register_model("live", Arc::clone(&pipeline));

    let policy = RefreshPolicy {
        min_requests: 48,
        min_fidelity: FIDELITY_FLOOR,
        hit_rate_drop: 0.0, // fidelity is the signal under test
        audit_samples: 64,
        hysteresis_polls: 2,
        cooldown_polls: 5,
        jitter_polls: 2,
        seed: 0x50AC,
        poll_interval: Duration::from_millis(4),
        compact_above_shards: 3,
        stream: StreamingFitConfig {
            chunk_size: 16,
            // Enough clusters that a refresh can dedicate centroids to the
            // drifted prototypes while still covering baseline traffic.
            clusters_per_class: 8,
            passes: 2,
            polish_passes: 1,
            ..Default::default()
        },
        contention_fit_threads: NonZeroUsize::MIN,
        ..RefreshPolicy::default()
    };
    let autopilot = Autopilot::spawn(Arc::clone(&service), policy);
    let mut rng = StdRng::seed_from_u64(0xD21F7);

    // --- Phase 1: baseline ------------------------------------------------
    let mut baseline_latencies = Vec::new();
    for _ in 0..150 * scale {
        let sample = baseline_sample(&dataset, &mut rng);
        let start = Instant::now();
        service.embed("live", &sample).unwrap();
        baseline_latencies.push(start.elapsed());
    }
    // Give the scheduler a handful of polls over the healthy window.
    std::thread::sleep(Duration::from_millis(60));
    let healthy = service
        .spot_audit("live", 64)
        .expect("audit ring populated");
    assert!(
        healthy.mean_fidelity > FIDELITY_FLOOR,
        "baseline traffic audits at {:.3}, already below the floor",
        healthy.mean_fidelity
    );
    assert_eq!(
        autopilot.stats().fires,
        0,
        "autopilot fired on healthy in-distribution traffic"
    );

    // --- Phase 2: drift ----------------------------------------------------
    let raw_dim = dataset.sample(0).len();
    // Large amplitudes so the prototypes' own structure (not the PCA
    // centering offset) dominates the projected direction.
    let prototypes: Vec<Vec<f64>> = (0..3)
        .map(|_| (0..raw_dim).map(|_| rng.gen_range(-8.0..8.0)).collect())
        .collect();
    let mut drift_latencies = Vec::new();
    let soak_deadline = Instant::now() + Duration::from_secs(120);
    loop {
        for _ in 0..40 * scale {
            let sample = drift_sample(&prototypes, &mut rng);
            let start = Instant::now();
            service.embed("live", &sample).unwrap();
            drift_latencies.push(start.elapsed());
        }
        let stats = autopilot.stats();
        if stats.refresh_successes >= 1 {
            break;
        }
        assert!(
            Instant::now() < soak_deadline,
            "autopilot never completed a refresh under sustained drift: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // --- Phase 3: recovery --------------------------------------------------
    let swapped = service.registry().get("live").unwrap();
    assert!(
        !Arc::ptr_eq(&pipeline, &swapped),
        "the registry still serves the pre-drift pipeline"
    );
    // Refill the audit ring with post-swap drifted traffic and re-audit.
    for _ in 0..80 * scale {
        let sample = drift_sample(&prototypes, &mut rng);
        service.embed("live", &sample).unwrap();
    }
    let recovered = service
        .spot_audit("live", 64)
        .expect("audit ring populated");
    assert!(
        recovered.mean_fidelity >= FIDELITY_FLOOR,
        "fidelity did not recover after the autopilot refresh: {:.3} < {FIDELITY_FLOOR}",
        recovered.mean_fidelity
    );

    let stats = autopilot.stats();
    assert!(stats.polls > 0, "scheduler never polled");
    assert!(stats.fires >= 1, "no refresh fired");
    assert_eq!(
        stats.refresh_failures, 0,
        "a fired refresh failed: {stats:?}"
    );
    assert!(
        stats.compactions >= 1,
        "shard ring grew past the bound but was never compacted: {stats:?}"
    );
    assert!(
        service.traffic().stats("live").shards <= 1 + service.traffic().stats("live").recorded / 32,
        "compaction left an unbounded shard ring"
    );

    // The event stream tells the same story: a fidelity-decay fire (whose
    // observed audit really was below the floor — the test never has to
    // race the scheduler to witness the dip) followed by a successful swap.
    let events = autopilot.drain_events();
    assert!(
        events.iter().any(|e| matches!(
            e,
            AutopilotEvent::Fired {
                model_id,
                reason: FireReason::FidelityDecay { observed, .. },
                ..
            } if model_id == "live" && *observed < FIDELITY_FLOOR
        )),
        "no fidelity-decay fire event below the floor: {events:?}"
    );
    assert!(
        events.iter().any(|e| matches!(
            e,
            AutopilotEvent::RefreshFinished {
                model_id,
                status: RebuildStatus::Succeeded,
            } if model_id == "live"
        )),
        "no successful refresh event: {events:?}"
    );

    // Serve p99 during drift + background rebuild stays within the rebuild
    // gate (6x) relative to baseline, with an absolute floor so a fast
    // machine's microsecond baseline doesn't turn noise into failure.
    let p99_baseline = percentile(&mut baseline_latencies, 0.99);
    let p99_drift = percentile(&mut drift_latencies, 0.99);
    let gate = (p99_baseline * 6).max(Duration::from_millis(50));
    assert!(
        p99_drift <= gate,
        "serve p99 degraded beyond the rebuild gate during drift: \
         baseline {p99_baseline:?}, drift {p99_drift:?}, gate {gate:?}"
    );

    drop(autopilot); // joins the scheduler thread
}

//! Streaming-vs-exact equivalence suite: the out-of-core training path must
//! match the in-memory reference wherever the mathematics says it can.
//!
//! * incremental PCA reproduces `Pca::fit` (up to component sign) on
//!   single-chunk input and on multi-chunk data whose rank fits the sketch,
//! * mini-batch k-means is bit-identical across thread counts for a fixed
//!   seed and chunk size, and its inertia stays within tolerance of
//!   full-batch Lloyd on small datasets,
//! * every on-disk/streaming source materialises to exactly the dataset it
//!   was written from.

use enq_data::{
    kmeans, minibatch_kmeans_with_threads, BinarySource, CsvSource, Dataset, InMemorySource,
    IncrementalPca, KMeansConfig, MiniBatchKMeansConfig, Pca, SampleSource,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::num::NonZeroUsize;

/// Samples lying exactly in a `rank`-dimensional affine subspace, where both
/// the randomized full-batch PCA and the incremental PCA are exact.
fn exact_rank_samples(n: usize, dim: usize, rank: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let basis: Vec<Vec<f64>> = (0..rank)
        .map(|r| {
            (0..dim)
                .map(|i| ((i as f64 + 0.9) * (r as f64 * 1.1 + 0.6)).sin())
                .collect()
        })
        .collect();
    (0..n)
        .map(|_| {
            let weights: Vec<f64> = (0..rank)
                .map(|r| rng.gen_range(-2.0..2.0) * (rank - r) as f64)
                .collect();
            (0..dim)
                .map(|i| {
                    1.5 + weights
                        .iter()
                        .zip(basis.iter())
                        .map(|(w, b)| w * b[i])
                        .sum::<f64>()
                })
                .collect()
        })
        .collect()
}

/// Maximum |projection difference| between two PCA models over the samples,
/// allowing an independent sign flip per component.
fn max_projection_gap(a: &Pca, b: &Pca, samples: &[Vec<f64>]) -> f64 {
    assert_eq!(a.num_components(), b.num_components());
    let k = a.num_components();
    let signs: Vec<f64> = (0..k)
        .map(|c| {
            let d: f64 = a.components()[c]
                .iter()
                .zip(b.components()[c].iter())
                .map(|(x, y)| x * y)
                .sum();
            if d < 0.0 {
                -1.0
            } else {
                1.0
            }
        })
        .collect();
    let mut worst = 0.0f64;
    for s in samples {
        let pa = a.transform(s).unwrap();
        let pb = b.transform(s).unwrap();
        for c in 0..k {
            worst = worst.max((pa[c] - signs[c] * pb[c]).abs());
        }
    }
    worst
}

#[test]
fn incremental_pca_single_chunk_matches_exact_fit() {
    let samples = exact_rank_samples(56, 14, 4, 0xA11CE);
    let exact = Pca::fit(&samples, 4).unwrap();
    let mut ipca = IncrementalPca::new(14, 4).unwrap();
    ipca.partial_fit(&samples).unwrap();
    let streamed = ipca.finalize().unwrap();
    let gap = max_projection_gap(&exact, &streamed, &samples);
    assert!(gap < 1e-8, "single-chunk projection gap {gap:.3e}");
    for (a, b) in exact
        .explained_variance()
        .iter()
        .zip(streamed.explained_variance())
    {
        assert!(
            (a - b).abs() < 1e-8 * a.max(1.0),
            "variance drift: {a} vs {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_pca_matches_exact_fit_for_any_chunking(
        seed in 0u64..1000,
        chunk in 5usize..40,
    ) {
        let samples = exact_rank_samples(60, 11, 3, seed);
        let exact = Pca::fit(&samples, 3).unwrap();
        let mut ipca = IncrementalPca::new(11, 3).unwrap();
        for part in samples.chunks(chunk) {
            ipca.partial_fit(part).unwrap();
        }
        let streamed = ipca.finalize().unwrap();
        let gap = max_projection_gap(&exact, &streamed, &samples);
        prop_assert!(gap < 1e-8, "chunk {} gap {:.3e}", chunk, gap);
    }

    #[test]
    fn minibatch_kmeans_is_seeded_deterministic_across_thread_counts(
        seed in 0u64..1000,
        chunk in 8usize..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let samples: Vec<Vec<f64>> = (0..90)
            .map(|i| {
                let center = (i % 3) as f64 * 8.0;
                vec![
                    center + rng.gen_range(-0.5..0.5),
                    -center + rng.gen_range(-0.5..0.5),
                ]
            })
            .collect();
        let labels = vec![0usize; samples.len()];
        let data = Dataset::new("prop", samples, labels).unwrap();
        let config = MiniBatchKMeansConfig {
            k: 3,
            chunk_size: chunk,
            passes: 2,
            polish_passes: 2,
            seed,
            ..Default::default()
        };
        let fit = |threads: usize| {
            let mut source = InMemorySource::new(&data);
            minibatch_kmeans_with_threads(
                &mut source,
                &config,
                NonZeroUsize::new(threads).unwrap(),
            )
            .unwrap()
        };
        let reference = fit(1);
        for threads in [2usize, 4, 6] {
            let other = fit(threads);
            prop_assert_eq!(&reference, &other);
        }
    }

    #[test]
    fn minibatch_inertia_within_tolerance_of_lloyd(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xB10B);
        let centers = [[0.0, 0.0, 0.0], [12.0, 0.0, 4.0], [0.0, 12.0, -4.0]];
        let samples: Vec<Vec<f64>> = (0..120)
            .map(|i| {
                let c = &centers[i % 3];
                c.iter().map(|v| v + rng.gen_range(-0.8..0.8)).collect()
            })
            .collect();
        let data = Dataset::new("blobs", samples, vec![0; 120]).unwrap();
        let mut source = InMemorySource::new(&data);
        let streaming = minibatch_kmeans_with_threads(
            &mut source,
            &MiniBatchKMeansConfig {
                k: 3,
                chunk_size: 20,
                passes: 3,
                polish_passes: 4,
                seed,
                ..Default::default()
            },
            NonZeroUsize::new(2).unwrap(),
        )
        .unwrap();
        let full = kmeans(
            data.samples(),
            &KMeansConfig {
                k: 3,
                seed,
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert!(
            streaming.inertia() <= full.inertia() * 1.05 + 1e-9,
            "streaming {} vs Lloyd {}",
            streaming.inertia(),
            full.inertia()
        );
    }
}

#[test]
fn disk_sources_round_trip_through_every_format() {
    let samples = exact_rank_samples(25, 6, 3, 7);
    let labels: Vec<usize> = (0..25).map(|i| i % 4).collect();
    let data = Dataset::new("roundtrip", samples, labels).unwrap();

    let dir = std::env::temp_dir();
    let bin_path = dir.join(format!("enq_equiv_{}.enqb", std::process::id()));
    let csv_path = dir.join(format!("enq_equiv_{}.csv", std::process::id()));

    enq_data::write_binary_dataset(&bin_path, data.samples(), Some(data.labels())).unwrap();
    let mut csv_text = String::new();
    for (s, l) in data.samples().iter().zip(data.labels()) {
        for v in s {
            // 17 significant digits round-trip f64 exactly.
            csv_text.push_str(&format!("{v:.17e},"));
        }
        csv_text.push_str(&format!("{l}\n"));
    }
    std::fs::write(&csv_path, csv_text).unwrap();

    let mut in_memory = InMemorySource::new(&data);
    let mut binary = BinarySource::open(&bin_path).unwrap();
    let mut csv = CsvSource::open(&csv_path, true).unwrap();
    let a = enq_data::materialize(&mut in_memory, "a").unwrap();
    let b = enq_data::materialize(&mut binary, "b").unwrap();
    let c = enq_data::materialize(&mut csv, "c").unwrap();
    assert_eq!(a.samples(), b.samples());
    assert_eq!(a.labels(), b.labels());
    assert_eq!(a.labels(), c.labels());
    for (x, y) in a.samples().iter().zip(c.samples()) {
        for (p, q) in x.iter().zip(y) {
            assert_eq!(p.to_bits(), q.to_bits(), "CSV round-trip drifted");
        }
    }

    // Feeding any of the sources through the same streaming fit gives
    // bit-identical PCA models.
    let fit = |source: &mut dyn SampleSource| {
        let mut ipca = IncrementalPca::new(6, 3).unwrap();
        source.reset().unwrap();
        enq_data::for_each_chunk(source, 9, |chunk| ipca.partial_fit(chunk.samples())).unwrap();
        ipca.finalize().unwrap()
    };
    let mut in_memory = InMemorySource::new(&data);
    let from_memory = fit(&mut in_memory);
    let mut binary = BinarySource::open(&bin_path).unwrap();
    let from_binary = fit(&mut binary);
    assert_eq!(from_memory, from_binary);

    std::fs::remove_file(&bin_path).unwrap();
    std::fs::remove_file(&csv_path).unwrap();
}

#[test]
fn pca_rank_deficiency_is_error_not_silent_garbage() {
    // Regression for the randomized fit: requesting more components than
    // the data's effective rank used to silently emit degenerate,
    // unnormalised components *and* corrupt the leading eigenvalues.
    let samples = exact_rank_samples(30, 9, 2, 99);
    match Pca::fit(&samples, 6) {
        Err(enq_data::DataError::RankDeficient {
            requested,
            effective,
        }) => {
            assert_eq!(requested, 6);
            assert_eq!(effective, 2);
        }
        other => panic!("expected RankDeficient, got {other:?}"),
    }
    // The truncating fit keeps exactly the real directions, unit-norm.
    let truncated = Pca::fit_truncated(&samples, 6).unwrap();
    assert_eq!(truncated.num_components(), 2);
    for axis in truncated.components() {
        let norm: f64 = axis.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!((norm - 1.0).abs() < 1e-9, "component norm {norm}");
    }
    // And its leading variances agree with an exact fit of rank width.
    let exact = Pca::fit(&samples, 2).unwrap();
    for (a, b) in exact
        .explained_variance()
        .iter()
        .zip(truncated.explained_variance())
    {
        assert!((a - b).abs() < 1e-8 * a.max(1.0));
    }
}

//! Integration test for the paper's noise claims (Figure 8b): under an
//! `ibm_brisbane`-like noise model, EnQode's short fixed circuits retain far
//! more fidelity than the deep Baseline circuits, and the noisy states stay
//! physical.

use enq_circuit::{Topology, Transpiler};
use enq_qsim::{DeviceNoiseModel, NoisySimulator};
use enqode::{
    evaluate_baseline_sample, evaluate_enqode_sample, AnsatzConfig, BaselineEmbedder, EnqodeConfig,
    EnqodeModel, EntanglerKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NUM_QUBITS: usize = 4;

fn samples(count: usize, seed: u64) -> Vec<Vec<f64>> {
    let dim = 1usize << NUM_QUBITS;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|s| {
            (0..dim)
                .map(|i| {
                    ((i + 2 * s) as f64 * 0.53).sin() * 0.4 + 0.55 + rng.gen_range(-0.05..0.05)
                })
                .collect()
        })
        .collect()
}

fn trained_model(data: &[Vec<f64>]) -> EnqodeModel {
    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: NUM_QUBITS,
            num_layers: 8,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.85,
        max_clusters: 3,
        offline_max_iterations: 100,
        offline_restarts: 2,
        online_max_iterations: 25,
        offline_rescue: false,
        seed: 7,
    };
    EnqodeModel::fit(data, config).expect("training succeeds")
}

#[test]
fn enqode_retains_more_fidelity_than_baseline_under_noise() {
    let data = samples(5, 23);
    let model = trained_model(&data);
    let baseline = BaselineEmbedder::new(NUM_QUBITS);
    let transpiler = Transpiler::new(Topology::linear(NUM_QUBITS));
    let noisy = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like());

    let mut enqode_noisy = Vec::new();
    let mut baseline_noisy = Vec::new();
    for sample in data.iter().take(3) {
        let e = evaluate_enqode_sample(&model, sample, &transpiler, Some(&noisy)).unwrap();
        let b = evaluate_baseline_sample(&baseline, sample, &transpiler, Some(&noisy)).unwrap();
        enqode_noisy.push(e.noisy_fidelity.unwrap());
        baseline_noisy.push(b.noisy_fidelity.unwrap());

        // Noise can only hurt relative to the ideal output.
        assert!(e.noisy_fidelity.unwrap() <= e.ideal_fidelity + 1e-9);
        assert!(b.noisy_fidelity.unwrap() <= b.ideal_fidelity + 1e-9);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    // The relative advantage is the paper's headline noisy-simulation claim;
    // at 4 qubits the gap is smaller than at 8 but must still be visible.
    assert!(
        mean(&enqode_noisy) > mean(&baseline_noisy),
        "enqode {:.3} should beat baseline {:.3} under noise",
        mean(&enqode_noisy),
        mean(&baseline_noisy)
    );
}

#[test]
fn noise_scaling_degrades_both_methods_monotonically() {
    let data = samples(2, 31);
    let model = trained_model(&data);
    let transpiler = Transpiler::new(Topology::linear(NUM_QUBITS));
    let sample = &data[0];

    let mut previous = f64::INFINITY;
    for scale in [0.25, 1.0, 4.0] {
        let noisy = NoisySimulator::new(
            DeviceNoiseModel::ibm_brisbane_like()
                .scaled(scale)
                .expect("valid scale"),
        );
        let eval = evaluate_enqode_sample(&model, sample, &transpiler, Some(&noisy)).unwrap();
        let fidelity = eval.noisy_fidelity.unwrap();
        assert!(
            fidelity <= previous + 1e-9,
            "fidelity should not increase as noise grows (scale {scale})"
        );
        previous = fidelity;
    }
}

#[test]
fn noisy_density_matrices_remain_physical() {
    let data = samples(1, 41);
    let model = trained_model(&data);
    let transpiler = Transpiler::new(Topology::linear(NUM_QUBITS));
    let noisy = NoisySimulator::new(DeviceNoiseModel::ibm_brisbane_like().scaled(8.0).unwrap());

    let embedding = model.embed(&data[0]).unwrap();
    let transpiled = transpiler.transpile(&embedding.circuit).unwrap();
    let rho = noisy.run(&transpiled.circuit).unwrap();
    assert!(rho.is_valid_state(1e-6));
    assert!(rho.purity() <= 1.0 + 1e-9);
    assert!(rho.purity() >= 1.0 / rho.dim() as f64 - 1e-9);
    let probabilities = rho.probabilities();
    assert!((probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-7);
    assert!(probabilities.iter().all(|&p| p >= -1e-9));
}

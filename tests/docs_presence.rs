//! Documentation-presence checks, mirrored by the CI `docs-presence` step:
//! every workspace crate must appear in the README crate table, and the
//! format/operations documents the code references must exist and cover
//! their headline topics. Run as a test so a missing row fails `cargo test`
//! locally, not just in CI.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    // This test is registered under crates/store; the repo root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap()
}

/// Workspace member crate names, parsed from the root manifest's
/// `members = [...]` list (member `crates/<dir>` → package name from the
/// member's own manifest).
fn workspace_crate_names() -> Vec<String> {
    let root = repo_root();
    let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
    let members_start = manifest.find("members").expect("members list");
    let open = manifest[members_start..].find('[').unwrap() + members_start;
    let close = manifest[open..].find(']').unwrap() + open;
    let mut names = Vec::new();
    for entry in manifest[open + 1..close].split(',') {
        let entry = entry.trim().trim_matches('"');
        if entry.is_empty() {
            continue;
        }
        let member_manifest = std::fs::read_to_string(root.join(entry).join("Cargo.toml")).unwrap();
        let name_line = member_manifest
            .lines()
            .find(|l| l.trim_start().starts_with("name"))
            .unwrap_or_else(|| panic!("{entry}/Cargo.toml has no name"));
        let name = name_line
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .trim_matches('"');
        names.push(name.to_string());
    }
    assert!(
        names.len() >= 10,
        "workspace parse looks broken: only {names:?}"
    );
    names
}

#[test]
fn every_workspace_crate_is_documented_in_the_readme() {
    let readme = std::fs::read_to_string(repo_root().join("README.md")).unwrap();
    let missing: Vec<String> = workspace_crate_names()
        .into_iter()
        .filter(|name| !readme.contains(&format!("`{name}`")))
        .collect();
    assert!(
        missing.is_empty(),
        "README.md crate table is missing: {missing:?}"
    );
}

#[test]
fn format_and_operations_docs_exist_and_cover_their_topics() {
    let docs = repo_root().join("docs");
    let formats = std::fs::read_to_string(docs.join("FORMATS.md")).unwrap();
    for needle in ["ENQM", "ENQB", "FNV-1a", "little-endian", "fail closed"] {
        assert!(
            formats.contains(needle),
            "FORMATS.md does not mention {needle:?}"
        );
    }
    let operations = std::fs::read_to_string(docs.join("OPERATIONS.md")).unwrap();
    for needle in [
        "--model-dir",
        "ENQ_COMPUTE_BACKEND",
        "warm boot",
        "drain",
        "BENCH_",
    ] {
        assert!(
            operations.contains(needle),
            "OPERATIONS.md does not mention {needle:?}"
        );
    }
    let protocol = std::fs::read_to_string(docs.join("PROTOCOL.md")).unwrap();
    assert!(
        protocol.contains("FORMATS.md"),
        "PROTOCOL.md should cross-link FORMATS.md"
    );
}

//! Pins the tentpole claim of the pooled request path: once the service is
//! warm, a steady-state cache-hit request performs **zero heap
//! allocations** — through `embed_direct` (thread-local scratch keys),
//! through `embed`'s caller-thread memo probe (the production default), and
//! through the full batcher round trip with the probe disabled (interned
//! model id, pooled sample buffer, pooled reply slot, reused batch vector
//! and workspace).
//!
//! A counting global allocator measures allocation *counts* (not bytes).
//! The binary runs **without the libtest harness** (`harness = false`),
//! matching `zero_alloc_optimizer_loop`: the harness's own threads
//! allocate at unpredictable moments, which would pollute the
//! process-global counter. The batcher thread is *deliberately* inside the
//! measured window — the claim covers the whole request path, not just the
//! caller's half — so the loop quiesces the buffer pools between requests,
//! making the recycle race (client resubmitting before the batcher has
//! parked the previous buffers) impossible instead of merely unlikely.

use enq_data::{generate_synthetic, DatasetKind, SyntheticConfig};
use enq_serve::{EmbedService, ServeConfig, SolutionSource};
use enqode::{AnsatzConfig, EnqodeConfig, EnqodePipeline, EntanglerKind};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn tiny_pipeline() -> (Arc<EnqodePipeline>, Vec<f64>) {
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 6,
            seed: 11,
        },
    )
    .unwrap();
    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 2,
        offline_max_iterations: 40,
        offline_restarts: 1,
        online_max_iterations: 15,
        offline_rescue: false,
        seed: 11,
    };
    let pipeline = Arc::new(EnqodePipeline::build(&dataset, config).unwrap());
    let sample = dataset.sample(0).to_vec();
    (pipeline, sample)
}

/// A service over the shared pipeline. Traffic capture stays at its default
/// (disabled); zero flush deadline keeps the batched measurement from
/// spending its time in straggler waits.
fn service_over(pipeline: &Arc<EnqodePipeline>, probe_caller_cache: bool) -> EmbedService {
    let service = EmbedService::new(ServeConfig {
        max_batch_size: 8,
        flush_deadline: Duration::ZERO,
        probe_caller_cache,
        ..Default::default()
    });
    service.register_model("m", Arc::clone(pipeline));
    service
}

/// Spins until every pooled buffer and reply slot has been returned. The
/// batcher recycles buffers when it clears the finished batch, which
/// trails the reply by a beat; waiting it out makes the measured loop's
/// checkouts deterministic pool pops. Polling itself never allocates
/// (`pool_stats` returns `Copy` snapshots).
fn quiesce(service: &EmbedService) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = service.pool_stats();
        if stats.samples.outstanding == 0 && stats.slots.outstanding == 0 {
            return;
        }
        assert!(Instant::now() < deadline, "pools never quiesced");
        std::hint::spin_loop();
    }
}

fn main() {
    let (pipeline, sample) = tiny_pipeline();
    const ROUNDS: usize = 200;

    // --- embed_direct: the synchronous path ------------------------------
    // First call computes and fills both cache tiers; the repeats warm the
    // thread-local scratch keys.
    let service = service_over(&pipeline, true);
    let first = service.embed_direct("m", &sample).unwrap();
    assert_eq!(first.source, SolutionSource::Computed);
    for _ in 0..3 {
        let warm = service.embed_direct("m", &sample).unwrap();
        assert_eq!(warm.source, SolutionSource::CacheHit);
    }

    let before = allocations();
    for _ in 0..ROUNDS {
        std::hint::black_box(service.embed_direct("m", &sample).unwrap());
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "embed_direct cache hits allocated {delta} times over {ROUNDS} requests"
    );

    // --- embed with the caller-thread memo probe (production default) ----
    // A warm repeat never enters the queue: the probe answers it in place.
    for _ in 0..4 {
        let warm = service.embed("m", &sample).unwrap();
        assert_eq!(warm.source, SolutionSource::CacheHit);
    }
    let probed_before = service.pool_stats();
    let before = allocations();
    for _ in 0..ROUNDS {
        std::hint::black_box(service.embed("m", &sample).unwrap());
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "caller-probe cache hits allocated {delta} times over {ROUNDS} requests"
    );
    let probed_after = service.pool_stats();
    assert_eq!(
        probed_after.samples.created, probed_before.samples.created,
        "probe-answered hits must not touch the request pools"
    );

    // --- embed with the probe disabled: the full batcher round trip ------
    // Warm the queue, the pooled sample buffer and reply slot, the
    // batcher's reusable batch vector and its workspace scratch keys.
    let service = service_over(&pipeline, false);
    let first = service.embed("m", &sample).unwrap();
    assert_eq!(first.source, SolutionSource::Computed);
    for _ in 0..4 {
        let warm = service.embed("m", &sample).unwrap();
        assert_eq!(warm.source, SolutionSource::CacheHit);
    }
    quiesce(&service);

    let before = allocations();
    for _ in 0..ROUNDS {
        std::hint::black_box(service.embed("m", &sample).unwrap());
        quiesce(&service);
    }
    let delta = allocations() - before;
    assert_eq!(
        delta, 0,
        "batched cache hits allocated {delta} times over {ROUNDS} requests"
    );

    // The pools never grew past what the single client needed.
    let pools = service.pool_stats();
    assert!(
        pools.samples.created <= 4 && pools.slots.created <= 4,
        "single-client traffic created {} sample buffers / {} slots",
        pools.samples.created,
        pools.slots.created
    );
    println!("zero-alloc request hot path: ok");
}

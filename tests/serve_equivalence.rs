//! Serve-layer equivalence: micro-batching is a scheduling optimisation,
//! never a numerical one.
//!
//! With the cache disabled, every result coming out of [`EmbedService`] must
//! be **bit-identical** to calling `pipeline.embed` one request at a time,
//! for every interleaving the batcher can produce. The batcher's observable
//! degrees of freedom are (a) how requests group into batches — driven by
//! `max_batch_size`, the flush deadline, and arrival order — and (b) the
//! order requests occupy within a batch. The tests sweep batch sizes from 1
//! (fully sequential) to larger than the request count (one giant batch),
//! submit from many client threads at once, and shuffle submission order
//! across rounds, so batches of every size and composition are produced.
//!
//! With the cache enabled, a hit must return the exact cached solution
//! object (pointer equality), not a recomputation.

use enq_data::{generate_synthetic, Dataset, DatasetKind, SyntheticConfig};
use enq_serve::{CacheConfig, EmbedService, ServeConfig, SolutionSource};
use enqode::{AnsatzConfig, Embedding, EnqodeConfig, EnqodePipeline, EntanglerKind};
use std::sync::Arc;
use std::time::Duration;

fn tiny_pipeline() -> (Arc<EnqodePipeline>, Dataset) {
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 8,
            seed: 33,
        },
    )
    .unwrap();
    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 3,
        offline_max_iterations: 80,
        offline_restarts: 2,
        online_max_iterations: 30,
        offline_rescue: false,
        seed: 33,
    };
    (
        Arc::new(EnqodePipeline::build(&dataset, config).unwrap()),
        dataset,
    )
}

fn no_cache(max_batch_size: usize, flush: Duration) -> ServeConfig {
    ServeConfig {
        max_batch_size,
        flush_deadline: flush,
        cache: CacheConfig {
            capacity: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn assert_bit_identical(expected: &(usize, Embedding), label: usize, embedding: &Embedding) {
    assert_eq!(expected.0, label, "class label diverged");
    assert_eq!(
        expected.1.parameters, embedding.parameters,
        "fine-tuned parameters diverged"
    );
    assert_eq!(expected.1.cluster_index, embedding.cluster_index);
    assert_eq!(
        expected.1.ideal_fidelity.to_bits(),
        embedding.ideal_fidelity.to_bits(),
        "fidelity diverged"
    );
    assert_eq!(expected.1.iterations, embedding.iterations);
    assert_eq!(
        expected.1.circuit, embedding.circuit,
        "bound circuit diverged"
    );
}

/// Sweeps batcher configurations and concurrent submission orders; every
/// response must match the per-sample reference bit for bit.
#[test]
fn micro_batched_results_match_per_sample_embedding_for_all_interleavings() {
    let (pipeline, dataset) = tiny_pipeline();
    let samples: Vec<Vec<f64>> = (0..10).map(|i| dataset.sample(i).to_vec()).collect();
    let reference: Vec<(usize, Embedding)> =
        samples.iter().map(|s| pipeline.embed(s).unwrap()).collect();

    // (max_batch, flush, client threads): size-1 batches, partial batches
    // released by the deadline, one giant batch, and ragged groupings.
    let scenarios = [
        (1, Duration::ZERO, 4),
        (2, Duration::from_millis(2), 5),
        (3, Duration::from_millis(5), 10),
        (16, Duration::from_millis(5), 10),
    ];
    for (round, &(max_batch, flush, clients)) in scenarios.iter().enumerate() {
        let service = Arc::new(EmbedService::new(no_cache(max_batch, flush)));
        service.register_model("m", Arc::clone(&pipeline));
        // Rotate the submission order each round so batch compositions vary.
        let order: Vec<usize> = (0..samples.len())
            .map(|i| (i * 7 + round) % samples.len())
            .collect();
        let mut handles = Vec::new();
        for chunk in order.chunks(order.len().div_ceil(clients)) {
            let service = Arc::clone(&service);
            let jobs: Vec<(usize, Vec<f64>)> = chunk
                .iter()
                .map(|&idx| (idx, samples[idx].clone()))
                .collect();
            handles.push(std::thread::spawn(move || {
                jobs.into_iter()
                    .map(|(idx, sample)| (idx, service.embed("m", &sample).unwrap()))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (idx, response) in handle.join().unwrap() {
                assert_eq!(
                    response.source,
                    SolutionSource::Computed,
                    "cache is disabled; every request must compute"
                );
                assert!(response.batch_size >= 1 && response.batch_size <= max_batch);
                assert_bit_identical(&reference[idx], response.label(), response.embedding());
            }
        }
        let stats = service.stats();
        assert_eq!(stats.requests, samples.len() as u64);
        assert_eq!(stats.computed, samples.len() as u64);
        assert_eq!(stats.cache_hits + stats.batch_dedup_hits, 0);
        assert_eq!(stats.errors, 0);
    }
}

/// Repeated submissions of one sample: the first computes, all later ones
/// are cache hits returning the exact cached solution object.
#[test]
fn cache_hits_return_the_exact_cached_solution() {
    let (pipeline, dataset) = tiny_pipeline();
    let service = EmbedService::new(ServeConfig {
        max_batch_size: 4,
        flush_deadline: Duration::ZERO,
        ..Default::default()
    });
    service.register_model("m", pipeline);
    let sample = dataset.sample(0);
    let first = service.embed("m", sample).unwrap();
    assert_eq!(first.source, SolutionSource::Computed);
    for _ in 0..3 {
        let hit = service.embed("m", sample).unwrap();
        assert_eq!(hit.source, SolutionSource::CacheHit);
        assert!(
            Arc::ptr_eq(&first.solution, &hit.solution),
            "hits must return the cached solution, not a recomputation"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.computed, 1);
    assert_eq!(stats.cache_hits, 3);
    // Exact repeats are served by the raw-keyed memo tier (no feature
    // extraction); the feature-keyed tier covers near-duplicates.
    assert_eq!(service.memo_stats().hits, 3);
}

/// Identical requests arriving in the same micro-batch share one
/// fine-tuning run (leader computes, mates dedup), and everyone gets the
/// same solution object.
#[test]
fn identical_requests_in_one_batch_are_deduplicated() {
    let (pipeline, dataset) = tiny_pipeline();
    let service = Arc::new(EmbedService::new(ServeConfig {
        max_batch_size: 8,
        flush_deadline: Duration::from_millis(100),
        ..Default::default()
    }));
    service.register_model("m", pipeline);
    let sample = dataset.sample(1).to_vec();
    let clients = 6;
    let mut handles = Vec::new();
    for _ in 0..clients {
        let service = Arc::clone(&service);
        let sample = sample.clone();
        handles.push(std::thread::spawn(move || {
            service.embed("m", &sample).unwrap()
        }));
    }
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let computed = responses
        .iter()
        .filter(|r| r.source == SolutionSource::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one leader fine-tunes");
    for response in &responses {
        assert!(Arc::ptr_eq(&responses[0].solution, &response.solution));
    }
    let stats = service.stats();
    assert_eq!(
        stats.computed + stats.cache_hits + stats.batch_dedup_hits,
        clients as u64
    );
}

/// Near-duplicate samples within one quantization cell hit; samples in a
/// different cell miss and compute their own solution.
#[test]
fn quantization_controls_cache_sharing() {
    let (pipeline, dataset) = tiny_pipeline();
    let service = EmbedService::new(ServeConfig {
        max_batch_size: 1,
        flush_deadline: Duration::ZERO,
        cache: CacheConfig {
            capacity: 64,
            quantum: 1e-3,
            shards: 2,
        },
        ..Default::default()
    });
    service.register_model("m", Arc::clone(&pipeline));
    let base = dataset.sample(2).to_vec();
    let first = service.embed("m", &base).unwrap();
    assert_eq!(first.source, SolutionSource::Computed);

    // A perturbation far below the feature-space quantum lands in the same
    // cell. Feature extraction is linear (PCA projection + normalisation),
    // so a tiny raw-space nudge moves features proportionally; pick it
    // orders of magnitude under `quantum`.
    let mut near = base.clone();
    near[0] += 1e-9;
    let near_response = service.embed("m", &near).unwrap();
    assert_eq!(near_response.source, SolutionSource::CacheHit);
    assert!(Arc::ptr_eq(&first.solution, &near_response.solution));

    // A different training sample is nowhere near the same cell.
    let far = dataset.sample(9).to_vec();
    let far_response = service.embed("m", &far).unwrap();
    assert_eq!(far_response.source, SolutionSource::Computed);
    assert!(!Arc::ptr_eq(&first.solution, &far_response.solution));
}

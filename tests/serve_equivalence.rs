//! Serve-layer equivalence: micro-batching is a scheduling optimisation,
//! never a numerical one.
//!
//! With the cache disabled, every result coming out of [`EmbedService`] must
//! be **bit-identical** to calling `pipeline.embed` one request at a time,
//! for every interleaving the batcher can produce. The batcher's observable
//! degrees of freedom are (a) how requests group into batches — driven by
//! `max_batch_size`, the flush deadline, and arrival order — and (b) the
//! order requests occupy within a batch. The tests sweep batch sizes from 1
//! (fully sequential) to larger than the request count (one giant batch),
//! submit from many client threads at once, and shuffle submission order
//! across rounds, so batches of every size and composition are produced.
//!
//! With the cache enabled, a hit must return the exact cached solution
//! object (pointer equality), not a recomputation.

use enq_data::{generate_synthetic, Dataset, DatasetKind, SyntheticConfig};
use enq_serve::{CacheConfig, EmbedService, ServeConfig, ServeError, SolutionSource};
use enqode::{AnsatzConfig, Embedding, EnqodeConfig, EnqodePipeline, EntanglerKind};
use proptest::prelude::*;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

fn tiny_pipeline() -> (Arc<EnqodePipeline>, Dataset) {
    let dataset = generate_synthetic(
        DatasetKind::MnistLike,
        &SyntheticConfig {
            classes: 2,
            samples_per_class: 8,
            seed: 33,
        },
    )
    .unwrap();
    let config = EnqodeConfig {
        ansatz: AnsatzConfig {
            num_qubits: 3,
            num_layers: 4,
            entangler: EntanglerKind::Cy,
        },
        fidelity_threshold: 0.8,
        max_clusters: 3,
        offline_max_iterations: 80,
        offline_restarts: 2,
        online_max_iterations: 30,
        offline_rescue: false,
        seed: 33,
    };
    (
        Arc::new(EnqodePipeline::build(&dataset, config).unwrap()),
        dataset,
    )
}

fn no_cache(max_batch_size: usize, flush: Duration) -> ServeConfig {
    ServeConfig {
        max_batch_size,
        flush_deadline: flush,
        cache: CacheConfig {
            capacity: 0,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn assert_bit_identical(expected: &(usize, Embedding), label: usize, embedding: &Embedding) {
    assert_eq!(expected.0, label, "class label diverged");
    assert_eq!(
        expected.1.parameters, embedding.parameters,
        "fine-tuned parameters diverged"
    );
    assert_eq!(expected.1.cluster_index, embedding.cluster_index);
    assert_eq!(
        expected.1.ideal_fidelity.to_bits(),
        embedding.ideal_fidelity.to_bits(),
        "fidelity diverged"
    );
    assert_eq!(expected.1.iterations, embedding.iterations);
    assert_eq!(
        expected.1.circuit, embedding.circuit,
        "bound circuit diverged"
    );
}

/// Sweeps batcher configurations and concurrent submission orders; every
/// response must match the per-sample reference bit for bit.
#[test]
fn micro_batched_results_match_per_sample_embedding_for_all_interleavings() {
    let (pipeline, dataset) = tiny_pipeline();
    let samples: Vec<Vec<f64>> = (0..10).map(|i| dataset.sample(i).to_vec()).collect();
    let reference: Vec<(usize, Embedding)> =
        samples.iter().map(|s| pipeline.embed(s).unwrap()).collect();

    // (max_batch, flush, client threads): size-1 batches, partial batches
    // released by the deadline, one giant batch, and ragged groupings.
    let scenarios = [
        (1, Duration::ZERO, 4),
        (2, Duration::from_millis(2), 5),
        (3, Duration::from_millis(5), 10),
        (16, Duration::from_millis(5), 10),
    ];
    for (round, &(max_batch, flush, clients)) in scenarios.iter().enumerate() {
        let service = Arc::new(EmbedService::new(no_cache(max_batch, flush)));
        service.register_model("m", Arc::clone(&pipeline));
        // Rotate the submission order each round so batch compositions vary.
        let order: Vec<usize> = (0..samples.len())
            .map(|i| (i * 7 + round) % samples.len())
            .collect();
        let mut handles = Vec::new();
        for chunk in order.chunks(order.len().div_ceil(clients)) {
            let service = Arc::clone(&service);
            let jobs: Vec<(usize, Vec<f64>)> = chunk
                .iter()
                .map(|&idx| (idx, samples[idx].clone()))
                .collect();
            handles.push(std::thread::spawn(move || {
                jobs.into_iter()
                    .map(|(idx, sample)| (idx, service.embed("m", &sample).unwrap()))
                    .collect::<Vec<_>>()
            }));
        }
        for handle in handles {
            for (idx, response) in handle.join().unwrap() {
                assert_eq!(
                    response.source,
                    SolutionSource::Computed,
                    "cache is disabled; every request must compute"
                );
                assert!(response.batch_size >= 1 && response.batch_size <= max_batch);
                assert_bit_identical(&reference[idx], response.label(), response.embedding());
            }
        }
        let stats = service.stats();
        assert_eq!(stats.requests, samples.len() as u64);
        assert_eq!(stats.computed, samples.len() as u64);
        assert_eq!(stats.cache_hits + stats.batch_dedup_hits, 0);
        assert_eq!(stats.errors, 0);
    }
}

/// Repeated submissions of one sample: the first computes, all later ones
/// are cache hits returning the exact cached solution object.
#[test]
fn cache_hits_return_the_exact_cached_solution() {
    let (pipeline, dataset) = tiny_pipeline();
    let service = EmbedService::new(ServeConfig {
        max_batch_size: 4,
        flush_deadline: Duration::ZERO,
        ..Default::default()
    });
    service.register_model("m", pipeline);
    let sample = dataset.sample(0);
    let first = service.embed("m", sample).unwrap();
    assert_eq!(first.source, SolutionSource::Computed);
    for _ in 0..3 {
        let hit = service.embed("m", sample).unwrap();
        assert_eq!(hit.source, SolutionSource::CacheHit);
        assert!(
            Arc::ptr_eq(&first.solution, &hit.solution),
            "hits must return the cached solution, not a recomputation"
        );
    }
    let stats = service.stats();
    assert_eq!(stats.computed, 1);
    assert_eq!(stats.cache_hits, 3);
    // Exact repeats are served by the raw-keyed memo tier (no feature
    // extraction); the feature-keyed tier covers near-duplicates.
    assert_eq!(service.memo_stats().hits, 3);
}

/// Identical requests arriving in the same micro-batch share one
/// fine-tuning run (leader computes, mates dedup), and everyone gets the
/// same solution object.
#[test]
fn identical_requests_in_one_batch_are_deduplicated() {
    let (pipeline, dataset) = tiny_pipeline();
    let service = Arc::new(EmbedService::new(ServeConfig {
        max_batch_size: 8,
        flush_deadline: Duration::from_millis(100),
        ..Default::default()
    }));
    service.register_model("m", pipeline);
    let sample = dataset.sample(1).to_vec();
    let clients = 6;
    let mut handles = Vec::new();
    for _ in 0..clients {
        let service = Arc::clone(&service);
        let sample = sample.clone();
        handles.push(std::thread::spawn(move || {
            service.embed("m", &sample).unwrap()
        }));
    }
    let responses: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let computed = responses
        .iter()
        .filter(|r| r.source == SolutionSource::Computed)
        .count();
    assert_eq!(computed, 1, "exactly one leader fine-tunes");
    for response in &responses {
        assert!(Arc::ptr_eq(&responses[0].solution, &response.solution));
    }
    let stats = service.stats();
    assert_eq!(
        stats.computed + stats.cache_hits + stats.batch_dedup_hits,
        clients as u64
    );
}

/// Shared fixture for the property sweep: building the pipeline dominates
/// each case's cost, and the reference embeddings are deterministic, so
/// both are computed once and reused across every generated case.
struct Fixture {
    pipeline: Arc<EnqodePipeline>,
    samples: Vec<Vec<f64>>,
    reference: Vec<(usize, Embedding)>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let (pipeline, dataset) = tiny_pipeline();
        let samples: Vec<Vec<f64>> = (0..10).map(|i| dataset.sample(i).to_vec()).collect();
        let reference = samples.iter().map(|s| pipeline.embed(s).unwrap()).collect();
        Fixture {
            pipeline,
            samples,
            reference,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    // The pooled request path (reused sample buffers, pooled reply slots,
    // interned ids, optional caller-thread memo probe) is a memory
    // optimisation, never a numerical one: under every generated batcher
    // shape, client count, cache mode, and error interleaving, valid
    // requests return results bit-identical to the fresh-alloc
    // `pipeline.embed` reference, invalid requests fail with their typed
    // error without poisoning anything, and the pools drain back to
    // quiescence with every buffer accounted for.
    #[test]
    fn pooled_request_path_is_bitwise_equivalent_and_leak_free(
        max_batch in 1usize..12,
        flush_ms in 0u64..3,
        clients in 1usize..6,
        cache_on in 0u8..2,
        probe in 0u8..2,
        plan in proptest::collection::vec((0usize..10, 0u8..8), 8..40),
    ) {
        let fx = fixture();
        let service = Arc::new(EmbedService::new(ServeConfig {
            max_batch_size: max_batch,
            flush_deadline: Duration::from_millis(flush_ms),
            cache: CacheConfig {
                capacity: if cache_on == 1 { 64 } else { 0 },
                ..Default::default()
            },
            probe_caller_cache: probe == 1,
            ..Default::default()
        }));
        service.register_model("m", Arc::clone(&fx.pipeline));

        // Each plan entry is (sample index, request kind). Kinds 0 and 1
        // are hostile — a NaN-poisoned sample and a truncated sample — and
        // must fail with their typed error while returning their pooled
        // buffers; the rest are valid and checked bit for bit.
        let mut handles = Vec::new();
        for chunk in plan.chunks(plan.len().div_ceil(clients)) {
            let service = Arc::clone(&service);
            let chunk: Vec<(usize, u8)> = chunk.to_vec();
            handles.push(std::thread::spawn(move || {
                let fx = fixture();
                chunk
                    .into_iter()
                    .map(|(idx, kind)| {
                        let base = &fx.samples[idx];
                        let result = match kind {
                            0 => {
                                let mut poisoned = base.clone();
                                poisoned[idx % base.len()] = f64::NAN;
                                service.embed("m", &poisoned)
                            }
                            1 => service.embed("m", &base[..2]),
                            _ => service.embed("m", base),
                        };
                        (idx, kind, result)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        let mut invalid = 0u64;
        for handle in handles {
            for (idx, kind, result) in handle.join().unwrap() {
                match kind {
                    0 => {
                        invalid += 1;
                        let poison_pos = idx % fx.samples[idx].len();
                        match result {
                            Err(ServeError::NonFiniteFeature { index, value }) => {
                                prop_assert_eq!(index, poison_pos);
                                prop_assert!(value.is_nan());
                            }
                            other => prop_assert!(
                                false,
                                "poisoned sample: expected NonFiniteFeature, got {:?}",
                                other.map(|r| r.source)
                            ),
                        }
                    }
                    1 => {
                        invalid += 1;
                        prop_assert!(
                            matches!(result, Err(ServeError::Embed(_))),
                            "truncated sample must fail in the embedder"
                        );
                    }
                    _ => {
                        let response = result.unwrap();
                        prop_assert!(
                            response.batch_size >= 1 && response.batch_size <= max_batch.max(1)
                        );
                        assert_bit_identical(
                            &fx.reference[idx],
                            response.label(),
                            response.embedding(),
                        );
                    }
                }
            }
        }
        let stats = service.stats();
        prop_assert_eq!(stats.requests, plan.len() as u64);
        prop_assert_eq!(stats.errors, invalid);

        // Pool hygiene: once no request is in flight, every checked-out
        // buffer — including those carried by failed requests — must be
        // back, and the parked set must respect the configured bound.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let pools = service.pool_stats();
            if pools.samples.outstanding == 0 && pools.slots.outstanding == 0 {
                break;
            }
            prop_assert!(
                Instant::now() < deadline,
                "pool buffers leaked after the storm: {} samples, {} slots outstanding",
                pools.samples.outstanding,
                pools.slots.outstanding
            );
            std::thread::yield_now();
        }
        let pools = service.pool_stats();
        prop_assert!(pools.samples.available <= pools.samples.capacity);
        prop_assert!(pools.slots.available <= pools.slots.capacity);

        // And the service is still healthy: one more valid request comes
        // back bit-identical.
        let response = service.embed("m", &fx.samples[0]).unwrap();
        assert_bit_identical(&fx.reference[0], response.label(), response.embedding());
    }
}

/// Near-duplicate samples within one quantization cell hit; samples in a
/// different cell miss and compute their own solution.
#[test]
fn quantization_controls_cache_sharing() {
    let (pipeline, dataset) = tiny_pipeline();
    let service = EmbedService::new(ServeConfig {
        max_batch_size: 1,
        flush_deadline: Duration::ZERO,
        cache: CacheConfig {
            capacity: 64,
            quantum: 1e-3,
            shards: 2,
        },
        ..Default::default()
    });
    service.register_model("m", Arc::clone(&pipeline));
    let base = dataset.sample(2).to_vec();
    let first = service.embed("m", &base).unwrap();
    assert_eq!(first.source, SolutionSource::Computed);

    // A perturbation far below the feature-space quantum lands in the same
    // cell. Feature extraction is linear (PCA projection + normalisation),
    // so a tiny raw-space nudge moves features proportionally; pick it
    // orders of magnitude under `quantum`.
    let mut near = base.clone();
    near[0] += 1e-9;
    let near_response = service.embed("m", &near).unwrap();
    assert_eq!(near_response.source, SolutionSource::CacheHit);
    assert!(Arc::ptr_eq(&first.solution, &near_response.solution));

    // A different training sample is nowhere near the same cell.
    let far = dataset.sample(9).to_vec();
    let far_response = service.embed("m", &far).unwrap();
    assert_eq!(far_response.source, SolutionSource::Computed);
    assert!(!Arc::ptr_eq(&first.solution, &far_response.solution));
}

//! Property test: the sparse Walsh-spectrum kernel must agree with the
//! retained naive dense reference to 1e-12 across random ansatz shapes and
//! all three entangler kinds, for overlap, gradient, and the workspace
//! (no-allocation) entry points.

use enq_linalg::C64;
use enqode::{AnsatzConfig, EntanglerKind, SymbolicState, SymbolicWorkspace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TOL: f64 = 1e-12;

fn random_case(rng: &mut StdRng, entangler: EntanglerKind) -> (SymbolicState, Vec<f64>, Vec<C64>) {
    let config = AnsatzConfig {
        num_qubits: rng.gen_range(2usize..7),
        num_layers: rng.gen_range(1usize..9),
        entangler,
    };
    let symbolic = SymbolicState::from_ansatz(&config).unwrap();
    let theta: Vec<f64> = (0..config.num_parameters())
        .map(|_| rng.gen_range(-3.0..3.0))
        .collect();
    let target_conj: Vec<C64> = (0..symbolic.dim())
        .map(|_| C64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    (symbolic, theta, target_conj)
}

#[test]
fn sparse_kernel_matches_naive_dense_reference_across_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut ws = SymbolicWorkspace::new();
    for entangler in [EntanglerKind::Cy, EntanglerKind::Cx, EntanglerKind::Cz] {
        for _ in 0..12 {
            let (symbolic, theta, target_conj) = random_case(&mut rng, entangler);
            let (s_naive, g_naive) = symbolic
                .overlap_and_gradient_naive(&target_conj, &theta)
                .unwrap();

            // Allocating wrapper.
            let (s_fast, g_fast) = symbolic.overlap_and_gradient(&target_conj, &theta).unwrap();
            assert!(
                s_fast.approx_eq(s_naive, TOL),
                "{entangler:?}: overlap {s_fast} vs naive {s_naive}"
            );
            assert_eq!(g_fast.len(), g_naive.len());
            for (j, (a, b)) in g_fast.iter().zip(g_naive.iter()).enumerate() {
                assert!(
                    a.approx_eq(*b, TOL),
                    "{entangler:?}: gradient[{j}] {a} vs naive {b}"
                );
            }

            // Workspace (zero-allocation) entry points, with a shared
            // workspace reused across shapes.
            let mut gradient = vec![C64::ZERO; symbolic.num_parameters()];
            let s_ws = symbolic
                .overlap_and_gradient_into(&target_conj, &theta, &mut ws, &mut gradient)
                .unwrap();
            assert!(s_ws.approx_eq(s_naive, TOL));
            for (a, b) in gradient.iter().zip(g_naive.iter()) {
                assert!(a.approx_eq(*b, TOL));
            }
            let s_only = symbolic
                .overlap_into(&target_conj, &theta, &mut ws)
                .unwrap();
            assert!(s_only.approx_eq(s_naive, TOL));
        }
    }
}

#[test]
fn sparse_amplitudes_match_naive_phase_walk() {
    // amplitudes() also runs through the Walsh path; check it against a
    // direct per-row phase accumulation over the dense table.
    let mut rng = StdRng::seed_from_u64(0xA11);
    for entangler in [EntanglerKind::Cy, EntanglerKind::Cx, EntanglerKind::Cz] {
        let (symbolic, theta, _) = random_case(&mut rng, entangler);
        let amps = symbolic.amplitudes(&theta).unwrap();
        let scale = 1.0 / (symbolic.dim() as f64).sqrt();
        for r in 0..symbolic.dim() {
            let mut phase = 0.0;
            for (j, t) in theta.iter().enumerate() {
                phase += f64::from(symbolic.coefficient(r, j)) * t;
            }
            let expected = C64::cis(phase / 2.0).scale(scale)
                * C64::cis(f64::from(symbolic.phase_constant(r)) * std::f64::consts::FRAC_PI_2);
            assert!(
                amps[r].approx_eq(expected, TOL),
                "{entangler:?}: amplitude[{r}] {} vs {expected}",
                amps[r]
            );
        }
    }
}

//! Cross-backend equivalence battery for the symbolic hot loops.
//!
//! The `enq_simd` dispatch layer promises that every backend — forced
//! scalar, runtime-detected SIMD, and the batched multi-lane transform at
//! any lane count — produces **bit-identical** results wherever a summation
//! order is observable, and stays within `1e-12` of the dense naive
//! reference everywhere. These tests pin both promises:
//!
//! * every backend × the naive `overlap_and_gradient_naive` reference at
//!   `1e-12`, on random and on subnormal targets;
//! * forced-scalar vs forced-SIMD, compared bit for bit;
//! * batched lanes (`B ∈ {1, 2, 7, 16}`) vs solo calls, bit for bit, under
//!   both forced backends;
//! * a full L-BFGS fine-tune whose trajectory (every iterate, every
//!   line-search probe) must agree bit for bit across backends — the
//!   property that keeps the golden seeded-determinism pins valid on any
//!   host.

use enq_linalg::C64;
use enq_simd::ComputeBackend;
use enqode::{AnsatzConfig, EntanglerKind, FidelityObjective, SymbolicBatch, SymbolicState};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// `enq_simd::force_backend` is process-global state; tests that touch it
/// hold this lock and restore auto dispatch on drop (panic included), so
/// concurrently running tests never observe a half-forced backend.
fn backend_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct BackendGuard(#[allow(dead_code)] MutexGuard<'static, ()>);

impl BackendGuard {
    fn new() -> Self {
        Self(backend_lock())
    }
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        enq_simd::force_backend(None);
    }
}

/// Runs `f` once under the forced scalar backend and once under the
/// runtime-detected one, returning both results. On a host without SIMD
/// support `detect()` is `Scalar` and the comparison is trivially true —
/// the battery still validates the scalar path against the references.
fn under_scalar_and_simd<T>(mut f: impl FnMut() -> T) -> (T, T) {
    let _guard = BackendGuard::new();
    enq_simd::force_backend(Some(ComputeBackend::Scalar));
    let scalar = f();
    enq_simd::force_backend(Some(enq_simd::detect()));
    let simd = f();
    (scalar, simd)
}

fn config(num_qubits: usize, num_layers: usize) -> AnsatzConfig {
    AnsatzConfig {
        num_qubits,
        num_layers,
        entangler: EntanglerKind::Cy,
    }
}

/// Deterministic pseudo-random conjugated target (not normalised — the raw
/// kernels do not require it).
fn target_conj(dim: usize, seed: u64) -> Vec<C64> {
    (0..dim)
        .map(|r| {
            let x = (seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(r as u64)) as f64;
            C64::new((x * 1e-17).sin(), (x * 3e-18).cos() - 0.5)
        })
        .collect()
}

fn eval(state: &SymbolicState, target: &[C64], theta: &[f64]) -> (C64, Vec<C64>) {
    state
        .overlap_and_gradient(target, theta)
        .expect("shapes are valid")
}

fn assert_close(fast: (C64, Vec<C64>), naive: (C64, Vec<C64>), what: &str) {
    assert!(
        (fast.0 - naive.0).abs() < 1e-12,
        "{what}: overlap {:?} vs naive {:?}",
        fast.0,
        naive.0
    );
    for (j, (a, b)) in fast.1.iter().zip(naive.1.iter()).enumerate() {
        assert!(
            (*a - *b).abs() < 1e-12,
            "{what}: gradient[{j}] {a:?} vs naive {b:?}"
        );
    }
}

fn assert_bitwise(a: &(C64, Vec<C64>), b: &(C64, Vec<C64>), what: &str) {
    assert_eq!(a.0.re.to_bits(), b.0.re.to_bits(), "{what}: overlap.re");
    assert_eq!(a.0.im.to_bits(), b.0.im.to_bits(), "{what}: overlap.im");
    for (j, (x, y)) in a.1.iter().zip(b.1.iter()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: gradient[{j}].re");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: gradient[{j}].im");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_backend_matches_the_naive_reference(
        qubits in 2usize..6,
        layers in 1usize..5,
        seed in 0u64..1024,
        scale in 0.1..2.0f64,
    ) {
        let cfg = config(qubits, layers);
        let state = SymbolicState::from_ansatz(&cfg).unwrap();
        let theta: Vec<f64> = (0..qubits * layers)
            .map(|j| ((seed as f64 + j as f64) * 0.73).sin() * 3.0 * scale)
            .collect();
        let target = target_conj(1 << qubits, seed);
        let naive = state.overlap_and_gradient_naive(&target, &theta).unwrap();
        let (scalar, simd) = under_scalar_and_simd(|| eval(&state, &target, &theta));
        assert_close(scalar, naive.clone(), "forced scalar");
        assert_close(simd, naive, "forced SIMD");
    }

    #[test]
    fn scalar_and_simd_agree_bit_for_bit(
        qubits in 2usize..7,
        layers in 1usize..5,
        seed in 0u64..1024,
    ) {
        let cfg = config(qubits, layers);
        let state = SymbolicState::from_ansatz(&cfg).unwrap();
        let theta: Vec<f64> = (0..qubits * layers)
            .map(|j| ((seed as f64 * 1.31 + j as f64) * 0.41).cos() * 4.0)
            .collect();
        let target = target_conj(1 << qubits, seed.wrapping_mul(31));
        let (scalar, simd) = under_scalar_and_simd(|| eval(&state, &target, &theta));
        assert_bitwise(&scalar, &simd, "scalar vs SIMD");
    }
}

#[test]
fn subnormal_targets_match_the_naive_reference_on_every_backend() {
    let cfg = config(4, 3);
    let state = SymbolicState::from_ansatz(&cfg).unwrap();
    let dim = 1 << 4;
    // NaN-free targets down in the subnormal range: the kernels must not
    // flush, overflow, or diverge from the reference there.
    let target: Vec<C64> = (0..dim)
        .map(|r| {
            let tiny = f64::MIN_POSITIVE * ((r % 7) as f64 + 0.5) / 8.0;
            debug_assert!(tiny != 0.0 && tiny < f64::MIN_POSITIVE);
            C64::new(tiny, if r % 2 == 0 { -tiny } else { tiny * 0.25 })
        })
        .collect();
    let theta: Vec<f64> = (0..12).map(|j| (j as f64 * 0.61).sin()).collect();
    let naive = state.overlap_and_gradient_naive(&target, &theta).unwrap();
    assert!(naive.0.re.is_finite() && naive.0.im.is_finite());
    let (scalar, simd) = under_scalar_and_simd(|| eval(&state, &target, &theta));
    assert_bitwise(&scalar, &simd, "subnormal scalar vs SIMD");
    assert_close(scalar, naive.clone(), "subnormal forced scalar");
    assert_close(simd, naive, "subnormal forced SIMD");
}

#[test]
fn batched_lanes_match_solo_calls_bitwise_on_every_backend() {
    let cfg = config(5, 4);
    let state = SymbolicState::from_ansatz(&cfg).unwrap();
    let p = 20;
    let dim = 1 << 5;
    for lanes in [1usize, 2, 7, 16] {
        let targets: Vec<Vec<C64>> = (0..lanes)
            .map(|b| target_conj(dim, 1000 + b as u64))
            .collect();
        let target_refs: Vec<&[C64]> = targets.iter().map(|t| t.as_slice()).collect();
        let thetas: Vec<f64> = (0..lanes * p)
            .map(|i| ((i as f64) * 0.37).sin() * 2.5)
            .collect();
        let run = || {
            let mut batch = SymbolicBatch::new(&state, &target_refs).unwrap();
            let mut overlaps = vec![C64::ZERO; lanes];
            let mut gradients = vec![C64::ZERO; lanes * p];
            batch
                .overlap_and_gradient(&thetas, &mut overlaps, &mut gradients)
                .unwrap();
            let solo: Vec<(C64, Vec<C64>)> = (0..lanes)
                .map(|b| eval(&state, &targets[b], &thetas[b * p..(b + 1) * p]))
                .collect();
            (overlaps, gradients, solo)
        };
        let (scalar, simd) = under_scalar_and_simd(run);
        for (which, (overlaps, gradients, solo)) in [("scalar", scalar), ("simd", simd)] {
            for b in 0..lanes {
                let lane = (overlaps[b], gradients[b * p..(b + 1) * p].to_vec());
                assert_bitwise(
                    &lane,
                    &solo[b],
                    &format!("{which} B={lanes} lane {b} vs solo"),
                );
            }
        }
    }
}

#[test]
fn fine_tune_trajectories_are_bit_identical_across_backends() {
    // End-to-end: a full L-BFGS fine-tune (line searches included) must
    // walk the exact same trajectory under forced scalar and forced SIMD.
    // This is the property that makes the golden seeded-determinism pins
    // host-independent.
    use enq_optim::{Lbfgs, Optimizer};
    let cfg = config(4, 6);
    let target: Vec<f64> = (0..16)
        .map(|r| ((r as f64) * 0.57).sin().abs() + 0.05)
        .collect();
    let objective = FidelityObjective::new(&cfg, &target).unwrap();
    let start: Vec<f64> = (0..24).map(|j| ((j as f64) * 0.23).cos()).collect();
    let run = || Lbfgs::with_max_iterations(40).minimize(&objective, &start);
    let (scalar, simd) = under_scalar_and_simd(run);
    assert_eq!(scalar.iterations, simd.iterations);
    assert_eq!(scalar.evaluations, simd.evaluations);
    assert_eq!(scalar.value.to_bits(), simd.value.to_bits());
    assert_eq!(scalar.gradient_norm.to_bits(), simd.gradient_norm.to_bits());
    for (a, b) in scalar.x.iter().zip(simd.x.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
